//! The chunked record stream — how vantage points hand traffic to
//! consumers without materializing an hour.
//!
//! The paper's deployment processes sampled flows "within minutes for
//! millions of devices" (§1, §6); at that scale an hour of records for a
//! 10⁷-line ISP never fits in one `Vec`. This module is the streaming
//! contract every vantage point implements and every consumer reads:
//!
//! * [`RecordChunk`] — one bounded, reusable batch of [`WildRecord`]s
//!   plus the funnel accounting (sampled packets, feed degradation) that
//!   accrued while producing it. Chunks are the unit of backpressure:
//!   the worker pool in `haystack-core` recycles chunk-sized buffers
//!   through bounded channels, so peak resident memory is set by channel
//!   capacity, never by hour size.
//! * [`RecordStream`] — a pull-based iterator of chunks. The caller owns
//!   the chunk buffer and hands it back on every call ([`RecordStream::
//!   next_chunk`] clears and refills it), which keeps the hot loop
//!   allocation-free.
//! * [`VantagePoint`] — the capture interface the ISP, the IXP, and the
//!   ground-truth testbed replay all share: stream one hour in chunks of
//!   a requested size. [`VantagePoint::materialize_hour`] drains the
//!   stream into the legacy [`HourTraffic`] shape, which pins the two
//!   paths to each other (the `stream_equivalence` tests assert the
//!   records, detections, and funnel stats are identical for *any*
//!   chunking).
//!
//! Per-chunk accounting sums to the hour totals: `sampled_packets` and
//! `degradation` carry *increments* attributed to the chunk that was
//! being produced when they accrued, so `Σ chunks == HourTraffic`.

use crate::degrade::FeedDegradation;
use crate::gen::HourTraffic;
use crate::record::WildRecord;
use haystack_net::HourBin;
use haystack_testbed::materialize::MaterializedWorld;

/// Default records per chunk — small enough that a few dozen in-flight
/// chunks stay cache- and memory-friendly, large enough to amortize
/// channel traffic.
pub const DEFAULT_CHUNK_RECORDS: usize = 8_192;

/// One bounded batch of records plus the accounting that accrued while
/// producing it.
#[derive(Debug, Default)]
pub struct RecordChunk {
    /// The records. At most the stream's configured chunk size (the last
    /// chunk of an hour may be shorter, or even empty if only
    /// accounting remains to flush).
    pub records: Vec<WildRecord>,
    /// Sampled packets newly attributed while producing this chunk
    /// (increment, not cumulative — sums to the hour total).
    pub sampled_packets: u64,
    /// Feed degradation newly accrued while producing this chunk
    /// (increment, not cumulative — absorbs to the hour total).
    pub degradation: FeedDegradation,
}

impl RecordChunk {
    /// A chunk with `capacity` records pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        RecordChunk {
            records: Vec::with_capacity(capacity),
            sampled_packets: 0,
            degradation: FeedDegradation::default(),
        }
    }

    /// Clear records and zero the accounting, keeping the allocation.
    pub fn clear(&mut self) {
        self.records.clear();
        self.sampled_packets = 0;
        self.degradation = FeedDegradation::default();
    }
}

/// A pull-based stream of record chunks.
///
/// The caller provides (and re-provides) the chunk buffer; `next_chunk`
/// clears it, refills it, and returns `false` once the stream is fully
/// exhausted. A returned chunk may carry zero records but non-zero
/// accounting (e.g. sampled packets whose records were all degraded
/// away); consumers must fold the accounting of every `true` chunk.
pub trait RecordStream {
    /// Fill `out` with the next chunk. Returns `false` — with `out`
    /// cleared — when the stream is exhausted.
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool;
}

impl<S: RecordStream + ?Sized> RecordStream for &mut S {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        (**self).next_chunk(out)
    }
}

impl<S: RecordStream + ?Sized> RecordStream for Box<S> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        (**self).next_chunk(out)
    }
}

/// Drain a stream into the materialized [`HourTraffic`] shape.
pub fn materialize(stream: &mut dyn RecordStream) -> HourTraffic {
    let mut out = HourTraffic::default();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    while stream.next_chunk(&mut chunk) {
        out.records.extend_from_slice(&chunk.records);
        out.sampled_packets += chunk.sampled_packets;
        out.degradation.absorb(chunk.degradation);
    }
    out
}

/// A stream over an already-materialized record vector — the interop
/// shim for legacy producers and the re-chunking workhorse of the
/// equivalence tests.
#[derive(Debug)]
pub struct VecStream {
    records: Vec<WildRecord>,
    pos: usize,
    chunk_records: usize,
    /// Accounting attributed to the first emitted chunk.
    sampled_packets: u64,
    degradation: FeedDegradation,
    first: bool,
}

impl VecStream {
    /// Stream `records` in chunks of at most `chunk_records`.
    pub fn new(records: Vec<WildRecord>, chunk_records: usize) -> Self {
        VecStream {
            records,
            pos: 0,
            chunk_records: chunk_records.max(1),
            sampled_packets: 0,
            degradation: FeedDegradation::default(),
            first: true,
        }
    }

    /// Stream a whole [`HourTraffic`], attributing its accounting to the
    /// first chunk.
    pub fn from_hour(hour: HourTraffic, chunk_records: usize) -> Self {
        let mut s = VecStream::new(hour.records, chunk_records);
        s.sampled_packets = hour.sampled_packets;
        s.degradation = hour.degradation;
        s
    }

    /// Attribute `sampled_packets` to the first emitted chunk.
    pub fn set_sampled_packets(&mut self, sampled_packets: u64) {
        self.sampled_packets = sampled_packets;
    }

    /// Attribute `degradation` to the first emitted chunk.
    pub fn set_degradation(&mut self, degradation: FeedDegradation) {
        self.degradation = degradation;
    }
}

impl RecordStream for VecStream {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        out.clear();
        if self.pos >= self.records.len() && !self.first {
            return false;
        }
        let end = (self.pos + self.chunk_records).min(self.records.len());
        out.records.extend_from_slice(&self.records[self.pos..end]);
        self.pos = end;
        if self.first {
            self.first = false;
            out.sampled_packets = self.sampled_packets;
            out.degradation = self.degradation;
        }
        true
    }
}

/// A stream adapter that drops records failing a predicate, passing
/// accounting through untouched (filtered records were still sampled —
/// they just don't cross this vantage point's fabric).
#[derive(Debug)]
pub struct FilterStream<S, F> {
    inner: S,
    pred: F,
}

impl<S, F> FilterStream<S, F> {
    /// Wrap `inner`, keeping only records for which `pred` holds.
    pub fn new(inner: S, pred: F) -> Self {
        FilterStream { inner, pred }
    }
}

impl<S: RecordStream, F: FnMut(&WildRecord) -> bool> RecordStream for FilterStream<S, F> {
    fn next_chunk(&mut self, out: &mut RecordChunk) -> bool {
        if !self.inner.next_chunk(out) {
            return false;
        }
        out.records.retain(|r| (self.pred)(r));
        true
    }
}

/// A resume position inside a multi-day record feed: the next chunk to
/// process is chunk number `chunk` (zero-based) of hour `hour` (index
/// within the day) of day `day`.
///
/// Watermarks order lexicographically — `(day, hour, chunk)` — so "how
/// far did we get" comparisons are plain `<`/`>`. A checkpointed run
/// resumes by regenerating the watermark's hour stream and discarding
/// the first `chunk` chunks with [`skip_chunks`]; generation is
/// deterministic and chunking-invariant (the `stream_equivalence`
/// tests), so the skipped prefix is byte-identical to what the
/// interrupted run already processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Watermark {
    /// Day index within the study window.
    pub day: u32,
    /// Hour index within the day (`0..24`).
    pub hour: u32,
    /// Chunks of this hour already processed.
    pub chunk: u64,
}

impl Watermark {
    /// The position before any record: day 0, hour 0, chunk 0.
    pub fn start() -> Watermark {
        Watermark::default()
    }

    /// The first chunk of `(day, hour)`.
    pub fn hour_start(day: u32, hour: u32) -> Watermark {
        Watermark { day, hour, chunk: 0 }
    }

    /// The first chunk of the next hour (rolling into the next day after
    /// hour 23).
    pub fn next_hour(self) -> Watermark {
        if self.hour + 1 >= 24 {
            Watermark::hour_start(self.day + 1, 0)
        } else {
            Watermark::hour_start(self.day, self.hour + 1)
        }
    }
}

/// Pull and discard up to `n` chunks from `stream`, returning how many
/// were actually pulled (fewer when the stream runs dry first).
///
/// This is the resume primitive: chunk generation is deterministic, so
/// re-generating an hour and discarding the first `watermark.chunk`
/// chunks reproduces exactly the state the interrupted run had.
/// Discarded accounting (sampled packets, degradation) belongs to the
/// already-processed prefix and must come from the checkpoint, not be
/// re-folded.
pub fn skip_chunks(stream: &mut dyn RecordStream, n: u64) -> u64 {
    let mut scratch = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut skipped = 0u64;
    while skipped < n {
        if !stream.next_chunk(&mut scratch) {
            break;
        }
        skipped += 1;
    }
    skipped
}

/// The capture interface shared by every vantage point: the ISP
/// ([`crate::isp::IspVantage`]), the IXP ([`crate::ixp::IxpVantage`]),
/// and the ground-truth testbed replay (`haystack-core`'s crosscheck).
pub trait VantagePoint {
    /// Stream one hour of sampled records in chunks of at most
    /// `chunk_records`, applying the vantage point's configured
    /// degradation (if any) as a stream adapter.
    fn stream_hour<'a>(
        &'a self,
        world: &'a MaterializedWorld,
        hour: HourBin,
        chunk_records: usize,
    ) -> Box<dyn RecordStream + 'a>;

    /// Materialize the hour by draining [`VantagePoint::stream_hour`] —
    /// the legacy whole-hour shape, kept for small-scale consumers and
    /// as the semantic pin for the streaming path.
    fn materialize_hour(&self, world: &MaterializedWorld, hour: HourBin) -> HourTraffic {
        materialize(&mut *self.stream_hour(world, hour, DEFAULT_CHUNK_RECORDS))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::ports::Proto;
    use haystack_net::{AnonId, Prefix4};
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<WildRecord> {
        (0..n)
            .map(|i| {
                let src = Ipv4Addr::new(100, 64, (i / 250) as u8, (i % 250) as u8);
                WildRecord {
                    line: AnonId(i as u64),
                    line_slash24: Prefix4::slash24_of(src),
                    src_ip: src,
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    dport: 443,
                    proto: Proto::Tcp,
                    packets: 1,
                    bytes: 100,
                    established: true,
                    hour: HourBin(3),
                }
            })
            .collect()
    }

    #[test]
    fn vec_stream_rechunks_losslessly() {
        let records = recs(100);
        for chunk_size in [1usize, 7, 32, 100, 1000] {
            let mut s = VecStream::new(records.clone(), chunk_size);
            let mut chunk = RecordChunk::default();
            let mut got = Vec::new();
            while s.next_chunk(&mut chunk) {
                assert!(chunk.records.len() <= chunk_size);
                got.extend_from_slice(&chunk.records);
            }
            assert_eq!(got, records, "chunk size {chunk_size}");
        }
    }

    #[test]
    fn accounting_attaches_to_the_first_chunk_exactly_once() {
        let mut hour = HourTraffic { records: recs(10), sampled_packets: 77, ..Default::default() };
        hour.degradation.records_lost = 5;
        hour.degradation.batches = 2;
        let mut s = VecStream::from_hour(hour, 3);
        let mut chunk = RecordChunk::default();
        let mut packets = 0u64;
        let mut deg = FeedDegradation::default();
        while s.next_chunk(&mut chunk) {
            packets += chunk.sampled_packets;
            deg.absorb(chunk.degradation);
        }
        assert_eq!(packets, 77);
        assert_eq!(deg.records_lost, 5);
        assert_eq!(deg.batches, 2);
    }

    #[test]
    fn empty_vec_stream_still_flushes_accounting() {
        let hour = HourTraffic { records: vec![], sampled_packets: 9, ..Default::default() };
        let mut s = VecStream::from_hour(hour, 8);
        let mut chunk = RecordChunk::default();
        assert!(s.next_chunk(&mut chunk), "accounting-only chunk");
        assert!(chunk.records.is_empty());
        assert_eq!(chunk.sampled_packets, 9);
        assert!(!s.next_chunk(&mut chunk));
    }

    #[test]
    fn skip_then_drain_equals_the_suffix() {
        let records = recs(100);
        for chunk_size in [1usize, 7, 32] {
            let mut whole = VecStream::new(records.clone(), chunk_size);
            let mut chunk = RecordChunk::default();
            let mut all_chunks: Vec<Vec<WildRecord>> = Vec::new();
            while whole.next_chunk(&mut chunk) {
                all_chunks.push(chunk.records.clone());
            }
            for skip in [0u64, 1, 3, all_chunks.len() as u64] {
                let mut s = VecStream::new(records.clone(), chunk_size);
                assert_eq!(skip_chunks(&mut s, skip), skip.min(all_chunks.len() as u64));
                let mut got = Vec::new();
                while s.next_chunk(&mut chunk) {
                    got.extend_from_slice(&chunk.records);
                }
                let want: Vec<WildRecord> = all_chunks
                    .iter()
                    .skip(skip as usize)
                    .flatten()
                    .copied()
                    .collect();
                assert_eq!(got, want, "chunk {chunk_size} skip {skip}");
            }
        }
    }

    #[test]
    fn skipping_past_the_end_reports_what_was_there() {
        let mut s = VecStream::new(recs(10), 4);
        // 3 chunks exist (4+4+2); asking for 100 skips only those.
        assert_eq!(skip_chunks(&mut s, 100), 3);
        let mut chunk = RecordChunk::default();
        assert!(!s.next_chunk(&mut chunk));
    }

    #[test]
    fn watermarks_order_and_roll_over() {
        let a = Watermark { day: 0, hour: 23, chunk: 9 };
        let b = a.next_hour();
        assert_eq!(b, Watermark::hour_start(1, 0));
        assert!(a < b);
        assert!(Watermark::start() < a);
        assert!(
            Watermark { day: 1, hour: 0, chunk: 0 } < Watermark { day: 1, hour: 0, chunk: 1 }
        );
    }

    #[test]
    fn materialize_round_trips() {
        let records = recs(50);
        let hour = HourTraffic { records: records.clone(), sampled_packets: 123, ..Default::default() };
        let mut s = VecStream::from_hour(hour, 7);
        let out = materialize(&mut s);
        assert_eq!(out.records, records);
        assert_eq!(out.sampled_packets, 123);
    }
}
