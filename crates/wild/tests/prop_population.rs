//! Property tests for the population model: churn must permute addresses
//! (never collide, never invent), and ownership marginals must track the
//! configured penetrations under any tech-household concentration.

use haystack_net::Prefix4;
use haystack_testbed::catalog::data::standard_catalog;
use haystack_wild::{Population, PopulationConfig};
use proptest::prelude::*;
use std::collections::HashSet;

fn config(lines: u32, seed: u64, tech: f64) -> PopulationConfig {
    PopulationConfig {
        lines,
        seed,
        churn_within_24: 0.05,
        churn_cross: 0.005,
        block: "100.64.0.0/10".parse::<Prefix4>().unwrap(),
        penetration_scale: 1.0,
        tech_fraction: tech,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Addresses on any day are a permutation of day 0's: same set, no
    /// duplicates — churn swaps, it never invents or leaks addresses.
    #[test]
    fn churn_is_a_permutation(seed in any::<u64>(), day in 1u32..14) {
        let catalog = standard_catalog();
        let pop = Population::new(&catalog, config(3_000, seed, 0.5));
        let day0: HashSet<_> = (0..3_000).map(|l| pop.ip_of(l, 0)).collect();
        let dayn: HashSet<_> = (0..3_000).map(|l| pop.ip_of(l, day)).collect();
        prop_assert_eq!(day0.len(), 3_000, "day-0 collision");
        prop_assert_eq!(&dayn, &day0, "churn changed the address set");
    }

    /// Ownership marginals track penetration regardless of how tightly
    /// tech households concentrate (the correlation knob preserves
    /// per-product marginals by construction).
    #[test]
    fn marginals_survive_concentration(seed in any::<u64>(), tech in 0.25f64..=1.0) {
        let catalog = standard_catalog();
        let lines = 40_000u32;
        let pop = Population::new(&catalog, config(lines, seed, tech));
        // Check the three most popular products (tight tolerance needs
        // volume; the tail is covered by the unit test).
        let mut ranked: Vec<usize> = (0..catalog.products.len()).collect();
        ranked.sort_by(|a, b| {
            catalog.products[*b]
                .penetration
                .partial_cmp(&catalog.products[*a].penetration)
                .unwrap()
        });
        for &pi in ranked.iter().take(3) {
            let want = catalog.products[pi].penetration;
            let got = pop.owners_of(pi).len() as f64 / f64::from(lines);
            let sd = (want * (1.0 - want) / f64::from(lines)).sqrt();
            prop_assert!(
                (got - want).abs() < 6.0 * sd + 1e-4,
                "{}: got {got:.4}, want {want:.4} (tech {tech:.2})",
                catalog.products[pi].name
            );
        }
    }

    /// Tech-household concentration shrinks the any-device union without
    /// touching marginals.
    #[test]
    fn concentration_shrinks_the_union(seed in any::<u64>()) {
        let catalog = standard_catalog();
        let loose = Population::new(&catalog, config(20_000, seed, 1.0));
        let tight = Population::new(&catalog, config(20_000, seed, 0.4));
        prop_assert!(
            tight.lines_with_any_device() < loose.lines_with_any_device(),
            "tight {} !< loose {}",
            tight.lines_with_any_device(),
            loose.lines_with_any_device()
        );
    }
}
