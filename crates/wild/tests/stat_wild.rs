//! Statistical validation of the wild generator: the flow-level
//! simulation must track its analytic expectations, because every §6
//! figure sits on top of it.

use haystack_net::{Anonymizer, HourBin};
use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::materialize::materialize;
use haystack_wild::gen::generate_hour;
use haystack_wild::{ContactPlan, Population, PopulationConfig};

fn setup(lines: u32) -> (Population, ContactPlan, haystack_testbed::MaterializedWorld) {
    let catalog = standard_catalog();
    let world = materialize(&catalog);
    let plan = ContactPlan::new(&catalog);
    let pop = Population::new(&catalog, PopulationConfig::isp(lines, 9));
    (pop, plan, world)
}

/// Analytic expectation of sampled packets for one *night* hour (usage
/// probability is near zero at 03:00, so idle rates dominate).
fn expected_idle_sampled(pop: &Population, plan: &ContactPlan, sampling: f64) -> f64 {
    plan.products
        .iter()
        .map(|p| pop.owners_of(p.product).len() as f64 * p.idle_lambda / sampling)
        .sum()
}

#[test]
fn sampled_volume_matches_expectation_at_night() {
    let (pop, plan, world) = setup(20_000);
    let anon = Anonymizer::new(1, 2);
    // Hour 3 of day 3 (a weekday night): usage ≈ 0 for entertainment
    // shapes, small for ambient ones — expectation within ~15 %.
    let mut total = 0u64;
    let hours = [3u32, 4];
    for h in hours {
        total += generate_hour(&pop, &plan, &world, HourBin(3 * 24 + h), 1_000, 5, &anon, false)
            .sampled_packets;
    }
    let measured = total as f64 / hours.len() as f64;
    let expected = expected_idle_sampled(&pop, &plan, 1_000.0);
    let ratio = measured / expected;
    assert!(
        (0.9..1.35).contains(&ratio),
        "night volume {measured:.0} vs idle expectation {expected:.0} (ratio {ratio:.2})"
    );
}

#[test]
fn weekend_evenings_are_busier_than_weekday_evenings() {
    let (pop, plan, world) = setup(20_000);
    let anon = Anonymizer::new(1, 2);
    // Day 3 (Mon) vs day 8 (Sat), both at 20:00.
    let weekday =
        generate_hour(&pop, &plan, &world, HourBin(3 * 24 + 20), 1_000, 5, &anon, false);
    let weekend =
        generate_hour(&pop, &plan, &world, HourBin(8 * 24 + 20), 1_000, 5, &anon, false);
    assert!(
        weekend.sampled_packets as f64 > weekday.sampled_packets as f64 * 1.02,
        "weekend {} <= weekday {}",
        weekend.sampled_packets,
        weekday.sampled_packets
    );
}

#[test]
fn per_line_identity_consistent_with_population_churn() {
    let (pop, plan, world) = setup(5_000);
    let anon = Anonymizer::new(1, 2);
    // Records on day d must carry exactly the population's day-d address
    // for their line.
    for day in [0u32, 1] {
        let t = generate_hour(&pop, &plan, &world, HourBin(day * 24 + 10), 200, 5, &anon, false);
        for r in &t.records {
            assert_eq!(anon.anonymize(r.src_ip), r.line);
            assert_eq!(
                haystack_net::Prefix4::slash24_of(r.src_ip),
                r.line_slash24
            );
        }
        // Every src must be some line's day-d address.
        let valid: std::collections::HashSet<_> =
            (0..5_000u32).map(|l| pop.ip_of(l, day)).collect();
        assert!(t.records.iter().all(|r| valid.contains(&r.src_ip)));
    }
}

#[test]
fn sampled_counts_scale_inverse_to_sampling_rate() {
    let (pop, plan, world) = setup(10_000);
    let anon = Anonymizer::new(1, 2);
    let hour = HourBin(3 * 24 + 12);
    let s500 = generate_hour(&pop, &plan, &world, hour, 500, 5, &anon, false).sampled_packets;
    let s2000 = generate_hour(&pop, &plan, &world, hour, 2_000, 5, &anon, false).sampled_packets;
    let ratio = s500 as f64 / s2000.max(1) as f64;
    assert!((3.0..5.0).contains(&ratio), "4× sampling ratio, got {ratio:.2}");
}
