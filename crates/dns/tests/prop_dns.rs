//! Property tests for the DNS substrate: name algebra, resolver
//! determinism and churn, passive-DNS window-query consistency.

use haystack_dns::zone::RotationPolicy;
use haystack_dns::{DnsDb, DomainName, Resolver, ZoneDb};
use haystack_net::{SimTime, StudyWindow};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9-]{0,10}[a-z0-9]".prop_map(|s| s)
}

fn arb_name() -> impl Strategy<Value = DomainName> {
    (arb_label(), arb_label(), prop_oneof![Just("com"), Just("net"), Just("io"), Just("co.uk")])
        .prop_map(|(a, b, tld)| DomainName::parse(&format!("{a}.{b}.{tld}")).unwrap())
}

proptest! {
    #[test]
    fn name_parse_is_idempotent(n in arb_name()) {
        let reparsed = DomainName::parse(n.as_str()).unwrap();
        prop_assert_eq!(&reparsed, &n);
        // SLD of the SLD is itself.
        let sld = n.sld();
        prop_assert_eq!(sld.sld(), sld.clone());
        // The name is a subdomain of its SLD.
        prop_assert!(n.is_subdomain_of(&sld));
    }

    #[test]
    fn child_is_subdomain(n in arb_name(), label in arb_label()) {
        let child = n.child(&label).unwrap();
        prop_assert!(child.is_subdomain_of(&n));
        prop_assert!(!n.is_subdomain_of(&child));
        prop_assert_eq!(child.label_count(), n.label_count() + 1);
    }

    #[test]
    fn resolver_is_deterministic_within_an_epoch(
        pool_size in 1usize..16,
        active in 1usize..8,
        t in 0u64..100_000,
    ) {
        let name = DomainName::parse("svc.example.com").unwrap();
        let mut z = ZoneDb::new();
        z.insert_pool(
            name.clone(),
            (0..pool_size).map(|i| Ipv4Addr::new(198, 18, 0, i as u8 + 1)).collect(),
            RotationPolicy { active_count: active, period_secs: 3_600 },
        );
        let r = Resolver::new(&z);
        let a = r.resolve(&name, SimTime(t)).unwrap();
        let b = r.resolve(&name, SimTime(t)).unwrap();
        prop_assert_eq!(&a, &b);
        // Answers come from the pool, are unique, and number min(active, pool).
        prop_assert_eq!(a.ips.len(), active.min(pool_size));
        let unique: std::collections::BTreeSet<_> = a.ips.iter().collect();
        prop_assert_eq!(unique.len(), a.ips.len());
        // Same epoch → same answer.
        let same_epoch = r.resolve(&name, SimTime(t - (t % 3_600))).unwrap();
        prop_assert_eq!(a.ips, same_epoch.ips);
    }

    #[test]
    fn dnsdb_window_queries_are_monotone_in_window(
        times in prop::collection::btree_set(0u64..1_000_000, 1..40),
        split in 1u64..1_000_000,
    ) {
        // Feed one rotating domain at arbitrary instants; any sub-window's
        // answer must be a subset of the full window's.
        let name = DomainName::parse("svc.example.com").unwrap();
        let mut z = ZoneDb::new();
        z.insert_pool(
            name.clone(),
            (1..=10).map(|i| Ipv4Addr::new(198, 18, 1, i)).collect(),
            RotationPolicy { active_count: 3, period_secs: 3_600 },
        );
        let r = Resolver::new(&z);
        let mut db = DnsDb::new();
        for &t in &times {
            let res = r.resolve(&name, SimTime(t)).unwrap();
            db.record_resolution(&res, SimTime(t));
        }
        let full = StudyWindow { start: SimTime(0), end: SimTime(1_000_001) };
        let early = StudyWindow { start: SimTime(0), end: SimTime(split) };
        let late = StudyWindow { start: SimTime(split), end: SimTime(1_000_001) };
        let all = db.ips_of(&name, &full);
        let a = db.ips_of(&name, &early);
        let b = db.ips_of(&name, &late);
        prop_assert!(a.is_subset(&all));
        prop_assert!(b.is_subset(&all));
        prop_assert!(a.union(&b).cloned().collect::<std::collections::BTreeSet<_>>() == all,
            "window split must not lose observations");
        // Inverse index agrees with the forward index.
        for ip in &all {
            prop_assert!(db.names_of_ip(*ip, &full).contains(&name));
        }
    }
}
