//! Domain names, SLD extraction, and wildcard patterns.
//!
//! The methodology repeatedly reasons at two granularities:
//!
//! * **FQDN** — the unit of the §3 visibility analysis ("number of observed
//!   domains (FQDNs)") and of the per-device domain sets;
//! * **SLD** ("second-level domain") — the unit of the §4.2.1 exclusivity
//!   test ("a service IP is exclusively used if it only serves domains from
//!   a single second-level domain and its CNAMEs") and of the §4.2.2
//!   certificate match ("match at least the SLD or higher").
//!
//! SLD extraction consults an embedded, intentionally small public-suffix
//! list: the synthetic universe only mints names under these suffixes, and
//! the unit tests pin the behaviour for multi-label suffixes (`co.uk`).

use std::fmt;
use std::str::FromStr;

/// Errors from parsing a domain name or pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NameError {
    /// The name was empty or had an empty label (`a..b`, leading/trailing
    /// dot).
    EmptyLabel(String),
    /// A label contained a character outside `[a-z0-9-_*]`.
    BadCharacter(String),
    /// A wildcard appeared somewhere other than as the full leftmost label.
    MisplacedWildcard(String),
}

impl fmt::Display for NameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NameError::EmptyLabel(s) => write!(f, "empty label in {s:?}"),
            NameError::BadCharacter(s) => write!(f, "invalid character in {s:?}"),
            NameError::MisplacedWildcard(s) => write!(f, "misplaced wildcard in {s:?}"),
        }
    }
}

impl std::error::Error for NameError {}

/// Public suffixes known to the synthetic universe. Order matters only for
/// readability; matching always prefers the longest suffix.
const PUBLIC_SUFFIXES: &[&str] = &[
    "com", "net", "org", "io", "tv", "de", "cn", "uk", "co.uk", "com.cn", "cloud", "info",
];

fn is_public_suffix(labels: &[&str]) -> bool {
    let joined = labels.join(".");
    PUBLIC_SUFFIXES.contains(&joined.as_str())
}

fn validate_label(label: &str, original: &str, allow_wildcard: bool) -> Result<(), NameError> {
    if label.is_empty() {
        return Err(NameError::EmptyLabel(original.to_string()));
    }
    if label == "*" {
        if allow_wildcard {
            return Ok(());
        }
        return Err(NameError::BadCharacter(original.to_string()));
    }
    if label.contains('*') {
        return Err(NameError::MisplacedWildcard(original.to_string()));
    }
    if label
        .bytes()
        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-' || b == b'_')
    {
        Ok(())
    } else {
        Err(NameError::BadCharacter(original.to_string()))
    }
}

/// A fully-qualified domain name in canonical (lowercase, no trailing dot)
/// form, e.g. `avs-alexa.na.amazon.com`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainName(String);

impl DomainName {
    /// Parse and canonicalize. Accepts mixed case and a trailing dot.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let lower = s.trim_end_matches('.').to_ascii_lowercase();
        if lower.is_empty() {
            return Err(NameError::EmptyLabel(s.to_string()));
        }
        for label in lower.split('.') {
            validate_label(label, s, false)?;
        }
        Ok(DomainName(lower))
    }

    /// The canonical textual form.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels from leftmost (host) to rightmost (TLD).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.0.split('.').count()
    }

    /// The registrable "second-level domain" per the embedded public-suffix
    /// list: one label more than the longest matching public suffix.
    ///
    /// `devA-vm.ec2compute.amazonaws.com` → `amazonaws.com`;
    /// `cam.vendor.co.uk` → `vendor.co.uk`. Names that *are* a public
    /// suffix (or shorter) return themselves.
    pub fn sld(&self) -> DomainName {
        let labels: Vec<&str> = self.0.split('.').collect();
        // Longest public suffix: try suffixes of decreasing length.
        for take in (1..labels.len()).rev() {
            let suffix = &labels[labels.len() - take..];
            if is_public_suffix(suffix) {
                let sld = &labels[labels.len() - take - 1..];
                return DomainName(sld.join("."));
            }
        }
        self.clone()
    }

    /// Whether `self` equals `ancestor` or is a subdomain of it.
    pub fn is_subdomain_of(&self, ancestor: &DomainName) -> bool {
        self.0 == ancestor.0
            || (self.0.len() > ancestor.0.len()
                && self.0.ends_with(&ancestor.0)
                && self.0.as_bytes()[self.0.len() - ancestor.0.len() - 1] == b'.')
    }

    /// Prepend a label, e.g. `DomainName::parse("amazon.com")?.child("avs")`
    /// → `avs.amazon.com`.
    pub fn child(&self, label: &str) -> Result<DomainName, NameError> {
        validate_label(&label.to_ascii_lowercase(), label, false)?;
        Ok(DomainName(format!("{}.{}", label.to_ascii_lowercase(), self.0)))
    }
}

impl fmt::Display for DomainName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl FromStr for DomainName {
    type Err = NameError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

/// A certificate-style name pattern: either an exact FQDN or a single
/// leftmost wildcard (`*.devE.com`), as used by the §4.2.2 match criteria.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum DomainPattern {
    /// Matches exactly one FQDN.
    Exact(DomainName),
    /// `*.base` — matches any name exactly one label below `base` (the
    /// X.509 wildcard rule: the wildcard covers a single label).
    Wildcard(DomainName),
}

impl DomainPattern {
    /// Parse a pattern string.
    pub fn parse(s: &str) -> Result<Self, NameError> {
        let lower = s.trim_end_matches('.').to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("*.") {
            if rest.contains('*') {
                return Err(NameError::MisplacedWildcard(s.to_string()));
            }
            Ok(DomainPattern::Wildcard(DomainName::parse(rest)?))
        } else if lower.contains('*') {
            Err(NameError::MisplacedWildcard(s.to_string()))
        } else {
            Ok(DomainPattern::Exact(DomainName::parse(&lower)?))
        }
    }

    /// Whether `name` matches this pattern.
    pub fn matches(&self, name: &DomainName) -> bool {
        match self {
            DomainPattern::Exact(e) => e == name,
            DomainPattern::Wildcard(base) => {
                name.is_subdomain_of(base) && name.label_count() == base.label_count() + 1
            }
        }
    }

    /// The base name the pattern is anchored at (`devE.com` for
    /// `*.devE.com`).
    pub fn base(&self) -> &DomainName {
        match self {
            DomainPattern::Exact(d) | DomainPattern::Wildcard(d) => d,
        }
    }
}

impl fmt::Display for DomainPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DomainPattern::Exact(d) => write!(f, "{d}"),
            DomainPattern::Wildcard(d) => write!(f, "*.{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn parse_canonicalizes() {
        assert_eq!(d("AVS-Alexa.NA.Amazon.COM.").as_str(), "avs-alexa.na.amazon.com");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(DomainName::parse("").is_err());
        assert!(DomainName::parse("a..b").is_err());
        assert!(DomainName::parse(".a.com").is_err());
        assert!(DomainName::parse("spaced out.com").is_err());
        assert!(DomainName::parse("star*.com").is_err());
        assert!(DomainName::parse("*.wild.com").is_err(), "wildcards only in patterns");
    }

    #[test]
    fn sld_extraction_matches_paper_examples() {
        // §4.2.1 example: EC2-hosted VM name.
        assert_eq!(d("deva-vm.ec2compute.amazonaws.com").sld(), d("amazonaws.com"));
        assert_eq!(d("avs-alexa.na.amazon.com").sld(), d("amazon.com"));
        assert_eq!(d("samsungotn.net").sld(), d("samsungotn.net"));
        assert_eq!(d("cam.vendor.co.uk").sld(), d("vendor.co.uk"));
        // A bare public suffix maps to itself.
        assert_eq!(d("com").sld(), d("com"));
        assert_eq!(d("co.uk").sld(), d("co.uk"));
    }

    #[test]
    fn subdomain_relation() {
        assert!(d("a.b.com").is_subdomain_of(&d("b.com")));
        assert!(d("b.com").is_subdomain_of(&d("b.com")));
        assert!(!d("ab.com").is_subdomain_of(&d("b.com")), "label boundary respected");
        assert!(!d("b.com").is_subdomain_of(&d("a.b.com")));
    }

    #[test]
    fn child_builds_subdomains() {
        assert_eq!(d("amazon.com").child("avs").unwrap(), d("avs.amazon.com"));
        assert!(d("amazon.com").child("bad label").is_err());
    }

    #[test]
    fn wildcard_pattern_single_label() {
        let p = DomainPattern::parse("*.devE.com").unwrap();
        assert!(p.matches(&d("c.deve.com")));
        assert!(!p.matches(&d("deve.com")), "wildcard does not match the base");
        assert!(!p.matches(&d("a.b.deve.com")), "wildcard covers exactly one label");
        assert!(!p.matches(&d("deve.net")));
    }

    #[test]
    fn exact_pattern() {
        let p = DomainPattern::parse("c.devE.com").unwrap();
        assert!(p.matches(&d("c.deve.com")));
        assert!(!p.matches(&d("x.deve.com")));
        assert_eq!(p.to_string(), "c.deve.com");
    }

    #[test]
    fn pattern_rejects_inner_wildcards() {
        assert!(DomainPattern::parse("a.*.com").is_err());
        assert!(DomainPattern::parse("**.com").is_err());
        assert!(DomainPattern::parse("*.*.com").is_err());
    }

    #[test]
    fn pattern_display_round_trips() {
        for s in ["*.deve.com", "c.deve.com"] {
            assert_eq!(DomainPattern::parse(s).unwrap().to_string(), s);
        }
    }
}
