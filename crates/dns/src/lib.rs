//! # haystack-dns
//!
//! The DNS substrate of the reproduction. Three roles:
//!
//! 1. **Naming** ([`name`]) — fully-qualified domain names, label
//!    manipulation, second-level-domain (SLD) extraction against an
//!    embedded public-suffix list, and the `*.example.com`-style patterns
//!    used by the certificate matcher (§4.2.2).
//! 2. **Resolution** ([`zone`], [`resolver`]) — an authoritative zone model
//!    (A records and CNAME indirection) plus a resolver that reproduces the
//!    *churn* the paper works around: "the specific IP addresses mapping to
//!    specific domains can change often" (§4.2.1). Domains are backed by IP
//!    pools and the resolver rotates through them over time.
//! 3. **Passive DNS** ([`dnsdb`]) — a DNSDB-style database (Farsight [16])
//!    that records every observed resolution and answers the two §4.2.1
//!    queries: *all IPs a domain mapped to* and *all domains an IP served*
//!    within a time window, CNAMEs included.
//!
//! Everything is synthetic and deterministic; no sockets, no real DNS.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dnsdb;
pub mod name;
pub mod record;
pub mod resolver;
pub mod zone;

pub use dnsdb::{DnsDb, DnsDbObservation};
pub use name::{DomainName, DomainPattern, NameError};
pub use record::{DnsRecord, Rdata, RrType};
pub use resolver::{Resolution, Resolver};
pub use zone::{ZoneDb, ZoneEntry};
