//! Authoritative zone model.
//!
//! Every domain in the synthetic universe is backed by one [`ZoneEntry`]:
//! either a **pool of A records** with a rotation policy (modelling the
//! DNS→IP churn of §4.2.1) or a **CNAME** to another domain (modelling the
//! `devB.com → devB.com.akadns.net` CDN indirection of the paper's second
//! example).

use crate::name::DomainName;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How a pooled domain rotates through its candidate addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RotationPolicy {
    /// How many of the pool's addresses are live at any instant.
    pub active_count: usize,
    /// How often (seconds) the live subset is re-drawn. `0` disables
    /// rotation (a stable mapping).
    pub period_secs: u64,
}

impl RotationPolicy {
    /// A mapping that never changes.
    pub const STABLE: RotationPolicy = RotationPolicy { active_count: usize::MAX, period_secs: 0 };

    /// The rotation epoch at time `t_secs`.
    pub fn epoch(&self, t_secs: u64) -> u64 {
        t_secs.checked_div(self.period_secs).unwrap_or(0)
    }
}

/// Authoritative data for one domain.
#[derive(Debug, Clone)]
pub enum ZoneEntry {
    /// Hosted directly on a set of addresses; the resolver serves a
    /// rotating subset.
    Pool {
        /// All candidate addresses for this domain over the study period.
        addrs: Vec<Ipv4Addr>,
        /// Rotation policy.
        rotation: RotationPolicy,
    },
    /// Alias to another domain (which must itself be registered for
    /// resolution to terminate in addresses).
    Cname(DomainName),
}

/// The authoritative zone database for the entire synthetic Internet.
#[derive(Debug, Default, Clone)]
pub struct ZoneDb {
    entries: HashMap<DomainName, ZoneEntry>,
}

impl ZoneDb {
    /// New, empty zone database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a pooled domain. Replaces any previous entry.
    pub fn insert_pool(
        &mut self,
        name: DomainName,
        addrs: Vec<Ipv4Addr>,
        rotation: RotationPolicy,
    ) {
        self.entries.insert(name, ZoneEntry::Pool { addrs, rotation });
    }

    /// Register a CNAME. Replaces any previous entry.
    pub fn insert_cname(&mut self, name: DomainName, target: DomainName) {
        self.entries.insert(name, ZoneEntry::Cname(target));
    }

    /// Look up the authoritative entry for `name`.
    pub fn get(&self, name: &DomainName) -> Option<&ZoneEntry> {
        self.entries.get(name)
    }

    /// Whether the name exists in the zone.
    pub fn contains(&self, name: &DomainName) -> bool {
        self.entries.contains_key(name)
    }

    /// Number of registered names.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the zone is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate all registered names.
    pub fn names(&self) -> impl Iterator<Item = &DomainName> {
        self.entries.keys()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn insert_and_lookup() {
        let mut db = ZoneDb::new();
        db.insert_pool(d("api.deva.com"), vec![Ipv4Addr::new(198, 18, 0, 1)], RotationPolicy::STABLE);
        db.insert_cname(d("devb.com"), d("devb.com.akadns.net"));
        assert!(db.contains(&d("api.deva.com")));
        assert!(matches!(db.get(&d("devb.com")), Some(ZoneEntry::Cname(t)) if *t == d("devb.com.akadns.net")));
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn rotation_epochs() {
        let r = RotationPolicy { active_count: 2, period_secs: 3600 };
        assert_eq!(r.epoch(0), 0);
        assert_eq!(r.epoch(3599), 0);
        assert_eq!(r.epoch(3600), 1);
        assert_eq!(RotationPolicy::STABLE.epoch(99_999), 0);
    }

    #[test]
    fn reinsert_replaces() {
        let mut db = ZoneDb::new();
        db.insert_pool(d("x.com"), vec![Ipv4Addr::new(1, 1, 1, 1)], RotationPolicy::STABLE);
        db.insert_cname(d("x.com"), d("y.com"));
        assert!(matches!(db.get(&d("x.com")), Some(ZoneEntry::Cname(_))));
        assert_eq!(db.len(), 1);
    }
}
