//! A passive-DNS database in the style of Farsight DNSDB ([16], [18]).
//!
//! §4.2.1: *"DNSDB provides information for all domains served by an IP
//! address in a given time period and vice versa, hence it mitigates the
//! issues caused by [churn]. DNSDB also provides all records, including
//! CNAMEs that may have been returned in the DNS response, for a given
//! domain."*
//!
//! The store ingests full [`Resolution`]s: for every name in the response
//! chain it records an A observation against each answered address, plus
//! the CNAME links themselves, each carrying a `[first_seen, last_seen]`
//! range. Queries are window-filtered, matching how the paper restricts
//! DNSDB lookups to the experiment period.
//!
//! **Coverage gaps** are first-class: the paper found *no DNSDB record for
//! 15 of 434 domains* ("missing data since the requests for the domains may
//! not have been recorded by DNSDB, which intercepts requests for a subset
//! of the DNS hierarchy"). A blind-spot set of SLDs makes the database drop
//! those observations, forcing the §4.2.2 Censys fallback to do its job.

use crate::name::DomainName;
use crate::record::Rdata;
use crate::resolver::Resolution;
use haystack_net::{SimTime, StudyWindow};
use std::collections::{BTreeSet, HashMap, HashSet};
use std::net::Ipv4Addr;

/// When a (name, rdata) pair was first and last observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeRange {
    /// First observation.
    pub first: SimTime,
    /// Last observation.
    pub last: SimTime,
}

impl TimeRange {
    fn observe(&mut self, t: SimTime) {
        if t < self.first {
            self.first = t;
        }
        if t > self.last {
            self.last = t;
        }
    }

    /// Whether the range intersects a query window (half-open).
    pub fn overlaps(&self, w: &StudyWindow) -> bool {
        self.first < w.end && self.last >= w.start
    }
}

/// One exported observation row (for reports and tests).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DnsDbObservation {
    /// Owner name.
    pub name: DomainName,
    /// Observed record data.
    pub rdata: Rdata,
    /// Observation range.
    pub first: SimTime,
    /// Observation range.
    pub last: SimTime,
}

/// The passive-DNS store.
///
/// ```
/// use haystack_dns::zone::RotationPolicy;
/// use haystack_dns::{DnsDb, DomainName, Resolver, ZoneDb};
/// use haystack_net::{SimTime, StudyWindow};
///
/// let mut zones = ZoneDb::new();
/// let name = DomainName::parse("api.deva.com").unwrap();
/// zones.insert_pool(name.clone(), vec!["198.18.0.1".parse().unwrap()], RotationPolicy::STABLE);
///
/// let mut db = DnsDb::new();
/// let res = Resolver::new(&zones).resolve(&name, SimTime(0)).unwrap();
/// db.record_resolution(&res, SimTime(0));
/// assert_eq!(db.ips_of(&name, &StudyWindow::FULL).len(), 1);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DnsDb {
    /// name → ip → range (A observations).
    a_by_name: HashMap<DomainName, HashMap<Ipv4Addr, TimeRange>>,
    /// ip → name → range (inverse index of `a_by_name`).
    name_by_ip: HashMap<Ipv4Addr, HashMap<DomainName, TimeRange>>,
    /// alias → target → range (CNAME observations).
    cname_by_name: HashMap<DomainName, HashMap<DomainName, TimeRange>>,
    /// target → alias → range (inverse CNAME index).
    alias_by_target: HashMap<DomainName, HashMap<DomainName, TimeRange>>,
    /// SLDs invisible to this passive-DNS deployment (coverage gaps).
    blind_slds: HashSet<DomainName>,
    /// Individual FQDNs invisible to this deployment.
    blind_names: HashSet<DomainName>,
}

impl DnsDb {
    /// New, empty database with full coverage.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an SLD as a coverage gap: observations for any name under it
    /// are silently dropped, reproducing the paper's 15 no-record domains.
    pub fn add_blind_sld(&mut self, sld: DomainName) {
        self.blind_slds.insert(sld);
    }

    /// Declare a single FQDN as a coverage gap (the paper's 15 no-record
    /// domains were individual names, not whole zones).
    pub fn add_blind_name(&mut self, name: DomainName) {
        self.blind_names.insert(name);
    }

    /// Whether a name falls in a declared coverage gap.
    pub fn is_blind(&self, name: &DomainName) -> bool {
        self.blind_names.contains(name) || self.blind_slds.contains(&name.sld())
    }

    fn observe_a(&mut self, name: &DomainName, ip: Ipv4Addr, t: SimTime) {
        if self.is_blind(name) {
            return;
        }
        self.a_by_name
            .entry(name.clone())
            .or_default()
            .entry(ip)
            .or_insert(TimeRange { first: t, last: t })
            .observe(t);
        self.name_by_ip
            .entry(ip)
            .or_default()
            .entry(name.clone())
            .or_insert(TimeRange { first: t, last: t })
            .observe(t);
    }

    fn observe_cname(&mut self, alias: &DomainName, target: &DomainName, t: SimTime) {
        if self.is_blind(alias) {
            return;
        }
        self.cname_by_name
            .entry(alias.clone())
            .or_default()
            .entry(target.clone())
            .or_insert(TimeRange { first: t, last: t })
            .observe(t);
        self.alias_by_target
            .entry(target.clone())
            .or_default()
            .entry(alias.clone())
            .or_insert(TimeRange { first: t, last: t })
            .observe(t);
    }

    /// Ingest one full resolver response at instant `t`: the CNAME chain
    /// and, as DNSDB does, an A observation for **every** name in the chain
    /// against each answered address.
    pub fn record_resolution(&mut self, res: &Resolution, t: SimTime) {
        for rec in &res.chain {
            if let Rdata::Cname(target) = &rec.rdata {
                self.observe_cname(&rec.name, target, t);
            }
        }
        for name in res.all_names() {
            for &ip in &res.ips {
                self.observe_a(&name, ip, t);
            }
        }
    }

    /// All addresses `name` was observed mapping to within `window`
    /// (rrset-by-name query).
    pub fn ips_of(&self, name: &DomainName, window: &StudyWindow) -> BTreeSet<Ipv4Addr> {
        self.a_by_name
            .get(name)
            .map(|m| {
                m.iter()
                    .filter(|(_, r)| r.overlaps(window))
                    .map(|(ip, _)| *ip)
                    .collect()
            })
            .unwrap_or_default()
    }

    /// All owner names observed with A records to `ip` within `window`
    /// (rdata-by-IP query). Because full chains are ingested, CNAME aliases
    /// of the canonical host appear here too — exactly the §4.2.1
    /// exclusivity evidence.
    pub fn names_of_ip(&self, ip: Ipv4Addr, window: &StudyWindow) -> BTreeSet<DomainName> {
        self.name_by_ip
            .get(&ip)
            .map(|m| {
                m.iter()
                    .filter(|(_, r)| r.overlaps(window))
                    .map(|(n, _)| n.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Distinct SLDs among [`DnsDb::names_of_ip`] — the quantity the
    /// dedicated/shared classifier thresholds on.
    pub fn slds_of_ip(&self, ip: Ipv4Addr, window: &StudyWindow) -> BTreeSet<DomainName> {
        self.names_of_ip(ip, window).iter().map(|n| n.sld()).collect()
    }

    /// CNAME targets recorded for `alias` within `window`.
    pub fn cname_targets(&self, alias: &DomainName, window: &StudyWindow) -> BTreeSet<DomainName> {
        self.cname_by_name
            .get(alias)
            .map(|m| {
                m.iter()
                    .filter(|(_, r)| r.overlaps(window))
                    .map(|(n, _)| n.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Aliases observed CNAME-ing to `target` within `window`.
    pub fn aliases_of(&self, target: &DomainName, window: &StudyWindow) -> BTreeSet<DomainName> {
        self.alias_by_target
            .get(target)
            .map(|m| {
                m.iter()
                    .filter(|(_, r)| r.overlaps(window))
                    .map(|(n, _)| n.clone())
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Whether the database holds *any* record for `name` in `window` —
    /// the §4.2.1/§4.2.2 "no record in DNSDB" predicate.
    pub fn has_records(&self, name: &DomainName, window: &StudyWindow) -> bool {
        !self.ips_of(name, window).is_empty()
            || !self.cname_targets(name, window).is_empty()
    }

    /// Dump all A observations (reporting/tests).
    pub fn a_observations(&self) -> Vec<DnsDbObservation> {
        let mut out: Vec<DnsDbObservation> = self
            .a_by_name
            .iter()
            .flat_map(|(name, m)| {
                m.iter().map(move |(ip, r)| DnsDbObservation {
                    name: name.clone(),
                    rdata: Rdata::A(*ip),
                    first: r.first,
                    last: r.last,
                })
            })
            .collect();
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Number of distinct names with at least one A observation.
    pub fn num_names(&self) -> usize {
        self.a_by_name.len()
    }

    /// Number of distinct addresses with at least one observation.
    pub fn num_ips(&self) -> usize {
        self.name_by_ip.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolver::Resolver;
    use crate::zone::{RotationPolicy, ZoneDb};

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 1, last)
    }

    /// Paper example 1: devA.com → CNAME devA-vm.ec2compute.amazonaws.com
    /// → dedicated VM IP. Example 2: devB.com → CNAME chain into a CDN
    /// name whose IP also serves anothersite.com.
    fn populated() -> DnsDb {
        let mut zones = ZoneDb::new();
        zones.insert_cname(d("deva.com"), d("deva-vm.ec2compute.amazonaws.com"));
        zones.insert_pool(
            d("deva-vm.ec2compute.amazonaws.com"),
            vec![ip(10)],
            RotationPolicy::STABLE,
        );
        zones.insert_cname(d("devb.com"), d("devb.com.akadns.net"));
        zones.insert_cname(d("anothersite.com"), d("anothersite.com.akadns.net"));
        zones.insert_pool(d("devb.com.akadns.net"), vec![ip(20)], RotationPolicy::STABLE);
        zones.insert_pool(d("anothersite.com.akadns.net"), vec![ip(20)], RotationPolicy::STABLE);

        let resolver = Resolver::new(&zones);
        let mut db = DnsDb::new();
        for (q, t) in [("deva.com", 100u64), ("devb.com", 200), ("anothersite.com", 300)] {
            let res = resolver.resolve(&d(q), SimTime(t)).unwrap();
            db.record_resolution(&res, SimTime(t));
        }
        db
    }

    #[test]
    fn rdata_by_ip_includes_cname_aliases() {
        let db = populated();
        let names = db.names_of_ip(ip(10), &StudyWindow::FULL);
        assert!(names.contains(&d("deva.com")));
        assert!(names.contains(&d("deva-vm.ec2compute.amazonaws.com")));
    }

    #[test]
    fn shared_cdn_ip_serves_multiple_slds() {
        let db = populated();
        let slds = db.slds_of_ip(ip(20), &StudyWindow::FULL);
        assert!(slds.contains(&d("devb.com")));
        assert!(slds.contains(&d("anothersite.com")));
        assert!(slds.contains(&d("akadns.net")));
        assert_eq!(slds.len(), 3);
    }

    #[test]
    fn dedicated_vm_ip_has_two_slds_device_plus_cloud() {
        // The paper's EC2 case: the IP reverse-maps only to the VM name and
        // the device CNAME — one device SLD plus the cloud SLD.
        let db = populated();
        let slds = db.slds_of_ip(ip(10), &StudyWindow::FULL);
        assert_eq!(slds.len(), 2);
        assert!(slds.contains(&d("deva.com")));
        assert!(slds.contains(&d("amazonaws.com")));
    }

    #[test]
    fn window_filtering() {
        let db = populated();
        let early = StudyWindow { start: SimTime(0), end: SimTime(150) };
        let late = StudyWindow { start: SimTime(150), end: SimTime(400) };
        assert!(db.has_records(&d("deva.com"), &early));
        assert!(!db.has_records(&d("deva.com"), &late), "deva observed only at t=100");
        assert!(db.has_records(&d("devb.com"), &late));
    }

    #[test]
    fn ips_of_name() {
        let db = populated();
        let ips = db.ips_of(&d("devb.com"), &StudyWindow::FULL);
        assert_eq!(ips.into_iter().collect::<Vec<_>>(), vec![ip(20)]);
    }

    #[test]
    fn cname_indexes_both_ways() {
        let db = populated();
        let targets = db.cname_targets(&d("devb.com"), &StudyWindow::FULL);
        assert!(targets.contains(&d("devb.com.akadns.net")));
        let aliases = db.aliases_of(&d("devb.com.akadns.net"), &StudyWindow::FULL);
        assert!(aliases.contains(&d("devb.com")));
    }

    #[test]
    fn blind_slds_drop_observations() {
        let mut zones = ZoneDb::new();
        zones.insert_pool(d("c.deve.com"), vec![ip(30)], RotationPolicy::STABLE);
        let resolver = Resolver::new(&zones);
        let res = resolver.resolve(&d("c.deve.com"), SimTime(0)).unwrap();

        let mut db = DnsDb::new();
        db.add_blind_sld(d("deve.com"));
        db.record_resolution(&res, SimTime(0));
        assert!(!db.has_records(&d("c.deve.com"), &StudyWindow::FULL));
        assert!(db.names_of_ip(ip(30), &StudyWindow::FULL).is_empty());
    }

    #[test]
    fn time_range_merging() {
        let mut zones = ZoneDb::new();
        zones.insert_pool(d("x.com"), vec![ip(1)], RotationPolicy::STABLE);
        let resolver = Resolver::new(&zones);
        let mut db = DnsDb::new();
        for t in [50u64, 500, 5] {
            let res = resolver.resolve(&d("x.com"), SimTime(t)).unwrap();
            db.record_resolution(&res, SimTime(t));
        }
        let obs = db.a_observations();
        assert_eq!(obs.len(), 1);
        assert_eq!(obs[0].first, SimTime(5));
        assert_eq!(obs[0].last, SimTime(500));
    }

    #[test]
    fn counts() {
        let db = populated();
        assert_eq!(db.num_ips(), 2);
        assert!(db.num_names() >= 5);
    }
}
