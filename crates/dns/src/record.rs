//! DNS resource records (the subset the methodology consumes).

use crate::name::DomainName;
use std::fmt;
use std::net::Ipv4Addr;

/// Resource-record type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RrType {
    /// IPv4 address record.
    A,
    /// Canonical-name alias.
    Cname,
}

/// Record data.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Rdata {
    /// An IPv4 address.
    A(Ipv4Addr),
    /// An alias target.
    Cname(DomainName),
}

impl Rdata {
    /// The record type of this data.
    pub fn rr_type(&self) -> RrType {
        match self {
            Rdata::A(_) => RrType::A,
            Rdata::Cname(_) => RrType::Cname,
        }
    }
}

impl fmt::Display for Rdata {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rdata::A(ip) => write!(f, "A {ip}"),
            Rdata::Cname(d) => write!(f, "CNAME {d}"),
        }
    }
}

/// One resource record: `name → rdata`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DnsRecord {
    /// Owner name.
    pub name: DomainName,
    /// Record data.
    pub rdata: Rdata,
}

impl fmt::Display for DnsRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.name, self.rdata)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rr_type_of_rdata() {
        let d = DomainName::parse("x.com").unwrap();
        assert_eq!(Rdata::A(Ipv4Addr::LOCALHOST).rr_type(), RrType::A);
        assert_eq!(Rdata::Cname(d).rr_type(), RrType::Cname);
    }

    #[test]
    fn display_forms() {
        let rec = DnsRecord {
            name: DomainName::parse("devb.com").unwrap(),
            rdata: Rdata::Cname(DomainName::parse("devb.com.akadns.net").unwrap()),
        };
        assert_eq!(rec.to_string(), "devb.com CNAME devb.com.akadns.net");
    }
}
