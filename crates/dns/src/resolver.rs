//! The simulated resolver: CNAME chasing plus churn.
//!
//! §4.2.1 motivates DNSDB precisely because *"DNS domain to IP address
//! mappings are dynamic"*. The resolver reproduces that dynamism: a pooled
//! domain with a [`RotationPolicy`](crate::zone::RotationPolicy) of, say,
//! 4 live addresses re-drawn hourly from a pool of 12 will hand different
//! answers to queries an hour apart — so a detector that memorizes a single
//! resolution goes stale, while the passive-DNS view accumulates the whole
//! pool.
//!
//! The live subset is a deterministic function of `(domain, epoch)`, so
//! every component of the simulation (device traffic, DNSDB feeding,
//! hitlist building) observes a consistent DNS at any instant.

use crate::name::DomainName;
use crate::record::{DnsRecord, Rdata};
use crate::zone::{ZoneDb, ZoneEntry};
use haystack_net::SimTime;
use std::net::Ipv4Addr;

/// Maximum CNAME chain length before resolution is abandoned (mirrors
/// resolver loop protection).
pub const MAX_CHAIN: usize = 8;

/// The outcome of resolving one name at one instant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Resolution {
    /// The name queried.
    pub qname: DomainName,
    /// CNAME records followed, in order (empty for directly-hosted names).
    pub chain: Vec<DnsRecord>,
    /// The owner name of the final A records (equal to `qname` when
    /// `chain` is empty).
    pub canonical: DomainName,
    /// The A-record addresses served at the query instant.
    pub ips: Vec<Ipv4Addr>,
}

impl Resolution {
    /// Every owner name that appeared in the response: the qname, each
    /// CNAME target, ending at the canonical name.
    pub fn all_names(&self) -> Vec<DomainName> {
        let mut names = vec![self.qname.clone()];
        for rec in &self.chain {
            if let Rdata::Cname(t) = &rec.rdata {
                names.push(t.clone());
            }
        }
        names
    }
}

/// A resolver over a [`ZoneDb`].
#[derive(Debug, Clone, Copy)]
pub struct Resolver<'a> {
    zones: &'a ZoneDb,
}

/// Deterministically select `k` distinct indices out of `n` as a function
/// of `seed` — the rotation's subset draw. Uses a Feistel-free
/// multiplicative shuffle: repeatedly hash to pick, quadratic probing on
/// collisions. O(k) expected.
fn select_subset(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let k = k.min(n);
    if k == n {
        return (0..n).collect();
    }
    let mut picked = vec![false; n];
    let mut out = Vec::with_capacity(k);
    let mut state = seed;
    while out.len() < k {
        // SplitMix64 step.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut idx = (z % n as u64) as usize;
        while picked[idx] {
            idx = (idx + 1) % n;
        }
        picked[idx] = true;
        out.push(idx);
    }
    out.sort_unstable();
    out
}

fn name_seed(name: &DomainName) -> u64 {
    // FNV-1a over the canonical text.
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.as_str().bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

impl<'a> Resolver<'a> {
    /// Build a resolver over the given zones.
    pub fn new(zones: &'a ZoneDb) -> Self {
        Resolver { zones }
    }

    /// Resolve `qname` at instant `t`. Returns `None` if the name (or a
    /// CNAME target) is not in the zone, or the chain exceeds
    /// [`MAX_CHAIN`].
    pub fn resolve(&self, qname: &DomainName, t: SimTime) -> Option<Resolution> {
        let mut chain = Vec::new();
        let mut current = qname.clone();
        for _ in 0..=MAX_CHAIN {
            match self.zones.get(&current)? {
                ZoneEntry::Cname(target) => {
                    chain.push(DnsRecord {
                        name: current.clone(),
                        rdata: Rdata::Cname(target.clone()),
                    });
                    current = target.clone();
                }
                ZoneEntry::Pool { addrs, rotation } => {
                    if addrs.is_empty() {
                        return None;
                    }
                    let epoch = rotation.epoch(t.0);
                    let seed = name_seed(&current) ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
                    let k = rotation.active_count.min(addrs.len());
                    let ips = select_subset(addrs.len(), k, seed)
                        .into_iter()
                        .map(|i| addrs[i])
                        .collect();
                    return Some(Resolution { qname: qname.clone(), chain, canonical: current, ips });
                }
            }
        }
        None // CNAME loop or over-long chain.
    }

    /// The union of every address a pooled domain can ever serve (chasing
    /// CNAMEs) — what a *complete* passive-DNS database would eventually
    /// accumulate. Used by tests and by the hitlist oracle.
    pub fn full_pool(&self, qname: &DomainName) -> Option<Vec<Ipv4Addr>> {
        let mut current = qname.clone();
        for _ in 0..=MAX_CHAIN {
            match self.zones.get(&current)? {
                ZoneEntry::Cname(t) => current = t.clone(),
                ZoneEntry::Pool { addrs, .. } => return Some(addrs.clone()),
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zone::RotationPolicy;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 0, last)
    }

    fn zones() -> ZoneDb {
        let mut db = ZoneDb::new();
        db.insert_pool(
            d("edge.cdn.net"),
            (1..=12).map(ip).collect(),
            RotationPolicy { active_count: 4, period_secs: 3_600 },
        );
        db.insert_cname(d("devb.com"), d("devb.com.cdn.net"));
        db.insert_cname(d("devb.com.cdn.net"), d("edge.cdn.net"));
        db.insert_pool(d("api.deva.com"), vec![ip(100)], RotationPolicy::STABLE);
        db
    }

    #[test]
    fn direct_resolution() {
        let z = zones();
        let r = Resolver::new(&z);
        let res = r.resolve(&d("api.deva.com"), SimTime(0)).unwrap();
        assert!(res.chain.is_empty());
        assert_eq!(res.canonical, d("api.deva.com"));
        assert_eq!(res.ips, vec![ip(100)]);
    }

    #[test]
    fn cname_chain_resolution() {
        let z = zones();
        let r = Resolver::new(&z);
        let res = r.resolve(&d("devb.com"), SimTime(0)).unwrap();
        assert_eq!(res.chain.len(), 2);
        assert_eq!(res.canonical, d("edge.cdn.net"));
        assert_eq!(res.ips.len(), 4);
        assert_eq!(
            res.all_names(),
            vec![d("devb.com"), d("devb.com.cdn.net"), d("edge.cdn.net")]
        );
    }

    #[test]
    fn rotation_changes_answers_across_epochs() {
        let z = zones();
        let r = Resolver::new(&z);
        let a = r.resolve(&d("edge.cdn.net"), SimTime(0)).unwrap().ips;
        let b = r.resolve(&d("edge.cdn.net"), SimTime(3_600)).unwrap().ips;
        let c = r.resolve(&d("edge.cdn.net"), SimTime(1_800)).unwrap().ips;
        assert_eq!(a, c, "same epoch, same answer");
        assert_ne!(a, b, "different epochs rotate the live subset");
    }

    #[test]
    fn rotation_covers_full_pool_over_time() {
        let z = zones();
        let r = Resolver::new(&z);
        let mut seen = std::collections::HashSet::new();
        for h in 0..200u64 {
            for i in r.resolve(&d("edge.cdn.net"), SimTime(h * 3_600)).unwrap().ips {
                seen.insert(i);
            }
        }
        assert_eq!(seen.len(), 12, "churn eventually exposes the whole pool");
    }

    #[test]
    fn unknown_name_fails() {
        let z = zones();
        assert!(Resolver::new(&z).resolve(&d("nosuch.com"), SimTime(0)).is_none());
    }

    #[test]
    fn cname_loop_detected() {
        let mut db = ZoneDb::new();
        db.insert_cname(d("a.com"), d("b.com"));
        db.insert_cname(d("b.com"), d("a.com"));
        assert!(Resolver::new(&db).resolve(&d("a.com"), SimTime(0)).is_none());
    }

    #[test]
    fn empty_pool_fails() {
        let mut db = ZoneDb::new();
        db.insert_pool(d("hollow.com"), vec![], RotationPolicy::STABLE);
        assert!(Resolver::new(&db).resolve(&d("hollow.com"), SimTime(0)).is_none());
    }

    #[test]
    fn full_pool_chases_cnames() {
        let z = zones();
        let pool = Resolver::new(&z).full_pool(&d("devb.com")).unwrap();
        assert_eq!(pool.len(), 12);
    }

    #[test]
    fn chain_of_max_depth_resolves_but_longer_fails() {
        let mut db = ZoneDb::new();
        // a0 -> a1 -> ... -> a{MAX_CHAIN-1} -> pool  (MAX_CHAIN links).
        for i in 0..MAX_CHAIN {
            let from = d(&format!("a{i}.chain.com"));
            let to = if i + 1 == MAX_CHAIN {
                d("end.chain.com")
            } else {
                d(&format!("a{}.chain.com", i + 1))
            };
            db.insert_cname(from, to);
        }
        db.insert_pool(d("end.chain.com"), vec![ip(9)], RotationPolicy::STABLE);
        let r = Resolver::new(&db);
        let res = r.resolve(&d("a0.chain.com"), SimTime(0)).unwrap();
        assert_eq!(res.chain.len(), MAX_CHAIN);
        assert_eq!(res.ips, vec![ip(9)]);
        // One more link exceeds the loop guard.
        db.insert_cname(d("pre.chain.com"), d("a0.chain.com"));
        let r = Resolver::new(&db);
        assert!(r.resolve(&d("pre.chain.com"), SimTime(0)).is_none());
    }

    #[test]
    fn active_count_larger_than_pool_serves_everything() {
        let mut db = ZoneDb::new();
        db.insert_pool(
            d("tiny.com"),
            vec![ip(1), ip(2)],
            RotationPolicy { active_count: 10, period_secs: 60 },
        );
        let r = Resolver::new(&db);
        let res = r.resolve(&d("tiny.com"), SimTime(0)).unwrap();
        assert_eq!(res.ips.len(), 2);
    }

    #[test]
    fn select_subset_is_deterministic_and_distinct() {
        let a = select_subset(10, 4, 42);
        let b = select_subset(10, 4, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        let mut dedup = a.clone();
        dedup.dedup();
        assert_eq!(dedup.len(), 4);
        assert_eq!(select_subset(3, 7, 1).len(), 3, "k clamps to n");
    }
}
