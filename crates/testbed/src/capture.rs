//! Persisting Home-VP captures.
//!
//! The testbeds' packet captures are the paper's primary artifact (§2).
//! This module defines a compact, versioned binary trace format —
//! pcap-like, but carrying the ground-truth attribution (instance id,
//! domain id) that a `.pcap` cannot — so experiments can be captured
//! once and replayed by downstream tools without regenerating traffic.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic "HSTK" | version u16 | record count u64
//! then per packet (34 bytes):
//!   ts u64 | src u32 | dst u32 | sport u16 | dport u16 | proto u8 |
//!   flags u8 | bytes u32 | instance u32 | domain_id u32
//! ```

use crate::experiment::GroundTruthPacket;
use haystack_flow::{Packet, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::io::{self, Read, Write};
use std::net::Ipv4Addr;

/// File magic.
pub const MAGIC: &[u8; 4] = b"HSTK";
/// Format version.
pub const VERSION: u16 = 1;
const RECORD_LEN: usize = 34;

/// Errors from reading a trace.
#[derive(Debug)]
pub enum CaptureError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Magic or version mismatch.
    BadHeader,
    /// Trace ended mid-record or the count lied.
    Truncated,
    /// A record carried an unsupported protocol number.
    BadProtocol(u8),
}

impl From<io::Error> for CaptureError {
    fn from(e: io::Error) -> Self {
        CaptureError::Io(e)
    }
}

impl std::fmt::Display for CaptureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CaptureError::Io(e) => write!(f, "i/o error: {e}"),
            CaptureError::BadHeader => write!(f, "not a haystack trace (bad magic/version)"),
            CaptureError::Truncated => write!(f, "trace truncated"),
            CaptureError::BadProtocol(p) => write!(f, "unsupported protocol {p}"),
        }
    }
}

impl std::error::Error for CaptureError {}

/// Write a capture to any sink.
pub fn write_trace<W: Write>(mut w: W, packets: &[GroundTruthPacket]) -> io::Result<()> {
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(packets.len() as u64).to_le_bytes())?;
    let mut buf = [0u8; RECORD_LEN];
    for g in packets {
        buf[0..8].copy_from_slice(&g.packet.ts.0.to_le_bytes());
        buf[8..12].copy_from_slice(&u32::from(g.packet.src).to_le_bytes());
        buf[12..16].copy_from_slice(&u32::from(g.packet.dst).to_le_bytes());
        buf[16..18].copy_from_slice(&g.packet.sport.to_le_bytes());
        buf[18..20].copy_from_slice(&g.packet.dport.to_le_bytes());
        buf[20] = g.packet.proto.number();
        buf[21] = g.packet.flags.0;
        buf[22..26].copy_from_slice(&g.packet.bytes.to_le_bytes());
        buf[26..30].copy_from_slice(&g.instance.to_le_bytes());
        buf[30..34].copy_from_slice(&g.domain_id.to_le_bytes());
        w.write_all(&buf)?;
    }
    Ok(())
}

/// Read a capture back.
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<GroundTruthPacket>, CaptureError> {
    let mut header = [0u8; 14];
    r.read_exact(&mut header).map_err(|_| CaptureError::BadHeader)?;
    if &header[0..4] != MAGIC || u16::from_le_bytes([header[4], header[5]]) != VERSION {
        return Err(CaptureError::BadHeader);
    }
    let count = u64::from_le_bytes(header[6..14].try_into().expect("8 bytes"));
    let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
    let mut buf = [0u8; RECORD_LEN];
    for _ in 0..count {
        r.read_exact(&mut buf).map_err(|_| CaptureError::Truncated)?;
        let proto_num = buf[20];
        let proto = Proto::from_number(proto_num).ok_or(CaptureError::BadProtocol(proto_num))?;
        out.push(GroundTruthPacket {
            packet: Packet {
                ts: SimTime(u64::from_le_bytes(buf[0..8].try_into().expect("8"))),
                src: Ipv4Addr::from(u32::from_le_bytes(buf[8..12].try_into().expect("4"))),
                dst: Ipv4Addr::from(u32::from_le_bytes(buf[12..16].try_into().expect("4"))),
                sport: u16::from_le_bytes([buf[16], buf[17]]),
                dport: u16::from_le_bytes([buf[18], buf[19]]),
                proto,
                bytes: u32::from_le_bytes(buf[22..26].try_into().expect("4")),
                flags: TcpFlags(buf[21]),
            },
            instance: u32::from_le_bytes(buf[26..30].try_into().expect("4")),
            domain_id: u32::from_le_bytes(buf[30..34].try_into().expect("4")),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packets(n: u32) -> Vec<GroundTruthPacket> {
        (0..n)
            .map(|i| GroundTruthPacket {
                packet: Packet {
                    ts: SimTime(u64::from(i) * 7),
                    src: Ipv4Addr::new(100, 64, 4, 49),
                    dst: Ipv4Addr::new(198, 18, 0, (i % 200) as u8),
                    sport: 40_000 + (i % 1000) as u16,
                    dport: if i % 5 == 0 { 123 } else { 443 },
                    proto: if i % 5 == 0 { Proto::Udp } else { Proto::Tcp },
                    bytes: 40 + i % 1400,
                    flags: if i % 5 == 0 { TcpFlags::NONE } else { TcpFlags::ACK },
                },
                instance: i % 96,
                domain_id: i % 400,
            })
            .collect()
    }

    #[test]
    fn round_trip() {
        let pkts = packets(1_000);
        let mut buf = Vec::new();
        write_trace(&mut buf, &pkts).unwrap();
        assert_eq!(buf.len(), 14 + 1_000 * RECORD_LEN);
        let back = read_trace(buf.as_slice()).unwrap();
        assert_eq!(back, pkts);
    }

    #[test]
    fn empty_trace() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &[]).unwrap();
        assert!(read_trace(buf.as_slice()).unwrap().is_empty());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets(2)).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_trace(buf.as_slice()), Err(CaptureError::BadHeader)));
    }

    #[test]
    fn truncation_detected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets(10)).unwrap();
        buf.truncate(buf.len() - 5);
        assert!(matches!(read_trace(buf.as_slice()), Err(CaptureError::Truncated)));
    }

    #[test]
    fn bad_protocol_detected() {
        let mut buf = Vec::new();
        write_trace(&mut buf, &packets(1)).unwrap();
        buf[14 + 20] = 99; // protocol byte of record 0
        assert!(matches!(read_trace(buf.as_slice()), Err(CaptureError::BadProtocol(99))));
    }
}
