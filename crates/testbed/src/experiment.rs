//! The §2.3 experiment driver and Home-VP capture.
//!
//! Reproduces the paper's schedule:
//!
//! * **Active experiments** (Nov 15–18): automated voice / companion-app /
//!   power interactions, 9 810 in total, against every automatable
//!   instance. Testbed 1 (EU) starts a day after testbed 2 (US) — the
//!   paper notes "all devices are not active during the same period".
//! * **Idle experiments** (Nov 22–25): devices connected but untouched.
//!
//! All traffic exits through the Home-VP: a /28 of the ISP's residential
//! space hosting the two VPN tunnel endpoints (§2.1). The driver emits
//! [`GroundTruthPacket`]s — the packet plus the instance/domain identity
//! that only the testbed side knows; vantage points see just the packet.

use crate::catalog::{Catalog, Category, DomainSpec, TestbedId};
use crate::materialize::MaterializedWorld;
use crate::traffic::device_domain_hour;
use haystack_backend::AddressPlan;
use haystack_flow::Packet;
use haystack_net::{HourBin, Prefix4, StudyWindow};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Idle vs active experiment (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// Automated interactions running.
    Active,
    /// Devices connected but untouched.
    Idle,
}

/// A packet with its ground-truth attribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GroundTruthPacket {
    /// The on-the-wire packet (what vantage points observe).
    pub packet: Packet,
    /// Testbed instance that produced it.
    pub instance: u32,
    /// Index into [`ExperimentDriver::domain_table`].
    pub domain_id: u32,
}

/// One physical device instance.
#[derive(Debug, Clone)]
pub struct Instance {
    /// Instance id (0..96).
    pub id: u32,
    /// Index into the catalog's product list.
    pub product: usize,
    /// Which testbed holds it.
    pub testbed: TestbedId,
}

/// One entry of an instance's contact list.
#[derive(Debug, Clone)]
struct ContactEntry {
    domain_id: u32,
    spec: DomainSpec,
    rate_scale: f64,
    /// Whether interaction bursts apply to this domain for this instance.
    interactive: bool,
}

/// The experiment driver. Deterministic given `seed`.
#[derive(Debug)]
pub struct ExperimentDriver {
    catalog: Catalog,
    seed: u64,
    instances: Vec<Instance>,
    /// Global domain table: id ↔ name.
    domain_table: Vec<DomainSpec>,
    contacts: Vec<Vec<ContactEntry>>,
    home_vp: Prefix4,
    tunnel_ips: [Ipv4Addr; 2],
}

impl ExperimentDriver {
    /// Build the driver for a catalog.
    pub fn new(catalog: Catalog, seed: u64) -> Self {
        // The Home-VP /28 out of the residential space (§2.1).
        let home_vp = AddressPlan::subscribers()
            .subnet(28, 77)
            .expect("home-vp subnet");
        let tunnel_ips = [home_vp.nth(1), home_vp.nth(2)];

        let mut instances = Vec::new();
        for (pi, p) in catalog.products.iter().enumerate() {
            for tb in &p.testbeds {
                instances.push(Instance { id: instances.len() as u32, product: pi, testbed: *tb });
            }
        }

        // Global domain table and per-instance contact lists.
        let mut domain_table: Vec<DomainSpec> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut intern = |spec: &DomainSpec, table: &mut Vec<DomainSpec>| -> u32 {
            if let Some(&id) = index.get(spec.name.as_str()) {
                return id;
            }
            let id = table.len() as u32;
            index.insert(spec.name.as_str().to_string(), id);
            table.push(spec.clone());
            id
        };

        let mut contacts = Vec::with_capacity(instances.len());
        for inst in &instances {
            let product = &catalog.products[inst.product];
            let mut list = Vec::new();
            for spec in catalog.effective_domains(product.class) {
                list.push(ContactEntry {
                    domain_id: intern(spec, &mut domain_table),
                    spec: spec.clone(),
                    rate_scale: 1.0,
                    interactive: true,
                });
            }
            // Generic contacts: one NTP server plus a couple of web
            // domains for everyone; streaming properties for video gear.
            let g = &catalog.generic_domains;
            let h = inst.id as usize;
            let ntp_idx = h % 6;
            list.push(ContactEntry {
                domain_id: intern(&g[ntp_idx], &mut domain_table),
                spec: g[ntp_idx].clone(),
                rate_scale: 1.0,
                interactive: false,
            });
            for k in 0..2 {
                let web_idx = 18 + (h * 7 + k * 13) % 62;
                list.push(ContactEntry {
                    domain_id: intern(&g[web_idx], &mut domain_table),
                    spec: g[web_idx].clone(),
                    rate_scale: 0.4,
                    interactive: false,
                });
            }
            if product.category == Category::Video {
                for k in 0..2 {
                    let stream_idx = 6 + (h * 5 + k * 3) % 12;
                    list.push(ContactEntry {
                        domain_id: intern(&g[stream_idx], &mut domain_table),
                        spec: g[stream_idx].clone(),
                        rate_scale: 1.0,
                        interactive: true,
                    });
                }
            }
            contacts.push(list);
        }

        ExperimentDriver { catalog, seed, instances, domain_table, contacts, home_vp, tunnel_ips }
    }

    /// The catalog driving the experiments.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// All instances (96 for the standard catalog).
    pub fn instances(&self) -> &[Instance] {
        &self.instances
    }

    /// The global domain table; [`GroundTruthPacket::domain_id`] indexes
    /// into it.
    pub fn domain_table(&self) -> &[DomainSpec] {
        &self.domain_table
    }

    /// The Home-VP /28.
    pub fn home_vp(&self) -> Prefix4 {
        self.home_vp
    }

    /// Which experiment (if any) covers an hour.
    pub fn kind_of_hour(hour: HourBin) -> Option<ExperimentKind> {
        if StudyWindow::ACTIVE_GT.contains(hour.start()) {
            Some(ExperimentKind::Active)
        } else if StudyWindow::IDLE_GT.contains(hour.start()) {
            Some(ExperimentKind::Idle)
        } else {
            None
        }
    }

    /// Whether the instance is live in this hour (testbed 1 / EU starts
    /// its active experiments one day late).
    fn live(&self, inst: &Instance, hour: HourBin, kind: ExperimentKind) -> bool {
        match (kind, inst.testbed) {
            (ExperimentKind::Active, TestbedId::Eu) => hour.day().0 >= 1,
            _ => true,
        }
    }

    /// Deterministic interaction count for an instance-hour (0 outside
    /// active experiments and for idle-only products). Calibrated so the
    /// catalog-wide total lands near the paper's 9 810 experiments.
    pub fn interactions(&self, instance: u32, hour: HourBin) -> u32 {
        let Some(ExperimentKind::Active) = Self::kind_of_hour(hour) else {
            return 0;
        };
        let inst = &self.instances[instance as usize];
        if !self.live(inst, hour, ExperimentKind::Active) {
            return 0;
        }
        let product = &self.catalog.products[inst.product];
        if product.idle_only {
            return 0;
        }
        let mut z = self.seed ^ (u64::from(instance) << 32) ^ u64::from(hour.0);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        if z.is_multiple_of(2) {
            2 + (z >> 8) as u32 % 2 // 2 or 3 interactions
        } else {
            0
        }
    }

    /// Total interactions across the whole active window (the paper's
    /// 9 810 figure).
    pub fn total_interactions(&self) -> u64 {
        let mut total = 0u64;
        for h in StudyWindow::ACTIVE_GT.hour_bins() {
            for inst in &self.instances {
                total += u64::from(self.interactions(inst.id, h));
            }
        }
        total
    }

    /// Whether `hour` is the instance's start-of-experiment hour: devices
    /// boot at the beginning of each window ("the spike indicates the
    /// action of starting the device", §3/Figure 5a) — a burst that
    /// touches the whole domain set (config, updates, re-resolution).
    fn startup_hour(&self, inst: &Instance, hour: HourBin, kind: ExperimentKind) -> bool {
        match kind {
            ExperimentKind::Idle => hour.start() == StudyWindow::IDLE_GT.start,
            ExperimentKind::Active => match inst.testbed {
                TestbedId::Us => hour.start() == StudyWindow::ACTIVE_GT.start,
                TestbedId::Eu => hour == haystack_net::DayBin(1).first_hour(),
            },
        }
    }

    /// Generate the Home-VP capture for one hour. Empty outside the
    /// ground-truth windows.
    pub fn generate_hour(&self, world: &MaterializedWorld, hour: HourBin) -> Vec<GroundTruthPacket> {
        let Some(kind) = Self::kind_of_hour(hour) else {
            return Vec::new();
        };
        let resolver = world.resolver();
        let mut out = Vec::new();
        for inst in &self.instances {
            if !self.live(inst, hour, kind) {
                continue;
            }
            let src = match inst.testbed {
                TestbedId::Eu => self.tunnel_ips[0],
                TestbedId::Us => self.tunnel_ips[1],
            };
            let inter = self.interactions(inst.id, hour);
            let startup = self.startup_hour(inst, hour, kind);
            for (ci, entry) in self.contacts[inst.id as usize].iter().enumerate() {
                let inter_here = if entry.interactive { inter } else { 0 };
                let pkts = device_domain_hour(
                    self.seed,
                    inst.id,
                    ci,
                    &entry.spec,
                    src,
                    &resolver,
                    hour,
                    inter_here,
                    startup,
                    entry.rate_scale,
                );
                out.extend(pkts.into_iter().map(|packet| GroundTruthPacket {
                    packet,
                    instance: inst.id,
                    domain_id: entry.domain_id,
                }));
            }
        }
        out.sort_by_key(|g| g.packet.ts);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::data::standard_catalog;
    use crate::materialize::materialize;

    fn driver() -> ExperimentDriver {
        ExperimentDriver::new(standard_catalog(), 42)
    }

    #[test]
    fn ninety_six_instances() {
        assert_eq!(driver().instances().len(), 96);
    }

    #[test]
    fn total_interactions_near_9810() {
        let t = driver().total_interactions();
        assert!(
            (8_500..=11_500).contains(&t),
            "total interactions {t}, paper performed 9 810"
        );
    }

    #[test]
    fn idle_only_products_never_interact() {
        let d = driver();
        let idle_only: Vec<u32> = d
            .instances()
            .iter()
            .filter(|i| d.catalog().products[i.product].idle_only)
            .map(|i| i.id)
            .collect();
        assert!(!idle_only.is_empty());
        for h in StudyWindow::ACTIVE_GT.hour_bins() {
            for &i in &idle_only {
                assert_eq!(d.interactions(i, h), 0);
            }
        }
    }

    #[test]
    fn eu_testbed_starts_one_day_late() {
        let d = driver();
        let eu: Vec<u32> = d
            .instances()
            .iter()
            .filter(|i| i.testbed == TestbedId::Eu)
            .map(|i| i.id)
            .collect();
        for h in haystack_net::DayBin(0).hours() {
            for &i in &eu {
                assert_eq!(d.interactions(i, h), 0, "EU instance {i} active on day 0");
            }
        }
    }

    #[test]
    fn hours_outside_windows_are_silent() {
        let d = driver();
        let world = materialize(d.catalog());
        // Day 5 (Nov 20) is between the active and idle windows.
        let pkts = d.generate_hour(&world, haystack_net::DayBin(5).first_hour());
        assert!(pkts.is_empty());
    }

    #[test]
    fn idle_hour_has_traffic_from_most_instances() {
        let d = driver();
        let world = materialize(d.catalog());
        let hour = haystack_net::DayBin(8).first_hour(); // idle window
        let pkts = d.generate_hour(&world, hour);
        assert!(!pkts.is_empty());
        let active_instances: std::collections::HashSet<u32> =
            pkts.iter().map(|g| g.instance).collect();
        assert!(
            active_instances.len() > 80,
            "only {} instances produced idle traffic",
            active_instances.len()
        );
        // All traffic exits through the two tunnel endpoints.
        let srcs: std::collections::HashSet<_> = pkts.iter().map(|g| g.packet.src).collect();
        assert!(srcs.len() <= 2);
        assert!(srcs.iter().all(|s| d.home_vp().contains(*s)));
    }

    #[test]
    fn active_hour_is_busier_than_idle_hour() {
        let d = driver();
        let world = materialize(d.catalog());
        let active: usize = haystack_net::DayBin(2)
            .hours()
            .take(4)
            .map(|h| d.generate_hour(&world, h).len())
            .sum();
        let idle: usize = haystack_net::DayBin(8)
            .hours()
            .take(4)
            .map(|h| d.generate_hour(&world, h).len())
            .sum();
        assert!(active > idle, "active {active} <= idle {idle}");
    }

    #[test]
    fn idle_window_opens_with_a_startup_spike() {
        // §3/Figure 5a: "the spike indicates the action of starting the
        // device (only at the beginning)".
        let d = driver();
        let world = materialize(d.catalog());
        let first = haystack_net::DayBin(7).first_hour(); // idle window start
        let later = haystack_net::DayBin(8).first_hour();
        let unique_ips = |pkts: &[GroundTruthPacket]| {
            pkts.iter().map(|g| g.packet.dst).collect::<std::collections::HashSet<_>>().len()
        };
        let spike = d.generate_hour(&world, first);
        let steady = d.generate_hour(&world, later);
        assert!(
            spike.len() as f64 > steady.len() as f64 * 1.15,
            "startup hour {} packets should exceed steady idle {}",
            spike.len(),
            steady.len()
        );
        // The paper's Figure 5a panel counts *unique service IPs*: the
        // boot burst touches every domain, so the IP spread spikes too.
        assert!(
            unique_ips(&spike) as f64 > unique_ips(&steady) as f64 * 1.05,
            "startup IPs {} vs steady {}",
            unique_ips(&spike),
            unique_ips(&steady)
        );
    }

    #[test]
    fn domain_table_covers_all_ground_truth_packets() {
        let d = driver();
        let world = materialize(d.catalog());
        let pkts = d.generate_hour(&world, haystack_net::DayBin(8).first_hour());
        for g in &pkts {
            assert!((g.domain_id as usize) < d.domain_table().len());
        }
    }
}
