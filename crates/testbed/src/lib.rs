//! # haystack-testbed
//!
//! The ground-truth side of the paper (§2): two IoT testbeds — 96 device
//! instances, 56 unique products, ~40 manufacturers (Table 1) — whose
//! traffic is tunneled through one ISP subscriber line (the Home-VP, a /28
//! out of a residential /22).
//!
//! * [`catalog`] — the device/class/domain type model and the full
//!   standard catalog: every Table-1 product, its detection class as
//!   annotated in Figure 10 (platform / manufacturer / product level), its
//!   backend domain set with per-domain traffic profiles, hosting shapes,
//!   and the devices excluded in §4.2.3 (shared infrastructure /
//!   insufficient information).
//! * [`materialize`] — registers every catalog domain with the
//!   [`haystack_backend::UniverseBuilder`], producing the DNS/cert/AS
//!   world the experiments run against.
//! * [`traffic`] — the per-instance packet generator: laconic vs gossiping
//!   rate profiles (Figure 8), idle vs active behaviour, interaction
//!   bursts (§2.3's 9 810 automated experiments), TCP/UDP session shapes.
//! * [`experiment`] — the §2.3 schedules (idle: Nov 22–25; active:
//!   Nov 15–18) and the Home-VP full packet capture.
//!
//! Everything is deterministic given a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod catalog;
pub mod countermeasures;
pub mod experiment;
pub mod materialize;
pub mod traffic;

pub use catalog::{
    Catalog, Category, ClassSpec, DetectionLevel, DomainRole, DomainSpec, ExclusionReason,
    HostingKind, ProductSpec, TestbedId,
};
pub use experiment::{ExperimentDriver, ExperimentKind, GroundTruthPacket};
pub use materialize::{materialize, MaterializedWorld};
