//! §7.4 — hiding from the methodology.
//!
//! The paper names the escape hatches itself: *"Given that we are unable
//! to identify IoT services if they are using shared infrastructures
//! (e.g., CDNs), this also points out a good way to hide IoT services"*,
//! and the related-work discussion cites traffic shaping [36] against
//! usage inference. Each [`Countermeasure`] transforms a device class's
//! catalog entry the way a privacy-conscious vendor (or firmware update)
//! would; the `ablation_hiding` binary quantifies what each buys.

use crate::catalog::{Catalog, DomainRole, HostingKind};

/// A vendor-side evasion strategy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Countermeasure {
    /// Re-host every dedicated backend domain behind shared CDN
    /// infrastructure: IP-level attribution becomes impossible (§4.2.3
    /// removes the service), at the cost of CDN fees and latency.
    MoveToSharedInfrastructure,
    /// Firmware keeps idle heartbeats below `max_idle_pph` packets/hour:
    /// presence detection still works eventually, but the time to
    /// detection stretches with the rate (§7.3 "Network activity").
    RateLimit {
        /// Ceiling on idle packets/hour per domain.
        max_idle_pph: f64,
    },
    /// Constant-rate cover traffic ([36]-style shaping): every domain
    /// idles at exactly `level_pph`, and interaction bursts are absorbed
    /// into the constant rate. Usage inference (§7.1) loses both of its
    /// signals — while *presence* detection gets easier. Privacy is a
    /// trade, not a free lunch, and this measures it.
    ConstantRateShaping {
        /// The shaped constant rate (idle and active alike).
        level_pph: f64,
    },
}

/// Apply a countermeasure to `class` (the class's own domains only;
/// ancestors are shared with sibling products and a vendor cannot
/// unilaterally re-host them). Returns the modified catalog.
pub fn apply(catalog: &Catalog, class: &str, cm: Countermeasure) -> Catalog {
    let mut out = catalog.clone();
    let Some(spec) = out.classes.iter_mut().find(|c| c.name == class) else {
        return out;
    };
    for d in &mut spec.domains {
        match cm {
            Countermeasure::MoveToSharedInfrastructure => {
                d.hosting = HostingKind::Cdn;
            }
            Countermeasure::RateLimit { max_idle_pph } => {
                d.idle_pph = d.idle_pph.min(max_idle_pph);
            }
            Countermeasure::ConstantRateShaping { level_pph } => {
                d.idle_pph = level_pph;
                d.active_burst = 0.0;
                if d.role == DomainRole::ActiveOnly {
                    // Shaped firmware speaks to every endpoint all the
                    // time — there is no "active-only" tell anymore.
                    d.role = DomainRole::Primary;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::data::standard_catalog;

    #[test]
    fn move_to_shared_rehosts_every_domain() {
        let c = standard_catalog();
        let hidden = apply(&c, "Yi Camera", Countermeasure::MoveToSharedInfrastructure);
        let yi = hidden.class("Yi Camera").unwrap();
        assert!(yi.domains.iter().all(|d| d.hosting == HostingKind::Cdn));
        assert_eq!(yi.monitored_domain_count(), 0, "nothing left to monitor");
        // Other classes untouched.
        assert!(hidden.class("Ring Doorbell").unwrap().monitored_domain_count() > 0);
    }

    #[test]
    fn rate_limit_caps_rates_only() {
        let c = standard_catalog();
        let limited = apply(&c, "Yi Camera", Countermeasure::RateLimit { max_idle_pph: 5.0 });
        let yi = limited.class("Yi Camera").unwrap();
        assert!(yi.domains.iter().all(|d| d.idle_pph <= 5.0));
        // Hosting unchanged: the service is still *theoretically* detectable.
        assert!(yi.monitored_domain_count() > 0);
        // Bursts survive (rate limiting idles, not interactions).
        assert!(yi.domains.iter().any(|d| d.active_burst > 0.0));
    }

    #[test]
    fn shaping_removes_usage_signals() {
        let c = standard_catalog();
        let shaped =
            apply(&c, "Blink Hub & Cam.", Countermeasure::ConstantRateShaping { level_pph: 60.0 });
        let blink = shaped.class("Blink Hub & Cam.").unwrap();
        for d in &blink.domains {
            assert_eq!(d.idle_pph, 60.0);
            assert_eq!(d.active_burst, 0.0);
            assert_ne!(d.role, DomainRole::ActiveOnly);
        }
    }

    #[test]
    fn unknown_class_is_a_no_op() {
        let c = standard_catalog();
        let same = apply(&c, "No Such Device", Countermeasure::MoveToSharedInfrastructure);
        assert_eq!(same.classes.len(), c.classes.len());
        assert_eq!(
            same.class("Yi Camera").unwrap().monitored_domain_count(),
            c.class("Yi Camera").unwrap().monitored_domain_count()
        );
    }
}
