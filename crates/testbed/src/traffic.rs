//! Per-instance packet generation.
//!
//! One device instance talking to one domain in one hour produces a
//! Poisson-distributed number of packets around the domain's rate
//! (idle rate, plus interaction bursts in active hours — §2.3), organized
//! into TCP/UDP sessions against the addresses the domain resolves to at
//! that hour. TCP sessions open with a SYN and continue with ACK/PSH data
//! segments, so flow records downstream carry realistic cumulative flags
//! (the IXP's §6.3 filter depends on this).

use crate::catalog::DomainSpec;
use haystack_dns::Resolver;
use haystack_flow::{Packet, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::{HourBin, SimTime};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Draw from Poisson(λ): inversion for small λ, normal approximation with
/// continuity correction for large λ. Deterministic given the RNG.
pub fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0u64;
        let mut p = rng.gen::<f64>();
        while p > l {
            k += 1;
            p *= rng.gen::<f64>();
            if k > 10_000 {
                break; // numeric safety
            }
        }
        k
    } else {
        let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (lambda + lambda.sqrt() * z + 0.5).max(0.0) as u64
    }
}

/// Deterministic per-(instance, domain, hour) RNG seed.
fn seed_for(seed: u64, instance: u32, domain_idx: usize, hour: HourBin) -> u64 {
    let mut z = seed
        ^ (u64::from(instance) << 40)
        ^ ((domain_idx as u64) << 24)
        ^ u64::from(hour.0);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generate the packets one instance sends to one domain within one hour.
///
/// * `interactions` — automated interactions scheduled in this hour
///   (drives [`DomainSpec::rate_with_interactions`]).
/// * `startup` — the device booted this hour: a modest burst (config
///   fetch, re-resolution, time sync) touches every domain — Figure 5a's
///   leading spike, far smaller than a functional interaction.
/// * `rate_scale` — instance-level multiplier (e.g. generic streaming
///   domains are damped for non-video devices).
///
/// Returns packets sorted by timestamp.
#[allow(clippy::too_many_arguments)]
pub fn device_domain_hour(
    global_seed: u64,
    instance: u32,
    domain_idx: usize,
    spec: &DomainSpec,
    src: Ipv4Addr,
    resolver: &Resolver<'_>,
    hour: HourBin,
    interactions: u32,
    startup: bool,
    rate_scale: f64,
) -> Vec<Packet> {
    let mut rng = SmallRng::seed_from_u64(seed_for(global_seed, instance, domain_idx, hour));
    // An interaction exercises *some* of the device's interactive
    // endpoints, not all of them every time: regular primaries see the
    // burst in about half their interaction hours (active-only domains
    // always do — they exist only for this).
    let eff_interactions = if interactions > 0
        && spec.role != crate::catalog::DomainRole::ActiveOnly
        && rng.gen_bool(0.5)
    {
        0
    } else {
        interactions
    };
    let startup_pph = if startup { 40.0 + (spec.idle_pph * 0.5).min(80.0) } else { 0.0 };
    let lambda = (spec.rate_with_interactions(eff_interactions) + startup_pph) * rate_scale;
    let n = poisson(lambda, &mut rng);
    if n == 0 {
        return Vec::new();
    }
    let Some(resolution) = resolver.resolve(&spec.name, hour.start()) else {
        return Vec::new();
    };
    let ips = &resolution.ips;
    // Busier device-hours touch more of the domain's live addresses
    // (re-resolution + connection churn): this is what dilutes per-IP
    // packet counts and caps the §3 service-IP visibility near the
    // paper's ~16 % under 1/1000 sampling.
    let endpoints = if n > 1_500 {
        // Very hot services (voice endpoints, streaming) keep long-lived
        // connections to few addresses — these are Figure 6's heavy
        // hitters and must stay concentrated enough to survive sampling.
        3.min(ips.len())
    } else {
        (1 + n as usize / 30).min(6).min(ips.len())
    };
    let mut out = Vec::with_capacity(n as usize + endpoints * 2);
    let hour_start = hour.start().0;
    let mut remaining = n;
    for e in 0..endpoints {
        let dst = ips[rng.gen_range(0..ips.len())];
        let sport = 32_768 + (rng.gen::<u16>() % 28_000);
        let share = remaining / (endpoints - e) as u64;
        let share = if e == endpoints - 1 { remaining } else { share };
        remaining -= share;
        if share == 0 {
            continue;
        }
        // Sessions of ~8–40 packets spread across the hour.
        let mut sent = 0u64;
        while sent < share {
            let sess = (8 + rng.gen_range(0u64..32)).min(share - sent) as u32;
            let t0 = hour_start + rng.gen_range(0u64..3_400);
            for k in 0..sess {
                let ts = SimTime(t0 + u64::from(k) / 4); // ~4 pkts/sec within a session
                let flags = match spec.proto {
                    Proto::Udp => TcpFlags::NONE,
                    Proto::Tcp if k == 0 => TcpFlags::SYN,
                    Proto::Tcp => {
                        if rng.gen_bool(0.5) {
                            TcpFlags::ACK
                        } else {
                            TcpFlags::ACK | TcpFlags::PSH
                        }
                    }
                };
                let jitter = rng.gen_range(0..(spec.bytes_per_pkt / 4 + 1));
                out.push(Packet {
                    ts,
                    src,
                    dst,
                    sport,
                    dport: spec.port,
                    proto: spec.proto,
                    bytes: spec.bytes_per_pkt + jitter,
                    flags,
                });
            }
            sent += u64::from(sess);
        }
    }
    out.sort_by_key(|p| p.ts);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{DomainRole, HostingKind};
    use haystack_dns::zone::RotationPolicy;
    use haystack_dns::{DomainName, ZoneDb};

    fn spec(pph: f64, proto: Proto) -> DomainSpec {
        DomainSpec {
            name: DomainName::parse("d0.test-iot.com").unwrap(),
            role: DomainRole::Primary,
            hosting: HostingKind::DEDICATED_DEFAULT,
            port: if proto == Proto::Udp { 123 } else { 443 },
            proto,
            idle_pph: pph,
            active_burst: 500.0,
            bytes_per_pkt: 300,
            dnsdb_blind: false,
            https: true,
        }
    }

    fn zones() -> ZoneDb {
        let mut z = ZoneDb::new();
        z.insert_pool(
            DomainName::parse("d0.test-iot.com").unwrap(),
            (1..=8).map(|i| Ipv4Addr::new(198, 18, 9, i)).collect(),
            RotationPolicy { active_count: 4, period_secs: 3_600 },
        );
        z
    }

    const SRC: Ipv4Addr = Ipv4Addr::new(100, 64, 4, 49);

    #[test]
    fn deterministic_given_seed() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(200.0, Proto::Tcp);
        let a = device_domain_hour(7, 3, 0, &s, SRC, &r, HourBin(5), 0, false, 1.0);
        let b = device_domain_hour(7, 3, 0, &s, SRC, &r, HourBin(5), 0, false, 1.0);
        assert_eq!(a, b);
        let c = device_domain_hour(8, 3, 0, &s, SRC, &r, HourBin(5), 0, false, 1.0);
        assert_ne!(a, c, "different seed, different traffic");
    }

    #[test]
    fn packet_volume_tracks_rate() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(300.0, Proto::Tcp);
        let total: usize = (0..50)
            .map(|h| device_domain_hour(1, 0, 0, &s, SRC, &r, HourBin(h), 0, false, 1.0).len())
            .sum();
        let mean = total as f64 / 50.0;
        assert!((250.0..350.0).contains(&mean), "mean {mean} pkts/hour for rate 300");
    }

    #[test]
    fn interactions_add_bursts() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(50.0, Proto::Tcp);
        let idle = device_domain_hour(1, 0, 0, &s, SRC, &r, HourBin(5), 0, false, 1.0).len();
        let active = device_domain_hour(1, 0, 0, &s, SRC, &r, HourBin(5), 2, false, 1.0).len();
        assert!(active > idle + 500, "idle {idle}, active {active}");
    }

    #[test]
    fn tcp_sessions_start_with_syn_and_carry_data() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(120.0, Proto::Tcp);
        let pkts = device_domain_hour(2, 1, 0, &s, SRC, &r, HourBin(3), 0, false, 1.0);
        assert!(pkts.iter().any(|p| p.flags.contains(TcpFlags::SYN)));
        assert!(pkts.iter().any(|p| p.flags.is_established_evidence()));
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts), "sorted by time");
        assert!(pkts.iter().all(|p| p.dport == 443 && p.src == SRC));
    }

    #[test]
    fn udp_packets_have_no_flags() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(60.0, Proto::Udp);
        let pkts = device_domain_hour(2, 1, 0, &s, SRC, &r, HourBin(3), 0, false, 1.0);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.flags == TcpFlags::NONE && p.dport == 123));
    }

    #[test]
    fn destinations_come_from_live_resolution() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(400.0, Proto::Tcp);
        let live: std::collections::HashSet<_> = r
            .resolve(&s.name, HourBin(3).start())
            .unwrap()
            .ips
            .into_iter()
            .collect();
        let pkts = device_domain_hour(2, 1, 0, &s, SRC, &r, HourBin(3), 0, false, 1.0);
        assert!(pkts.iter().all(|p| live.contains(&p.dst)));
    }

    #[test]
    fn zero_rate_produces_nothing() {
        let z = zones();
        let r = Resolver::new(&z);
        let s = spec(0.0, Proto::Tcp);
        assert!(device_domain_hour(1, 0, 0, &s, SRC, &r, HourBin(0), 0, false, 1.0).is_empty());
    }

    #[test]
    fn poisson_mean() {
        let mut rng = SmallRng::seed_from_u64(42);
        for lambda in [0.5f64, 5.0, 25.0, 80.0] {
            let n = 20_000;
            let total: u64 = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.sqrt() * 0.2 + 0.05,
                "lambda {lambda}, mean {mean}"
            );
        }
    }
}
