//! Bridges the catalog to the backend universe: registers every domain's
//! hosting with the [`UniverseBuilder`] and returns the assembled world
//! plus a domain→class directory used by evaluation oracles.

use crate::catalog::{Catalog, HostingKind};
use haystack_backend::{BackendUniverse, UniverseBuilder};
use haystack_dns::{DomainName, Resolver};
use std::collections::HashMap;

/// The standard cloud provider all catalog CloudVm domains rent from.
pub const CLOUD_PROVIDER: &str = "cloudnova";
/// The standard CDN all catalog Cdn domains front through.
pub const CDN_PROVIDER: &str = "akadns";

/// The materialized world: DNS + scans + AS registry (in
/// [`BackendUniverse`]) and the evaluation directory.
#[derive(Debug)]
pub struct MaterializedWorld {
    /// The server-side Internet.
    pub universe: BackendUniverse,
    /// Domain → detection-class name (None for generic domains).
    pub directory: HashMap<DomainName, Option<&'static str>>,
}

impl MaterializedWorld {
    /// Resolver over the universe's zones.
    pub fn resolver(&self) -> Resolver<'_> {
        Resolver::new(&self.universe.zones)
    }

    /// The class a domain belongs to (evaluation oracle).
    pub fn class_of(&self, d: &DomainName) -> Option<&'static str> {
        self.directory.get(d).copied().flatten()
    }

    /// Whether a domain is one of the catalog's generic (non-IoT) domains.
    pub fn is_generic(&self, d: &DomainName) -> bool {
        matches!(self.directory.get(d), Some(None))
    }
}

/// Register every catalog domain with a fresh universe and build it.
pub fn materialize(catalog: &Catalog) -> MaterializedWorld {
    let mut b = UniverseBuilder::new();
    b.add_cloud(CLOUD_PROVIDER, &format!("ec2compute.{CLOUD_PROVIDER}.com"));
    b.add_cdn(CDN_PROVIDER, &format!("{CDN_PROVIDER}.net"), 96, 4, 3_600);

    let mut directory: HashMap<DomainName, Option<&'static str>> = HashMap::new();
    let mut operators_added: std::collections::HashSet<String> = Default::default();

    for class in &catalog.classes {
        for d in &class.domains {
            directory.insert(d.name.clone(), Some(class.name));
            match d.hosting {
                HostingKind::Dedicated { pool, active, period_secs } => {
                    let op = d.name.sld().as_str().to_string();
                    if operators_added.insert(op.clone()) {
                        b.add_operator(&op);
                    }
                    b.host_dedicated(&op, &d.name, pool, active, period_secs);
                }
                HostingKind::CloudVm => {
                    let tenant = d.name.sld().as_str().to_string();
                    b.host_cloud_vm(CLOUD_PROVIDER, &tenant, &d.name);
                }
                HostingKind::Cdn => {
                    b.host_cdn(CDN_PROVIDER, &d.name);
                }
            }
        }
    }
    for d in &catalog.generic_domains {
        directory.insert(d.name.clone(), None);
        match d.hosting {
            HostingKind::Cdn => b.host_cdn(CDN_PROVIDER, &d.name),
            HostingKind::Dedicated { pool, active, period_secs } => {
                b.host_generic(&d.name, pool, active, period_secs);
            }
            HostingKind::CloudVm => {
                let tenant = d.name.sld().as_str().to_string();
                b.host_cloud_vm(CLOUD_PROVIDER, &tenant, &d.name);
            }
        }
    }

    MaterializedWorld { universe: b.build(), directory }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::data::standard_catalog;
    use haystack_net::SimTime;

    #[test]
    fn every_catalog_domain_resolves() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let r = world.resolver();
        for d in catalog.iot_domains() {
            let res = r.resolve(&d.name, SimTime(0));
            assert!(res.is_some(), "domain {} does not resolve", d.name);
            assert!(!res.unwrap().ips.is_empty());
        }
        for d in &catalog.generic_domains {
            assert!(r.resolve(&d.name, SimTime(0)).is_some(), "generic {} unresolvable", d.name);
        }
    }

    #[test]
    fn hosting_oracle_matches_catalog() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        for d in catalog.iot_domains() {
            assert_eq!(
                world.universe.is_dedicated(&d.name),
                Some(d.hosting.is_dedicated()),
                "hosting mismatch for {}",
                d.name
            );
        }
    }

    #[test]
    fn directory_classifies_domains() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let avs = DomainName::parse("avs-alexa.amazon-iot.com").unwrap();
        assert_eq!(world.class_of(&avs), Some("Alexa Enabled"));
        let ntp = DomainName::parse("ntp0.pool-time.org").unwrap();
        assert!(world.is_generic(&ntp));
        assert_eq!(world.class_of(&ntp), None);
    }

    #[test]
    fn cdn_domains_share_edge_ips_across_classes() {
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let r = world.resolver();
        // Two shared domains from different classes resolve into the same
        // edge pool (the precondition for §4.2's shared classification).
        let a = DomainName::parse("s0.blink-iot.com").unwrap();
        let b = DomainName::parse("s0.yi-iot.com").unwrap();
        let pa = r.full_pool(&a).unwrap();
        let pb = r.full_pool(&b).unwrap();
        assert_eq!(pa, pb);
    }
}
