//! The device catalog: types and the full standard instantiation.
//!
//! The catalog encodes three layers of the paper's ground truth:
//!
//! 1. **Products** (Table 1): name, category, manufacturer, which testbeds
//!    hold an instance, whether only idle experiments were possible, and
//!    the product's market standing (Figure 14's rank bands) plus wild
//!    deployment penetration used by the population model.
//! 2. **Detection classes** (Figure 10's rows): the unit at which rules
//!    are generated — platform, manufacturer, or product level — arranged
//!    in the §4.3.2 hierarchies (Alexa Enabled ⊃ Amazon Product ⊃ Fire TV;
//!    Samsung IoT ⊃ Samsung TV). Excluded classes carry their §4.2.3
//!    reason instead of rules.
//! 3. **Domains** per class: synthetic FQDNs with per-domain traffic
//!    profiles (Figure 8's laconic vs gossiping split), hosting shape
//!    (dedicated / cloud VM / CDN — Figure 1's patterns A, B, C), service
//!    port, and the DNSDB-coverage / HTTPS flags that drive the §4.2.2
//!    Censys fallback.
//!
//! Domain names are synthetic (`d3.blink-iot.com` style) because the paper
//! anonymizes its domain list ("amazon domain23"); the *structure* — how
//! many domains, their rates, their hosting — is what the methodology
//! consumes, and that follows the paper's reported counts.

use haystack_dns::{DomainName, NameError};
use haystack_net::ports::Proto;

/// Table 1's device categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Category {
    /// Cameras, doorbells.
    Surveillance,
    /// Smart hubs.
    SmartHubs,
    /// Plugs, bulbs, thermostats, sensors.
    HomeAutomation,
    /// TVs and streaming devices.
    Video,
    /// Smart speakers.
    Audio,
    /// Kitchen and white goods.
    Appliances,
}

impl Category {
    /// Label as printed in Table 1.
    pub fn label(self) -> &'static str {
        match self {
            Category::Surveillance => "Surveillance",
            Category::SmartHubs => "Smart Hubs",
            Category::HomeAutomation => "Home Automation",
            Category::Video => "Video",
            Category::Audio => "Audio",
            Category::Appliances => "Appliances",
        }
    }
}

/// §4.3's three rule granularities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DetectionLevel {
    /// Off-the-shelf platform shared by several manufacturers (Tuya-like).
    Platform,
    /// A manufacturer's shared backend.
    Manufacturer,
    /// A specific product distinguishable by extra domains.
    Product,
}

impl DetectionLevel {
    /// Figure-10-style suffix: `(Pl.)`, `(Man.)`, `(Pr.)`.
    pub fn suffix(self) -> &'static str {
        match self {
            DetectionLevel::Platform => "(Pl.)",
            DetectionLevel::Manufacturer => "(Man.)",
            DetectionLevel::Product => "(Pr.)",
        }
    }
}

/// Why a class was excluded from rule generation (§4.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExclusionReason {
    /// All (or almost all) domains on shared infrastructure: Google Home &
    /// Mini, Apple TV, Lefun camera.
    SharedInfrastructure,
    /// Not enough identifiable domains: LG TV (1 of 4), WeMo Plug, Wink 2.
    InsufficientInfo,
}

/// Figure 1's hosting shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HostingKind {
    /// Operator-run dedicated servers: a private pool with rotation.
    Dedicated {
        /// Pool size.
        pool: u32,
        /// Live addresses per rotation epoch.
        active: usize,
        /// Rotation period in seconds (0 = stable).
        period_secs: u64,
    },
    /// Tenant-exclusive cloud VM (single stable IP).
    CloudVm,
    /// CDN-fronted (shared edge IPs) — undetectable at the IP level.
    Cdn,
}

impl HostingKind {
    /// A typical dedicated pool.
    pub const DEDICATED_DEFAULT: HostingKind =
        HostingKind::Dedicated { pool: 10, active: 6, period_secs: 6 * 3_600 };
    /// A large anycast-ish dedicated pool for very hot services.
    pub const DEDICATED_LARGE: HostingKind =
        HostingKind::Dedicated { pool: 24, active: 8, period_secs: 3_600 };

    /// Whether service IPs are exclusive to the domain's SLD.
    pub fn is_dedicated(self) -> bool {
        !matches!(self, HostingKind::Cdn)
    }
}

/// The role a domain plays for its IoT service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainRole {
    /// A Primary domain contacted continuously (keep-alives, heartbeats)
    /// — the backbone of idle-mode detection.
    Primary,
    /// A Primary domain contacted only (or overwhelmingly) during active
    /// use — the §7.1 usage-detection signal.
    ActiveOnly,
    /// A Support domain (§4.1): complementary service registered to a
    /// third party (the `samsung-*.whisk.com` example).
    Support,
}

/// One backend domain of a detection class.
#[derive(Debug, Clone)]
pub struct DomainSpec {
    /// Synthetic FQDN.
    pub name: DomainName,
    /// Role (primary / active-only / support).
    pub role: DomainRole,
    /// Hosting shape.
    pub hosting: HostingKind,
    /// Server port the device dials.
    pub port: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// Mean packets/hour from one device instance when idle.
    pub idle_pph: f64,
    /// Additional mean packets per *interaction* during active
    /// experiments (a 2-minute burst).
    pub active_burst: f64,
    /// Mean bytes per packet.
    pub bytes_per_pkt: u32,
    /// DNSDB coverage gap (§4.2.2: the 15 no-record domains).
    pub dnsdb_blind: bool,
    /// Whether the device speaks HTTPS to this domain (prerequisite for
    /// the Censys fallback).
    pub https: bool,
}

impl DomainSpec {
    /// Mean packets/hour in an hour containing `interactions` automated
    /// interactions.
    pub fn rate_with_interactions(&self, interactions: u32) -> f64 {
        let base = match self.role {
            DomainRole::ActiveOnly => {
                if interactions == 0 {
                    self.idle_pph * 0.02 // residual chatter
                } else {
                    self.idle_pph
                }
            }
            _ => self.idle_pph,
        };
        base + f64::from(interactions) * self.active_burst
    }
}

/// One detection class — a Figure 10 row (or an excluded device group).
#[derive(Debug, Clone)]
pub struct ClassSpec {
    /// Class name as printed in Figure 10 (minus the level suffix).
    pub name: &'static str,
    /// Rule granularity.
    pub level: DetectionLevel,
    /// Hierarchy parent (class name), e.g. `Fire TV` → `Amazon Product`.
    pub parent: Option<&'static str>,
    /// The class's *own* domains (the effective set of a product also
    /// includes every ancestor's domains).
    pub domains: Vec<DomainSpec>,
    /// §4.2.3 exclusion, if any.
    pub excluded: Option<ExclusionReason>,
}

impl ClassSpec {
    /// Display name with level suffix, as in Figure 10.
    pub fn display_name(&self) -> String {
        format!("{}{}", self.name, self.level.suffix())
    }

    /// Number of dedicated (monitorable) primary domains — what Figure
    /// 10's "#domains" column counts.
    pub fn monitored_domain_count(&self) -> usize {
        self.domains
            .iter()
            .filter(|d| d.role != DomainRole::Support && d.hosting.is_dedicated())
            .count()
    }
}

/// Which physical testbed holds an instance (§2.2: one in Europe, one in
/// the US).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TestbedId {
    /// The European testbed (testbed 1 in Figure 3).
    Eu,
    /// The US testbed (testbed 2 in Figure 3).
    Us,
}

/// Figure 14's market-rank bands in the ISP's country.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MarketRank {
    /// Amazon rank ≤ 10.
    Top10,
    /// ≤ 100.
    Top100,
    /// ≤ 200.
    Top200,
    /// ≤ 500.
    Top500,
    /// ≤ 2 000.
    Top2k,
    /// ≤ 10 000.
    Top10k,
    /// Not sold in the ISP's country.
    NoMarket,
    /// No ranking available.
    Other,
}

impl MarketRank {
    /// Figure-14 label.
    pub fn label(self) -> &'static str {
        match self {
            MarketRank::Top10 => "Top 10",
            MarketRank::Top100 => "Top 100",
            MarketRank::Top200 => "Top 200",
            MarketRank::Top500 => "Top 500",
            MarketRank::Top2k => "Top 2k",
            MarketRank::Top10k => "10k",
            MarketRank::NoMarket => "No Market",
            MarketRank::Other => "Other",
        }
    }
}

/// One Table-1 product.
#[derive(Debug, Clone)]
pub struct ProductSpec {
    /// Product name as in Table 1.
    pub name: &'static str,
    /// Manufacturer (the unit of the "31 of 40 manufacturers" claim).
    pub manufacturer: &'static str,
    /// Table-1 category.
    pub category: Category,
    /// Detection class this product maps to.
    pub class: &'static str,
    /// Testbeds holding an instance.
    pub testbeds: Vec<TestbedId>,
    /// Table 1's "(idle)" marker: interactions could not be automated.
    pub idle_only: bool,
    /// Market standing in the ISP's country (Figure 14).
    pub market_rank: MarketRank,
    /// Fraction of ISP subscriber lines owning this product (wild model).
    pub penetration: f64,
}

/// The full catalog.
#[derive(Debug, Clone)]
pub struct Catalog {
    /// Detection classes (including excluded ones).
    pub classes: Vec<ClassSpec>,
    /// Products.
    pub products: Vec<ProductSpec>,
    /// Generic domains (§4.1) every household's devices also touch: big
    /// web properties, NTP pool, telemetry aggregators.
    pub generic_domains: Vec<DomainSpec>,
}

impl Catalog {
    /// Look up a class by name.
    pub fn class(&self, name: &str) -> Option<&ClassSpec> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Look up a product by name.
    pub fn product(&self, name: &str) -> Option<&ProductSpec> {
        self.products.iter().find(|p| p.name == name)
    }

    /// The ancestor chain of a class, from itself up to the root.
    pub fn ancestry(&self, class: &str) -> Vec<&ClassSpec> {
        let mut out = Vec::new();
        let mut cur = self.class(class);
        while let Some(c) = cur {
            out.push(c);
            cur = c.parent.and_then(|p| self.class(p));
        }
        out
    }

    /// Every domain a product of `class` contacts: own + ancestors' +
    /// (separately) the generic set.
    pub fn effective_domains(&self, class: &str) -> Vec<&DomainSpec> {
        self.ancestry(class).iter().flat_map(|c| c.domains.iter()).collect()
    }

    /// Distinct manufacturers in the catalog.
    pub fn manufacturers(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self.products.iter().map(|p| p.manufacturer).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Manufacturers covered by at least one non-excluded class.
    pub fn detectable_manufacturers(&self) -> Vec<&'static str> {
        let mut v: Vec<_> = self
            .products
            .iter()
            .filter(|p| {
                self.ancestry(p.class)
                    .iter()
                    .any(|c| c.excluded.is_none() && c.monitored_domain_count() > 0)
            })
            .map(|p| p.manufacturer)
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total device instances across both testbeds (the "96 devices").
    pub fn instance_count(&self) -> usize {
        self.products.iter().map(|p| p.testbeds.len()).sum()
    }

    /// All primary+support domains of all classes (the §4.1 IoT-specific
    /// universe).
    pub fn iot_domains(&self) -> Vec<&DomainSpec> {
        self.classes.iter().flat_map(|c| c.domains.iter()).collect()
    }
}

/// Build a synthetic FQDN for a class: `d<i>.<slug>-iot.com` with a few
/// specials handled by the data module.
pub(crate) fn class_domain(slug: &str, label: &str) -> Result<DomainName, NameError> {
    DomainName::parse(&format!("{label}.{slug}-iot.com"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::data::standard_catalog;

    #[test]
    fn catalog_headline_counts_match_paper() {
        let c = standard_catalog();
        // §2.2: 96 devices, 56 unique products, 40 vendors.
        assert_eq!(c.instance_count(), 96, "device instances");
        assert_eq!(c.products.len(), 56, "unique products");
        let manufacturers = c.manufacturers().len();
        assert!(
            (39..=41).contains(&manufacturers),
            "manufacturer count {manufacturers} should be ~40"
        );
    }

    #[test]
    fn detectable_manufacturer_share_is_about_77_percent() {
        let c = standard_catalog();
        let total = c.manufacturers().len() as f64;
        let detectable = c.detectable_manufacturers().len() as f64;
        let share = detectable / total;
        assert!(
            (0.70..=0.88).contains(&share),
            "detectable share {share:.2} (paper: 31/40 = 0.775)"
        );
    }

    #[test]
    fn hierarchies_are_wired() {
        let c = standard_catalog();
        let fire_tv = c.ancestry("Fire TV");
        let names: Vec<_> = fire_tv.iter().map(|c| c.name).collect();
        assert_eq!(names, vec!["Fire TV", "Amazon Product", "Alexa Enabled"]);
        let stv = c.ancestry("Samsung TV");
        assert_eq!(stv.iter().map(|c| c.name).collect::<Vec<_>>(), vec!["Samsung TV", "Samsung IoT"]);
    }

    #[test]
    fn fire_tv_contacts_many_more_domains_than_echo() {
        // §4.3.2: Fire TV contacts up to 67 domains, 34 more than Amazon
        // products (33 + the Alexa voice service domain). Counting primary
        // domains only (support domains are third-party, §4.1).
        let c = standard_catalog();
        let primary = |class: &str| {
            c.effective_domains(class)
                .iter()
                .filter(|d| d.role != DomainRole::Support)
                .count()
        };
        assert_eq!(primary("Amazon Product"), 34);
        assert_eq!(primary("Fire TV"), 68);
    }

    #[test]
    fn samsung_counts_match_section_4_3_2() {
        let c = standard_catalog();
        let primary = |class: &str| {
            c.class(class)
                .unwrap()
                .domains
                .iter()
                .filter(|d| d.role != DomainRole::Support)
                .count()
        };
        // "we monitor 14 domains in total" for Samsung IoT…
        assert_eq!(primary("Samsung IoT"), 14);
        // …and Samsung TVs contact 16 additional domains.
        assert_eq!(primary("Samsung TV"), 16);
    }

    #[test]
    fn excluded_classes_match_section_4_2_3() {
        let c = standard_catalog();
        for name in ["Google Home", "Apple TV", "Lefun Cam"] {
            assert_eq!(
                c.class(name).unwrap().excluded,
                Some(ExclusionReason::SharedInfrastructure),
                "{name}"
            );
        }
        for name in ["LG TV", "WeMo Plug", "Wink 2"] {
            assert_eq!(
                c.class(name).unwrap().excluded,
                Some(ExclusionReason::InsufficientInfo),
                "{name}"
            );
        }
    }

    #[test]
    fn domain_universe_shape_tracks_section_4() {
        let c = standard_catalog();
        let iot: Vec<_> = c.iot_domains();
        let primary = iot.iter().filter(|d| d.role != DomainRole::Support).count();
        let support = iot.iter().filter(|d| d.role == DomainRole::Support).count();
        let dedicated = iot.iter().filter(|d| d.hosting.is_dedicated()).count();
        let shared = iot.len() - dedicated;
        let blind = iot.iter().filter(|d| d.dnsdb_blind).count();
        // Paper: 415 primary + 19 support = 434 IoT-specific; 217
        // dedicated / 202 shared / 15 without DNSDB records. The synthetic
        // universe reproduces the *proportions* at roughly the same scale.
        assert!(primary >= 250, "primary domains: {primary}");
        assert!((15..=25).contains(&support), "support domains: {support}");
        let shared_frac = shared as f64 / iot.len() as f64;
        assert!((0.35..=0.60).contains(&shared_frac), "shared fraction {shared_frac:.2}");
        assert_eq!(blind, 15, "DNSDB-blind domains");
        // Generic domains exist and are plentiful (paper: ~90).
        assert!(c.generic_domains.len() >= 60);
    }

    #[test]
    fn every_product_maps_to_a_class() {
        let c = standard_catalog();
        for p in &c.products {
            assert!(c.class(p.class).is_some(), "product {} → missing class {}", p.name, p.class);
            assert!(!p.testbeds.is_empty(), "product {} in no testbed", p.name);
        }
    }

    #[test]
    fn idle_only_products_match_table_1() {
        let c = standard_catalog();
        let idle_only: Vec<_> =
            c.products.iter().filter(|p| p.idle_only).map(|p| p.name).collect();
        assert!(idle_only.contains(&"Samsung Dryer"));
        assert!(idle_only.contains(&"Samsung Fridge"));
    }

    #[test]
    fn active_only_domains_rate_model() {
        let spec = DomainSpec {
            name: DomainName::parse("x.deva-iot.com").unwrap(),
            role: DomainRole::ActiveOnly,
            hosting: HostingKind::DEDICATED_DEFAULT,
            port: 443,
            proto: Proto::Tcp,
            idle_pph: 100.0,
            active_burst: 500.0,
            bytes_per_pkt: 400,
            dnsdb_blind: false,
            https: true,
        };
        assert!(spec.rate_with_interactions(0) < 5.0);
        assert!(spec.rate_with_interactions(2) > 1000.0);
    }
}

pub mod data;
