//! The standard catalog: every Table-1 product, every Figure-10 detection
//! class, and the full synthetic domain universe.
//!
//! Structure-defining counts are taken from the paper:
//!
//! * 56 unique products, 96 instances, ~40 manufacturers (§2.2);
//! * Figure 10's per-class monitored-domain counts (1 / 2 / 3 / 4 / 5+),
//!   with exactly 20 manufacturer-level and 11 product-level rule classes;
//! * the §4.3.2 hierarchies: Alexa Enabled ⊃ Amazon Product (33 extra
//!   domains) ⊃ Fire TV (34 more); Samsung IoT (14 domains) ⊃ Samsung TV
//!   (16 more);
//! * §4.2.3 exclusions: Google Home/Mini, Apple TV, Lefun (shared
//!   infrastructure); LG TV, WeMo, Wink (insufficient information);
//! * 15 DNSDB-blind domains of which 8 (on 5 devices) are recoverable via
//!   the Censys fallback (§4.2.2);
//! * ≈19 Support domains and a rich Generic set (§4.1).
//!
//! Traffic rates are calibration inputs for Figures 8/9/10; see
//! EXPERIMENTS.md for how the resulting curves compare to the paper.

use super::{
    class_domain, Catalog, Category, ClassSpec, DetectionLevel, DomainRole, DomainSpec,
    ExclusionReason, HostingKind, MarketRank, ProductSpec, TestbedId,
};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;

/// Compact class description expanded into a [`ClassSpec`].
struct Row {
    name: &'static str,
    level: DetectionLevel,
    parent: Option<&'static str>,
    /// DNS slug; classes in one hierarchy share a slug (same SLD).
    slug: &'static str,
    /// First domain index (hierarchy classes offset into the shared SLD).
    label_offset: usize,
    /// Dedicated (monitorable) primary domains — Figure 10's count.
    ded: usize,
    /// CDN-hosted (shared) primary domains.
    shr: usize,
    /// Support domains (third-party SLDs, §4.1).
    sup: usize,
    /// How many of the dedicated domains are only used actively (§7.1).
    active_only: usize,
    /// Base idle packets/hour per instance for this class's domains.
    base_pph: f64,
    /// Rate override for domain 0 (the "critical" domain, e.g. the Alexa
    /// voice service endpoint).
    critical_pph: Option<f64>,
    /// Mean extra packets per automated interaction (2-minute burst).
    burst: f64,
    /// Among dedicated domains: DNSDB-blind but HTTPS (Censys-recoverable).
    blind_recoverable: usize,
    /// Among all domains: DNSDB-blind and not HTTPS (unrecoverable).
    blind_unrecoverable: usize,
    excluded: Option<ExclusionReason>,
}

impl Row {
    #[allow(clippy::too_many_arguments)]
    fn rule(
        name: &'static str,
        level: DetectionLevel,
        slug: &'static str,
        ded: usize,
        shr: usize,
        base_pph: f64,
        burst: f64,
    ) -> Row {
        Row {
            name,
            level,
            parent: None,
            slug,
            label_offset: 0,
            ded,
            shr,
            sup: 0,
            active_only: 0,
            base_pph,
            critical_pph: None,
            burst,
            blind_recoverable: 0,
            blind_unrecoverable: 0,
            excluded: None,
        }
    }

    fn parent(mut self, p: &'static str) -> Row {
        self.parent = Some(p);
        self
    }

    fn offset(mut self, o: usize) -> Row {
        self.label_offset = o;
        self
    }

    fn support(mut self, n: usize) -> Row {
        self.sup = n;
        self
    }

    fn active_only(mut self, n: usize) -> Row {
        self.active_only = n;
        self
    }

    fn critical(mut self, pph: f64) -> Row {
        self.critical_pph = Some(pph);
        self
    }

    fn blind(mut self, recoverable: usize, unrecoverable: usize) -> Row {
        self.blind_recoverable = recoverable;
        self.blind_unrecoverable = unrecoverable;
        self
    }

    fn excluded(mut self, r: ExclusionReason) -> Row {
        self.excluded = Some(r);
        self
    }
}

/// Log-spread a base rate across a class's domains (domain 0 hottest),
/// spanning roughly 4× down to 0.25× of `base` — the within-device spread
/// visible in Figure 8.
fn spread(base: f64, i: usize, n: usize) -> f64 {
    if n <= 1 {
        return base;
    }
    let t = i as f64 / (n - 1) as f64; // 0 → hottest, 1 → coldest
    base * 4.0_f64.powf(1.0 - 2.0 * t)
}

/// Service-port cycle for dedicated domains: mostly HTTPS with the odd
/// MQTT-over-TLS / push-service port, as the testbeds observed.
const PORT_CYCLE: [(u16, Proto); 5] =
    [(443, Proto::Tcp), (443, Proto::Tcp), (8883, Proto::Tcp), (443, Proto::Tcp), (5223, Proto::Tcp)];

fn expand(row: &Row) -> ClassSpec {
    let mut domains = Vec::with_capacity(row.ded + row.shr + row.sup);
    let mut blind_rec = row.blind_recoverable;
    let mut blind_unrec = row.blind_unrecoverable;
    for i in 0..row.ded {
        let label = if row.name == "Alexa Enabled" && i == 0 {
            "avs-alexa".to_string()
        } else {
            format!("d{}", row.label_offset + i)
        };
        let name = class_domain(row.slug, &label).expect("valid generated domain");
        let (port, proto) = PORT_CYCLE[i % PORT_CYCLE.len()];
        let role = if i >= row.ded - row.active_only {
            DomainRole::ActiveOnly
        } else {
            DomainRole::Primary
        };
        let pph = if i == 0 {
            row.critical_pph.unwrap_or_else(|| spread(row.base_pph, 0, row.ded))
        } else {
            spread(row.base_pph, i, row.ded)
        };
        // Every third dedicated domain sits on a rented cloud VM instead
        // of operator-run servers (both are "dedicated" per §4.2.1).
        let hosting = if i % 3 == 2 {
            HostingKind::CloudVm
        } else if i == 0 && pph > 500.0 {
            HostingKind::DEDICATED_LARGE
        } else {
            HostingKind::DEDICATED_DEFAULT
        };
        let (dnsdb_blind, https, port) = if blind_rec > 0 {
            blind_rec -= 1;
            (true, true, 443)
        } else if blind_unrec > 0 {
            // Unrecoverable coverage gaps speak plain MQTT: without TLS
            // the §4.2.2 certificate fallback has nothing to match.
            blind_unrec -= 1;
            (true, false, 1883)
        } else {
            (false, port == 443 || port == 8443, port)
        };
        // Interactions exercise the device's *interactive* endpoints: the
        // active-only domains and the hottest one or two primaries — not
        // the whole backend (keeps §3's active-mode IP visibility near
        // the paper's 16 %).
        let burst = if role == DomainRole::ActiveOnly || i <= 1 {
            row.burst
        } else {
            row.burst * 0.1
        };
        domains.push(DomainSpec {
            name,
            role,
            hosting,
            port,
            proto,
            idle_pph: pph,
            active_burst: burst,
            bytes_per_pkt: 150 + ((row.label_offset + i) as u32 * 83) % 700,
            dnsdb_blind,
            https,
        });
    }
    for i in 0..row.shr {
        let label = format!("s{}", row.label_offset + i);
        let name = class_domain(row.slug, &label).expect("valid generated domain");
        let (dnsdb_blind, _) = if blind_unrec > 0 {
            blind_unrec -= 1;
            (true, false)
        } else {
            (false, true)
        };
        domains.push(DomainSpec {
            name,
            role: DomainRole::Primary,
            hosting: HostingKind::Cdn,
            port: 443,
            proto: Proto::Tcp,
            idle_pph: spread(row.base_pph * 0.6, i, row.shr.max(1)),
            active_burst: row.burst * 0.5,
            bytes_per_pkt: 300 + (i as u32 * 47) % 500,
            dnsdb_blind,
            https: true,
        });
    }
    for i in 0..row.sup {
        let name = DomainName::parse(&format!(
            "{}{}.svc-partner{}.com",
            row.slug.replace('.', "-"),
            i,
            i % 4
        ))
        .expect("valid support domain");
        domains.push(DomainSpec {
            name,
            role: DomainRole::Support,
            hosting: HostingKind::Cdn,
            port: 443,
            proto: Proto::Tcp,
            idle_pph: row.base_pph * 0.1,
            active_burst: row.burst * 0.3,
            bytes_per_pkt: 500,
            dnsdb_blind: false,
            https: true,
        });
    }
    ClassSpec {
        name: row.name,
        level: row.level,
        parent: row.parent,
        domains,
        excluded: row.excluded,
    }
}

fn classes() -> Vec<ClassSpec> {
    use DetectionLevel::{Manufacturer as Man, Platform as Pl, Product as Pr};
    use ExclusionReason::{InsufficientInfo, SharedInfrastructure};
    let rows = vec![
        // ---- 1 monitored domain (Figure 10, "1 Domain" panel) ----
        // The AVS endpoint: hot even when idle; a voice interaction
        // streams audio — thousands of packets in a two-minute burst
        // (drives §7.1's 10-sampled-packets usage threshold).
        Row::rule("Alexa Enabled", Pl, "amazon", 1, 0, 600.0, 4000.0).critical(600.0),
        Row::rule("Anova Sousvide", Pr, "anova", 1, 1, 120.0, 300.0),
        Row::rule("iKettle", Pl, "smarter-ikettle", 1, 1, 140.0, 400.0),
        Row::rule("Insteon Hub", Pr, "insteon", 1, 1, 200.0, 350.0),
        Row::rule("Magichome Stripe", Pr, "magichome", 1, 1, 6.0, 600.0),
        Row::rule("Meross Dooropener", Man, "meross", 1, 1, 150.0, 300.0),
        Row::rule("Microseven Cam.", Pr, "microseven", 1, 1, 320.0, 500.0),
        Row::rule("Netatmo Weather St.", Man, "netatmo", 1, 1, 180.0, 200.0).blind(1, 0),
        Row::rule("Smarter Coffee", Pl, "smarter-coffee", 1, 1, 9.0, 600.0),
        // ---- 2 monitored domains ----
        Row::rule("AppKettle", Pr, "appkettle", 2, 1, 7.0, 600.0),
        Row::rule("Blink Hub & Cam.", Man, "blink", 2, 2, 260.0, 800.0).active_only(1),
        Row::rule("Flux Bulb", Pl, "flux", 2, 1, 7.0, 500.0),
        Row::rule("GE Microwave", Man, "ge-appliance", 2, 1, 8.0, 400.0).support(1),
        Row::rule("Icsee Doorbell", Pr, "icsee", 2, 1, 140.0, 600.0),
        Row::rule("Lightify Hub", Pl, "lightify", 2, 1, 160.0, 300.0),
        Row::rule("Luohe Cam.", Pr, "luohe", 2, 1, 230.0, 500.0),
        Row::rule("Reolink Cam.", Pr, "reolink", 2, 2, 300.0, 900.0).blind(1, 0),
        Row::rule("Sengled Dev.", Man, "sengled", 2, 1, 120.0, 250.0),
        Row::rule("Smartthings Dev.", Man, "smartthings", 2, 2, 350.0, 600.0).support(2),
        Row::rule("Wansview Cam.", Man, "wansview", 2, 1, 260.0, 700.0),
        // ---- 3 monitored domains ----
        Row::rule("Honeywell T-stat", Man, "honeywell", 3, 2, 130.0, 250.0).support(1),
        Row::rule("Xiaomi Dev.", Man, "xiaomi", 3, 3, 220.0, 500.0).support(2),
        // ---- 4 monitored domains ----
        Row::rule("Nest Device", Man, "nest", 4, 3, 60.0, 200.0).support(1).active_only(1),
        Row::rule("Ring Doorbell", Man, "ring", 4, 3, 240.0, 900.0).support(1).active_only(1).blind(2, 0),
        Row::rule("Smartlife", Pl, "smartlife", 4, 2, 70.0, 220.0),
        Row::rule("Ubell Doorbell", Man, "ubell", 4, 2, 150.0, 500.0),
        Row::rule("Yi Camera", Man, "yi", 4, 3, 280.0, 800.0).active_only(1).blind(2, 0),
        // ---- 5+ monitored domains ----
        Row::rule("Amazon Product", Man, "amazon", 20, 13, 110.0, 600.0)
            .parent("Alexa Enabled")
            .offset(1)
            .support(3)
            .active_only(3),
        Row::rule("Amcrest Cam.", Man, "amcrest", 6, 3, 270.0, 700.0).blind(2, 0),
        Row::rule("Dlink Motion Sens.", Man, "dlink", 5, 3, 100.0, 300.0),
        Row::rule("Fire TV", Pr, "amazon", 21, 13, 160.0, 900.0)
            .parent("Amazon Product")
            .offset(40)
            .active_only(4),
        Row::rule("Philips Dev.", Man, "philips", 4, 3, 310.0, 500.0).support(2),
        Row::rule("Roku TV", Pr, "roku", 8, 4, 290.0, 800.0).support(2).active_only(2),
        // §4.3.2/§6.2: 14 domains monitored but few matter — the OTN-like
        // update endpoint dominates, contacted infrequently; evening TV
        // usage lights up the top two, which is what gives Samsung its
        // modest hourly detectability and the ~×6 day/hour gain.
        Row::rule("Samsung IoT", Man, "samsung", 5, 9, 28.0, 1200.0)
            .critical(130.0)
            .support(2),
        Row::rule("Samsung TV", Pr, "samsung", 10, 6, 70.0, 700.0)
            .parent("Samsung IoT")
            .offset(20)
            .active_only(3),
        Row::rule("TP-link Dev.", Man, "tplink", 6, 3, 35.0, 120.0).support(2).active_only(1),
        Row::rule("ZModo Doorbell", Man, "zmodo", 5, 2, 170.0, 600.0),
        // ---- §4.2.3 exclusions: shared backend infrastructure ----
        Row::rule("Google Home", Man, "google-home", 0, 10, 500.0, 900.0)
            .blind(0, 2)
            .excluded(SharedInfrastructure),
        Row::rule("Apple TV", Man, "apple-tv", 0, 11, 700.0, 1200.0)
            .blind(0, 1)
            .excluded(SharedInfrastructure),
        Row::rule("Lefun Cam", Man, "lefun", 0, 2, 260.0, 500.0)
            .excluded(SharedInfrastructure),
        // ---- §4.2.3 exclusions: insufficient information ----
        Row::rule("LG TV", Man, "lg-tv", 1, 3, 280.0, 700.0).excluded(InsufficientInfo),
        Row::rule("WeMo Plug", Man, "wemo", 2, 0, 40.0, 150.0)
            .blind(0, 2)
            .excluded(InsufficientInfo),
        Row::rule("Wink 2", Man, "wink", 2, 0, 60.0, 180.0)
            .blind(0, 2)
            .excluded(InsufficientInfo),
    ];
    rows.iter().map(expand).collect()
}

/// Generic (non-IoT) domains: NTP pool, big web properties, telemetry.
/// These never become rules (§4.1 filters them) but generate the traffic
/// the domain classifier must reject, and the NTP entries feed Figure
/// 5(c)'s port breakdown.
fn generic_domains() -> Vec<DomainSpec> {
    let mut v = Vec::new();
    for i in 0..6 {
        v.push(DomainSpec {
            name: DomainName::parse(&format!("ntp{i}.pool-time.org")).unwrap(),
            role: DomainRole::Primary,
            hosting: HostingKind::Dedicated { pool: 4, active: 2, period_secs: 12 * 3_600 },
            port: 123,
            proto: Proto::Udp,
            idle_pph: 14.0,
            active_burst: 10.0,
            bytes_per_pkt: 76,
            dnsdb_blind: false,
            https: false,
        });
    }
    // Streaming/content properties (heavy for TVs).
    for i in 0..12 {
        v.push(DomainSpec {
            name: DomainName::parse(&format!("cdn{i}.videostream.tv")).unwrap(),
            role: DomainRole::Primary,
            hosting: HostingKind::Cdn,
            port: 443,
            proto: Proto::Tcp,
            idle_pph: 400.0 + 300.0 * f64::from(i % 4),
            active_burst: 3_000.0,
            bytes_per_pkt: 1_200,
            dnsdb_blind: false,
            https: true,
        });
    }
    // General web / telemetry / ads / time services.
    for i in 0..62 {
        let sld = match i % 5 {
            0 => "webmail-portal.com",
            1 => "global-search.com",
            2 => "ad-metrics.net",
            3 => "oswald-updates.com",
            _ => "wiki-knowledge.org",
        };
        v.push(DomainSpec {
            name: DomainName::parse(&format!("g{i}.{sld}")).unwrap(),
            role: DomainRole::Primary,
            hosting: if i % 2 == 0 {
                HostingKind::Cdn
            } else {
                HostingKind::Dedicated { pool: 6, active: 3, period_secs: 6 * 3_600 }
            },
            port: if i % 7 == 3 { 80 } else { 443 },
            proto: Proto::Tcp,
            idle_pph: 20.0 + f64::from(i % 9) * 30.0,
            active_burst: 200.0,
            bytes_per_pkt: 200 + (i as u32 * 59) % 800,
            dnsdb_blind: false,
            https: true,
        });
    }
    v
}

fn products() -> Vec<ProductSpec> {
    use Category::*;
    use MarketRank::*;
    use TestbedId::{Eu, Us};
    let both = || vec![Eu, Us];
    let eu = || vec![Eu];
    let us = || vec![Us];
    let p = |name: &'static str,
             manufacturer: &'static str,
             category: Category,
             class: &'static str,
             testbeds: Vec<TestbedId>,
             idle_only: bool,
             market_rank: MarketRank,
             penetration: f64| ProductSpec {
        name,
        manufacturer,
        category,
        class,
        testbeds,
        idle_only,
        market_rank,
        penetration,
    };
    vec![
        // ---- Surveillance (13) ----
        p("Amcrest Cam", "Amcrest", Surveillance, "Amcrest Cam.", both(), false, Top2k, 0.0012),
        p("Blink Cam", "Blink", Surveillance, "Blink Hub & Cam.", both(), false, Top500, 0.0030),
        p("Blink Hub", "Blink", Surveillance, "Blink Hub & Cam.", both(), false, Top500, 0.0030),
        p("Icsee Doorbell", "Icsee", Surveillance, "Icsee Doorbell", us(), false, Top10k, 0.0006),
        p("Lefun Cam", "Lefun", Surveillance, "Lefun Cam", both(), false, Top10k, 0.0004),
        p("Luohe Cam", "Luohe", Surveillance, "Luohe Cam.", us(), false, NoMarket, 0.00008),
        p("Microseven Cam", "Microseven", Surveillance, "Microseven Cam.", us(), false, NoMarket, 0.00004),
        p("Reolink Cam", "Reolink", Surveillance, "Reolink Cam.", both(), false, Top500, 0.0016),
        p("Ring Doorbell", "Ring", Surveillance, "Ring Doorbell", both(), false, Top100, 0.0056),
        p("Ubell Doorbell", "Ubell", Surveillance, "Ubell Doorbell", eu(), false, Top10k, 0.0005),
        p("Wansview Cam", "Wansview", Surveillance, "Wansview Cam.", both(), false, Top200, 0.0022),
        p("Yi Cam", "Yi", Surveillance, "Yi Camera", both(), false, Top500, 0.0020),
        p("ZModo Doorbell", "ZModo", Surveillance, "ZModo Doorbell", both(), false, Top2k, 0.0008),
        // ---- Smart Hubs (8) ----
        p("Insteon", "Insteon", SmartHubs, "Insteon Hub", both(), false, Top2k, 0.0006),
        p("Lightify", "Osram", SmartHubs, "Lightify Hub", both(), false, Top2k, 0.0014),
        p("Philips Hue", "Philips", SmartHubs, "Philips Dev.", both(), false, Top10, 0.0080),
        p("Sengled", "Sengled", SmartHubs, "Sengled Dev.", both(), false, Top2k, 0.0010),
        p("Smartthings", "SmartThings", SmartHubs, "Smartthings Dev.", both(), false, Top200, 0.0032),
        p("SwitchBot", "SwitchBot", SmartHubs, "Smartlife", eu(), false, Top2k, 0.0008),
        p("Wink 2", "Wink", SmartHubs, "Wink 2", us(), false, Top10k, 0.0003),
        p("Xiaomi Home", "Xiaomi", SmartHubs, "Xiaomi Dev.", both(), false, Top500, 0.0036),
        // ---- Home Automation (14) ----
        p("D-Link Mov Sensor", "D-Link", HomeAutomation, "Dlink Motion Sens.", both(), false, Top2k, 0.0015),
        p("Flux Bulb", "Flux", HomeAutomation, "Flux Bulb", both(), false, Top2k, 0.0009),
        p("Honeywell T-stat", "Honeywell", HomeAutomation, "Honeywell T-stat", both(), false, Top500, 0.0020),
        p("Magichome Strip", "Magichome", HomeAutomation, "Magichome Stripe", both(), false, Top2k, 0.0011),
        p("Meross Door Opener", "Meross", HomeAutomation, "Meross Dooropener", both(), false, Top100, 0.0025),
        p("Nest T-stat", "Nest", HomeAutomation, "Nest Device", both(), false, Top200, 0.0042),
        p("Philips Bulb", "Philips", HomeAutomation, "Philips Dev.", both(), false, Top10, 0.0042),
        p("Smartlife Bulb", "Tuya", HomeAutomation, "Smartlife", both(), false, Top500, 0.0040),
        p("Smartlife Remote", "Tuya", HomeAutomation, "Smartlife", eu(), false, Top2k, 0.0010),
        p("TP-Link Bulb", "TP-Link", HomeAutomation, "TP-link Dev.", both(), false, Top100, 0.0036),
        p("TP-Link Plug", "TP-Link", HomeAutomation, "TP-link Dev.", both(), false, Top100, 0.0042),
        p("WeMo Plug", "Belkin", HomeAutomation, "WeMo Plug", both(), false, Top500, 0.0020),
        p("Xiaomi Strip", "Xiaomi", HomeAutomation, "Xiaomi Dev.", both(), false, Top2k, 0.0012),
        p("Xiaomi Plug", "Xiaomi", HomeAutomation, "Xiaomi Dev.", both(), false, Top2k, 0.0014),
        // ---- Video (5) ----
        p("Apple TV", "Apple", Video, "Apple TV", both(), false, Top100, 0.0250),
        p("Fire TV", "Amazon", Video, "Fire TV", both(), false, Top10, 0.0400),
        p("LG TV", "LG", Video, "LG TV", eu(), false, Top100, 0.0300),
        p("Roku TV", "Roku", Video, "Roku TV", us(), false, NoMarket, 0.0012),
        p("Samsung TV", "Samsung", Video, "Samsung TV", both(), false, Top10, 0.0380),
        // ---- Audio (7) ----
        // Allure stands in for *all* third-party Alexa integrations in the
        // wild (fridges, alarm clocks — §4.3.1), hence the outsized
        // penetration relative to the single testbed unit.
        p("Allure with Alexa", "Allure", Audio, "Alexa Enabled", eu(), false, Top10k, 0.0220),
        p("Echo Dot", "Amazon", Audio, "Amazon Product", both(), false, Top10, 0.0720),
        p("Echo Spot", "Amazon", Audio, "Amazon Product", both(), false, Top200, 0.0100),
        p("Echo Plus", "Amazon", Audio, "Amazon Product", both(), false, Top100, 0.0250),
        p("Google Home Mini", "Google", Audio, "Google Home", both(), false, Top10, 0.0400),
        p("Google Home", "Google", Audio, "Google Home", both(), false, Top100, 0.0250),
        // ---- Appliances (9) ----
        p("Anova Sousvide", "Anova", Appliances, "Anova Sousvide", both(), false, Top500, 0.0010),
        p("Appkettle", "AppKettle", Appliances, "AppKettle", eu(), false, Top10k, 0.0004),
        p("GE Microwave", "GE", Appliances, "GE Microwave", us(), false, NoMarket, 0.0002),
        p("Netatmo Weather", "Netatmo", Appliances, "Netatmo Weather St.", both(), false, Top200, 0.0030),
        p("Samsung Dryer", "Samsung", Appliances, "Samsung IoT", eu(), true, Top500, 0.0062),
        p("Samsung Fridge", "Samsung", Appliances, "Samsung IoT", eu(), true, Top500, 0.0055),
        p("Smarter Brewer", "Smarter", Appliances, "Smarter Coffee", eu(), false, Top10k, 0.0003),
        p("Smarter Coffee Machine", "Smarter", Appliances, "Smarter Coffee", both(), false, Top10k, 0.0004),
        p("Smarter iKettle", "Smarter", Appliances, "iKettle", both(), false, Top2k, 0.0007),
        // ---- Rice cooker rounds out Xiaomi's Table-1 presence ----
        p("Xiaomi Rice Cooker", "Xiaomi", Appliances, "Xiaomi Dev.", eu(), true, NoMarket, 0.0003),
    ]
}

/// Build the standard catalog. Deterministic; no I/O.
pub fn standard_catalog() -> Catalog {
    Catalog { classes: classes(), products: products(), generic_domains: generic_domains() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_level_counts_match_section_4_3_2() {
        let c = standard_catalog();
        let active: Vec<_> = c.classes.iter().filter(|k| k.excluded.is_none()).collect();
        let man = active.iter().filter(|k| k.level == DetectionLevel::Manufacturer).count();
        let pr = active.iter().filter(|k| k.level == DetectionLevel::Product).count();
        let pl = active.iter().filter(|k| k.level == DetectionLevel::Platform).count();
        assert_eq!(man, 20, "manufacturer-level rules (paper: 20)");
        assert_eq!(pr, 11, "product-level rules (paper: 11)");
        assert!(pl >= 3, "at least 3 platforms (paper text: 3; figure shows more)");
    }

    #[test]
    fn figure_10_monitored_domain_counts() {
        let c = standard_catalog();
        let count = |n: &str| c.class(n).unwrap().monitored_domain_count();
        assert_eq!(count("Alexa Enabled"), 1);
        assert_eq!(count("Meross Dooropener"), 1);
        assert_eq!(count("Blink Hub & Cam."), 2);
        assert_eq!(count("Honeywell T-stat"), 3);
        assert_eq!(count("Xiaomi Dev."), 3);
        assert_eq!(count("Ring Doorbell"), 4);
        assert_eq!(count("Yi Camera"), 4);
        assert!(count("Amazon Product") >= 5);
        assert!(count("Fire TV") >= 5);
        assert!(count("Samsung IoT") >= 5);
    }

    #[test]
    fn blind_budget_is_15_with_8_recoverable() {
        let c = standard_catalog();
        let all: Vec<_> = c.classes.iter().flat_map(|k| k.domains.iter()).collect();
        let blind: Vec<_> = all.iter().filter(|d| d.dnsdb_blind).collect();
        assert_eq!(blind.len(), 15, "15 domains without DNSDB records");
        let recoverable = blind
            .iter()
            .filter(|d| d.https && d.hosting.is_dedicated())
            .count();
        assert_eq!(recoverable, 8, "Censys identifies data for 8 of 15");
    }

    #[test]
    fn excluded_classes_have_no_monitorable_rule_base() {
        let c = standard_catalog();
        for name in ["Google Home", "Apple TV", "Lefun Cam"] {
            assert_eq!(c.class(name).unwrap().monitored_domain_count(), 0, "{name}");
        }
        // LG TV keeps exactly one usable domain ("we are left with only
        // one out of 4") — still excluded as insufficient.
        assert_eq!(c.class("LG TV").unwrap().monitored_domain_count(), 1);
    }

    #[test]
    fn alexa_critical_domain_is_the_avs_endpoint() {
        let c = standard_catalog();
        let avs = &c.class("Alexa Enabled").unwrap().domains[0];
        assert_eq!(avs.name.as_str(), "avs-alexa.amazon-iot.com");
        assert!(avs.idle_pph >= 500.0, "AVS endpoint is hot");
    }

    #[test]
    fn hierarchy_shares_slds() {
        let c = standard_catalog();
        let alexa_sld = c.class("Alexa Enabled").unwrap().domains[0].name.sld();
        let amazon_sld = c.class("Amazon Product").unwrap().domains[0].name.sld();
        let fire_sld = c.class("Fire TV").unwrap().domains[0].name.sld();
        assert_eq!(alexa_sld, amazon_sld);
        assert_eq!(amazon_sld, fire_sld);
    }

    #[test]
    fn no_duplicate_domains_across_classes() {
        let c = standard_catalog();
        let mut seen = std::collections::HashSet::new();
        for k in &c.classes {
            for d in &k.domains {
                assert!(seen.insert(d.name.clone()), "duplicate domain {}", d.name);
            }
        }
        for d in &c.generic_domains {
            assert!(seen.insert(d.name.clone()), "generic duplicates IoT domain {}", d.name);
        }
    }

    #[test]
    fn spread_is_monotone_and_bounded() {
        for n in [2usize, 5, 20] {
            let rates: Vec<f64> = (0..n).map(|i| spread(100.0, i, n)).collect();
            for w in rates.windows(2) {
                assert!(w[0] > w[1], "rates must decrease");
            }
            assert!((rates[0] - 400.0).abs() < 1e-9);
            assert!((rates[n - 1] - 25.0).abs() < 1e-9);
        }
    }
}
