//! The §4.2.2 certificate-to-domain match criteria.
//!
//! A certificate *identifies* a domain when both hold:
//!
//! 1. some subject name matches the domain **at the SLD or higher** — i.e.
//!    the matching pattern is anchored within the domain's own registrable
//!    domain (`c.devE.com` or `*.devE.com` for the domain `c.devE.com`),
//!    not at a hosting provider's name; and
//! 2. there is **no other SAN**: every subject name on the certificate is
//!    anchored in that same SLD. A multi-tenant certificate (CDN-style,
//!    SANs across several registrable domains) identifies nobody.

use crate::cert::Certificate;
use haystack_dns::DomainName;

/// Apply the match criteria of §4.2.2.
pub fn cert_identifies_domain(cert: &Certificate, domain: &DomainName) -> bool {
    let sld = domain.sld();
    // Criterion 1: a subject name matches the domain, anchored in its SLD.
    let covered = cert
        .names
        .iter()
        .any(|p| p.matches(domain) && p.base().sld() == sld);
    if !covered {
        return false;
    }
    // Criterion 2: no foreign SAN.
    cert.names.iter().all(|p| p.base().sld() == sld)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_dns::DomainPattern;

    fn pat(s: &str) -> DomainPattern {
        DomainPattern::parse(s).unwrap()
    }

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn paper_example_positive() {
        // c.devE.com with a cert for *.devE.com and no other SAN.
        let cert = Certificate::single(pat("*.deve.com"), 0);
        assert!(cert_identifies_domain(&cert, &d("c.deve.com")));
        // Exact-name cert also matches.
        let cert = Certificate::single(pat("c.deve.com"), 0);
        assert!(cert_identifies_domain(&cert, &d("c.deve.com")));
    }

    #[test]
    fn multiple_sans_same_sld_ok() {
        let cert = Certificate::new(vec![pat("*.deve.com"), pat("api.deve.com"), pat("deve.com")], 0);
        assert!(cert_identifies_domain(&cert, &d("c.deve.com")));
    }

    #[test]
    fn foreign_san_disqualifies() {
        // CDN-style multi-tenant certificate.
        let cert = Certificate::new(vec![pat("*.deve.com"), pat("*.othertenant.net")], 0);
        assert!(!cert_identifies_domain(&cert, &d("c.deve.com")));
    }

    #[test]
    fn hosting_provider_cert_does_not_identify_tenant() {
        // The name matches nothing of the tenant: a cert for
        // *.cloudhost.com does not identify c.deve.com even if it is what
        // the server presents.
        let cert = Certificate::single(pat("*.cloudhost.com"), 0);
        assert!(!cert_identifies_domain(&cert, &d("c.deve.com")));
    }

    #[test]
    fn non_matching_name_same_sld_fails_criterion_one() {
        // Cert anchored in the right SLD but whose pattern does not cover
        // the queried FQDN (wildcard covers one label only).
        let cert = Certificate::single(pat("*.deve.com"), 0);
        assert!(!cert_identifies_domain(&cert, &d("a.b.deve.com")));
        assert!(!cert_identifies_domain(&cert, &d("deve.com")));
    }
}
