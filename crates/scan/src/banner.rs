//! HTTPS banners.
//!
//! Censys stores the HTTP(S) response banner per scanned host; §4.2.2
//! queries *"for all IPs with the same certificate and HTTPS banner
//! checksum"*. We model a banner as its `Server`-style identity line plus
//! the checksum Censys computes.

use std::fmt;

/// An HTTPS banner observation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpsBanner {
    /// The identity line the server returned (e.g.
    /// `nginx/1.14 (deva-backend)`).
    pub server_line: String,
    /// Checksum of the full banner body.
    pub checksum: u64,
}

impl HttpsBanner {
    /// Build a banner; the checksum is derived from the full body text.
    pub fn new(server_line: impl Into<String>, body: &str) -> HttpsBanner {
        let server_line = server_line.into();
        let mut h: u64 = 0x9E37_79B9_7F4A_7C15;
        for b in server_line.bytes().chain(body.bytes()) {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
            h = h.rotate_left(5);
        }
        HttpsBanner { server_line, checksum: h }
    }
}

impl fmt::Display for HttpsBanner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "banner[{:016x}: {}]", self.checksum, self.server_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_distinguishes_bodies() {
        let a = HttpsBanner::new("nginx", "body-a");
        let b = HttpsBanner::new("nginx", "body-b");
        assert_ne!(a.checksum, b.checksum);
        assert_eq!(a, HttpsBanner::new("nginx", "body-a"));
    }
}
