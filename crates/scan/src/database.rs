//! The scan database: per-IP certificate + banner observations with the
//! §4.2.2 queries.

use crate::banner::HttpsBanner;
use crate::cert::Certificate;
use crate::matcher::cert_identifies_domain;
use haystack_dns::DomainName;
use std::collections::{BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// What the scanner recorded for one host.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HostScan {
    /// The presented leaf certificate.
    pub cert: Certificate,
    /// The HTTPS banner.
    pub banner: HttpsBanner,
    /// The TLS port scanned (443 unless a device service uses 8443).
    pub port: u16,
}

/// An Internet-wide HTTPS scan snapshot, indexed for the methodology's
/// queries.
#[derive(Debug, Default, Clone)]
pub struct ScanDb {
    hosts: HashMap<Ipv4Addr, HostScan>,
    /// fingerprint → IPs presenting that certificate.
    by_fingerprint: HashMap<u64, BTreeSet<Ipv4Addr>>,
}

impl ScanDb {
    /// New, empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one scanned host. Re-scanning an IP replaces its entry.
    pub fn insert(&mut self, ip: Ipv4Addr, scan: HostScan) {
        if let Some(old) = self.hosts.get(&ip) {
            if let Some(set) = self.by_fingerprint.get_mut(&old.cert.fingerprint) {
                set.remove(&ip);
            }
        }
        self.by_fingerprint.entry(scan.cert.fingerprint).or_default().insert(ip);
        self.hosts.insert(ip, scan);
    }

    /// The scan record for one host.
    pub fn get(&self, ip: Ipv4Addr) -> Option<&HostScan> {
        self.hosts.get(&ip)
    }

    /// §4.2.2, step 1: does the certificate presented at `ip` identify
    /// `domain` (SLD-anchored match, no foreign SAN)?
    pub fn cert_at_ip_identifies(&self, ip: Ipv4Addr, domain: &DomainName) -> bool {
        self.hosts
            .get(&ip)
            .map(|h| cert_identifies_domain(&h.cert, domain))
            .unwrap_or(false)
    }

    /// §4.2.2, step 2: all IPs presenting the **same certificate and HTTPS
    /// banner checksum** as the host at `seed_ip`. Returns an empty set if
    /// the seed was never scanned.
    pub fn ips_with_same_cert_and_banner(&self, seed_ip: Ipv4Addr) -> BTreeSet<Ipv4Addr> {
        let Some(seed) = self.hosts.get(&seed_ip) else {
            return BTreeSet::new();
        };
        self.by_fingerprint
            .get(&seed.cert.fingerprint)
            .map(|candidates| {
                candidates
                    .iter()
                    .filter(|ip| {
                        self.hosts
                            .get(ip)
                            .map(|h| h.banner.checksum == seed.banner.checksum)
                            .unwrap_or(false)
                    })
                    .copied()
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Combined §4.2.2 query: find every IP attributable to `domain`,
    /// seeded by one IP known (from ground truth) to serve it. Returns
    /// `None` when the certificate check fails — the caller then cannot
    /// use Censys for this domain, as happened for 7 of the paper's 15
    /// DNSDB-less domains.
    pub fn expand_domain(&self, domain: &DomainName, seed_ip: Ipv4Addr) -> Option<BTreeSet<Ipv4Addr>> {
        if !self.cert_at_ip_identifies(seed_ip, domain) {
            return None;
        }
        Some(self.ips_with_same_cert_and_banner(seed_ip))
    }

    /// Number of scanned hosts.
    pub fn len(&self) -> usize {
        self.hosts.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.hosts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_dns::DomainPattern;

    fn pat(s: &str) -> DomainPattern {
        DomainPattern::parse(s).unwrap()
    }

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn ip(last: u8) -> Ipv4Addr {
        Ipv4Addr::new(198, 18, 2, last)
    }

    fn scan(cert: &Certificate, banner: &HttpsBanner) -> HostScan {
        HostScan { cert: cert.clone(), banner: banner.clone(), port: 443 }
    }

    /// Three hosts share devE's cert+banner; one host shares the cert but
    /// runs a different banner (staging box); one host is a CDN node with
    /// a multi-SAN cert.
    fn db() -> ScanDb {
        let cert_e = Certificate::single(pat("*.deve.com"), 7);
        let banner_e = HttpsBanner::new("deve-backend", "prod");
        let banner_staging = HttpsBanner::new("deve-backend", "staging");
        let cdn_cert = Certificate::new(vec![pat("*.deve.com"), pat("*.tenant2.net")], 9);

        let mut db = ScanDb::new();
        for i in [1u8, 2, 3] {
            db.insert(ip(i), scan(&cert_e, &banner_e));
        }
        db.insert(ip(4), scan(&cert_e, &banner_staging));
        db.insert(ip(5), scan(&cdn_cert, &banner_e));
        db
    }

    #[test]
    fn expand_domain_finds_matching_pool() {
        let db = db();
        let ips = db.expand_domain(&d("c.deve.com"), ip(1)).unwrap();
        assert_eq!(ips, [ip(1), ip(2), ip(3)].into_iter().collect());
    }

    #[test]
    fn banner_mismatch_excluded() {
        let db = db();
        let ips = db.expand_domain(&d("c.deve.com"), ip(1)).unwrap();
        assert!(!ips.contains(&ip(4)), "staging banner differs");
    }

    #[test]
    fn multi_san_cert_fails_match_criteria() {
        let db = db();
        assert_eq!(db.expand_domain(&d("c.deve.com"), ip(5)), None);
    }

    #[test]
    fn unscanned_seed_yields_none() {
        let db = db();
        assert_eq!(db.expand_domain(&d("c.deve.com"), ip(99)), None);
        assert!(db.ips_with_same_cert_and_banner(ip(99)).is_empty());
    }

    #[test]
    fn rescan_replaces_and_reindexes() {
        let mut db = db();
        let new_cert = Certificate::single(pat("*.newowner.com"), 1);
        let banner = HttpsBanner::new("new", "x");
        db.insert(ip(1), scan(&new_cert, &banner));
        // ip(1) no longer attributable to devE.
        let ips = db.expand_domain(&d("c.deve.com"), ip(2)).unwrap();
        assert_eq!(ips, [ip(2), ip(3)].into_iter().collect());
        assert!(db.cert_at_ip_identifies(ip(1), &d("x.newowner.com")));
    }

    #[test]
    fn len_counts_hosts() {
        assert_eq!(db().len(), 5);
        assert!(!db().is_empty());
    }
}
