//! # haystack-scan
//!
//! The Censys substrate ([9] in the paper): a queryable snapshot of
//! TLS certificates and HTTPS banners per scanned IP, plus the §4.2.2
//! match criteria the methodology applies when DNSDB has no record for a
//! domain:
//!
//! > *"For a certificate to be associated with a domain, we require that
//! > the domain name and the Name field entry in the certificate match at
//! > least the SLD or higher … and that there is no other Subject
//! > Alternative Name (SAN) in the certificate. Next, we query the Censys
//! > dataset for all IPs with the same certificate and HTTPS banner
//! > checksum for the domain."*
//!
//! The snapshot is static over the study window — the synthetic backend
//! pools do not re-key mid-study, matching how the paper uses a dataset
//! "within the same period".

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod banner;
pub mod cert;
pub mod database;
pub mod matcher;

pub use banner::HttpsBanner;
pub use cert::Certificate;
pub use database::{HostScan, ScanDb};
pub use matcher::cert_identifies_domain;
