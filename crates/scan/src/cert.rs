//! X.509-lite certificates.
//!
//! Only the fields the §4.2.2 matcher consumes are modelled: the subject
//! Name patterns (CN + SANs, uniformly represented as
//! [`DomainPattern`]s) and a fingerprint that stands in for the
//! certificate hash Censys indexes by.

use haystack_dns::{DomainName, DomainPattern};
use std::fmt;

/// A leaf certificate as recorded by the scanner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Certificate {
    /// Subject names: the CN and every SAN, as name patterns.
    pub names: Vec<DomainPattern>,
    /// Stand-in for the SHA-256 certificate fingerprint.
    pub fingerprint: u64,
}

impl Certificate {
    /// Build a certificate for a set of name patterns. The fingerprint is
    /// derived deterministically from the names plus a serial, so re-keyed
    /// certs for the same names can be distinguished.
    pub fn new(names: Vec<DomainPattern>, serial: u64) -> Certificate {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325 ^ serial.wrapping_mul(0x100_0000_01B3);
        for n in &names {
            for b in n.to_string().bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h = h.rotate_left(7);
        }
        Certificate { names, fingerprint: h }
    }

    /// Convenience: single-name certificate.
    pub fn single(pattern: DomainPattern, serial: u64) -> Certificate {
        Certificate::new(vec![pattern], serial)
    }

    /// Whether any subject name matches `domain`.
    pub fn covers(&self, domain: &DomainName) -> bool {
        self.names.iter().any(|p| p.matches(domain))
    }
}

impl fmt::Display for Certificate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cert[{:016x}:", self.fingerprint)?;
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, " {n}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pat(s: &str) -> DomainPattern {
        DomainPattern::parse(s).unwrap()
    }

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn covers_wildcard_and_exact() {
        let c = Certificate::new(vec![pat("*.deve.com"), pat("deve.com")], 1);
        assert!(c.covers(&d("c.deve.com")));
        assert!(c.covers(&d("deve.com")));
        assert!(!c.covers(&d("a.b.deve.com")));
        assert!(!c.covers(&d("other.com")));
    }

    #[test]
    fn fingerprint_depends_on_names_and_serial() {
        let a = Certificate::single(pat("*.deve.com"), 1);
        let b = Certificate::single(pat("*.deve.com"), 2);
        let c = Certificate::single(pat("*.other.com"), 1);
        assert_ne!(a.fingerprint, b.fingerprint, "serial re-key changes fingerprint");
        assert_ne!(a.fingerprint, c.fingerprint, "names change fingerprint");
        assert_eq!(a, Certificate::single(pat("*.deve.com"), 1), "deterministic");
    }
}
