//! Property tests for the Censys substrate: the §4.2.2 match criteria and
//! the scan database's fingerprint index.

use haystack_dns::{DomainName, DomainPattern};
use haystack_scan::{cert_identifies_domain, Certificate, HostScan, HttpsBanner, ScanDb};
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_label() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{1,8}"
}

proptest! {
    /// A single-SAN wildcard cert identifies exactly the names one label
    /// under its base — and nothing else.
    #[test]
    fn wildcard_cert_identifies_only_one_level(
        sld_label in arb_label(),
        host in arb_label(),
        other in arb_label(),
    ) {
        let base = DomainName::parse(&format!("{sld_label}.com")).unwrap();
        let cert = Certificate::single(
            DomainPattern::parse(&format!("*.{base}")).unwrap(),
            1,
        );
        let direct = base.child(&host).unwrap();
        prop_assert!(cert_identifies_domain(&cert, &direct));
        // Two labels down fails (X.509 wildcard covers one label).
        let deep = direct.child(&other).unwrap();
        prop_assert!(!cert_identifies_domain(&cert, &deep));
        // A different SLD fails.
        let foreign = DomainName::parse(&format!("{host}.{other}x.net")).unwrap();
        prop_assert!(!cert_identifies_domain(&cert, &foreign));
    }

    /// Adding any foreign SAN permanently disqualifies the cert for every
    /// domain (the multi-tenant CDN case).
    #[test]
    fn foreign_san_disqualifies_everything(
        a in arb_label(),
        b in arb_label(),
    ) {
        prop_assume!(a != b);
        let cert = Certificate::new(
            vec![
                DomainPattern::parse(&format!("*.{a}.com")).unwrap(),
                DomainPattern::parse(&format!("*.{b}.net")).unwrap(),
            ],
            1,
        );
        let da = DomainName::parse(&format!("x.{a}.com")).unwrap();
        let db = DomainName::parse(&format!("x.{b}.net")).unwrap();
        prop_assert!(!cert_identifies_domain(&cert, &da));
        prop_assert!(!cert_identifies_domain(&cert, &db));
    }

    /// Scan DB: `ips_with_same_cert_and_banner` returns exactly the hosts
    /// sharing both the fingerprint and the banner checksum.
    #[test]
    fn fingerprint_index_is_exact(
        group_a in 1u8..30,
        group_b in 1u8..30,
        stale_banner in 0u8..5,
    ) {
        let cert_a = Certificate::single(DomainPattern::parse("*.va.com").unwrap(), 1);
        let cert_b = Certificate::single(DomainPattern::parse("*.vb.com").unwrap(), 2);
        let banner = HttpsBanner::new("srv", "prod");
        let staging = HttpsBanner::new("srv", "staging");
        let mut db = ScanDb::new();
        let mut expect = std::collections::BTreeSet::new();
        for i in 0..group_a {
            let ip = Ipv4Addr::new(198, 18, 20, i);
            db.insert(ip, HostScan { cert: cert_a.clone(), banner: banner.clone(), port: 443 });
            expect.insert(ip);
        }
        for i in 0..group_b {
            db.insert(
                Ipv4Addr::new(198, 18, 21, i),
                HostScan { cert: cert_b.clone(), banner: banner.clone(), port: 443 },
            );
        }
        for i in 0..stale_banner {
            db.insert(
                Ipv4Addr::new(198, 18, 22, i),
                HostScan { cert: cert_a.clone(), banner: staging.clone(), port: 443 },
            );
        }
        let seed = Ipv4Addr::new(198, 18, 20, 0);
        prop_assert_eq!(db.ips_with_same_cert_and_banner(seed), expect);
    }
}
