//! End-to-end robustness oracle for `haystack serve` (DESIGN.md §13).
//!
//! Two proofs, each against a real daemon process on loopback sockets:
//!
//! * **chaos**: under a forced shard panic, injected stalls, a malformed
//!   flood, and a 2× overload burst, the daemon stays up, sheds with
//!   exact accounting (`received == admitted + shed`, attributed per
//!   source), heals its shards, and re-admits the flapped source.
//! * **restart determinism**: SIGTERM mid-stream drains to a final
//!   checkpoint; a `--resume` restart fed the remaining records answers
//!   every query byte-identically to a daemon that was never
//!   interrupted.

use haystack_cli::rules_to_json;
use haystack_core::pack::SignaturePack;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::rules::{RuleSet, RuleSetBuilder};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_haystack");

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("haystack-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The pipeline every daemon in this binary runs, built once.
fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(7)))
}

/// Rules JSON on disk, generated once for the whole test binary.
fn rules_file() -> &'static Path {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let path = scratch("rules").join("rules.json");
        let text = serde_json::to_string(&rules_to_json(&pipeline().rules)).unwrap();
        std::fs::write(&path, text).unwrap();
        path
    })
}

/// A running daemon plus the ports it bound.
struct Daemon {
    child: Child,
    udp: u16,
    tcp: u16,
    http: u16,
}

impl Daemon {
    /// Start `haystack serve` and wait for its ports file.
    fn start(tag: &str, ckpt: &Path, extra: &[&str]) -> Daemon {
        Daemon::start_with_rules(tag, ckpt, extra, rules_file())
    }

    /// Like [`Daemon::start`], with an explicit rules file (JSON or a
    /// signature pack).
    fn start_with_rules(tag: &str, ckpt: &Path, extra: &[&str], rules: &Path) -> Daemon {
        let ports_file = scratch(tag).join("ports.json");
        let child = Command::new(BIN)
            .args(["serve", "--workers", "3", "--seed", "11"])
            .arg("--rules")
            .arg(rules)
            .args(["--checkpoint-dir", ckpt.to_str().unwrap()])
            .args(["--ports-file", ports_file.to_str().unwrap()])
            .args(extra)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .unwrap();
        let deadline = Instant::now() + Duration::from_secs(60);
        let ports = loop {
            if let Ok(text) = std::fs::read_to_string(&ports_file) {
                if text.ends_with('\n') {
                    break serde_json::from_str(&text).unwrap();
                }
            }
            assert!(Instant::now() < deadline, "daemon never wrote its ports file");
            std::thread::sleep(Duration::from_millis(20));
        };
        let port = |k: &str| ports[k].as_u64().unwrap() as u16;
        Daemon { child, udp: port("udp"), tcp: port("tcp"), http: port("http") }
    }

    /// One HTTP/1.1 request; returns (status, body).
    fn http(&self, method: &str, target: &str) -> (u16, String) {
        let mut stream = TcpStream::connect(("127.0.0.1", self.http)).unwrap();
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        write!(stream, "{method} {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
            .unwrap();
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).unwrap();
        let text = String::from_utf8_lossy(&raw).into_owned();
        let status: u16 =
            text.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
        let body = text.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
        (status, body)
    }

    fn get(&self, target: &str) -> String {
        let (status, body) = self.http("GET", target);
        assert_eq!(status, 200, "GET {target} -> {status}: {body}");
        body
    }

    fn post(&self, target: &str) -> String {
        let (status, body) = self.http("POST", target);
        assert_eq!(status, 200, "POST {target} -> {status}: {body}");
        body
    }

    fn stats(&self) -> serde_json::Value {
        serde_json::from_str(&self.get("/stats")).unwrap()
    }

    /// Poll `/stats` until the decoded-record counter reaches `want`.
    fn wait_records(&self, want: u64) {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let got = self.stats()["records"].as_u64().unwrap();
            if got >= want {
                assert_eq!(got, want, "daemon decoded more records than were sent");
                return;
            }
            assert!(
                Instant::now() < deadline,
                "records stuck at {got}, wanted {want}"
            );
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Graceful shutdown through the admin plane; asserts exit 0.
    fn drain(mut self) {
        let _ = self.post("/admin/drain");
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon drain exited nonzero: {status:?}");
    }

    /// SIGTERM the daemon and wait for its orderly exit.
    fn sigterm(mut self) {
        assert!(Command::new("kill")
            .args(["-TERM", &self.child.id().to_string()])
            .status()
            .unwrap()
            .success());
        let status = self.child.wait().unwrap();
        assert!(status.success(), "daemon SIGTERM exited nonzero: {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Drive `haystack send` at a daemon port.
fn send(args: &[&str]) {
    let out = Command::new(BIN).arg("send").args(args).output().unwrap();
    assert!(out.status.success(), "send failed: {}", String::from_utf8_lossy(&out.stderr));
}

/// Records per `send --rules --lines 8` burst, read from the sender's
/// own accounting line (`sent \t records`).
fn hitting_burst(tcp: u16, hour: &str) -> u64 {
    let out = Command::new(BIN)
        .args(["send", "--port", &tcp.to_string(), "--mode", "tcp", "--hour", hour])
        .arg("--rules")
        .arg(rules_file())
        .args(["--lines", "8"])
        .output()
        .unwrap();
    assert!(out.status.success(), "send failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).unwrap();
    text.trim().rsplit('\t').next().unwrap().parse().unwrap()
}

#[test]
fn chaos_daemon_stays_up_sheds_exactly_and_readmits_flapped_sources() {
    let ckpt = scratch("chaos-ckpt");
    let d = Daemon::start("chaos", &ckpt, &["--chaos", "--queue-capacity", "64"]);

    // Baseline traffic: every line hits every rule.
    let records = hitting_burst(d.tcp, "0");
    d.wait_records(records);
    let detections = d.get("/detections");
    assert!(detections.contains("\"count\":8"), "expected 8 detected lines: {detections}");

    // Forced shard panic: supervision respawns and replays; a stall is
    // healed by the watchdog. The daemon keeps answering throughout.
    let _ = d.post("/admin/panic?shard=1");
    let _ = d.post("/admin/stall?shard=0&ms=700");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = d.stats();
        if s["watchdog"]["respawns"].as_u64().unwrap() >= 1 {
            break;
        }
        assert!(Instant::now() < deadline, "watchdog never respawned the panicked shard");
        std::thread::sleep(Duration::from_millis(100));
    }

    // 2× overload: slow the engine so the bounded queue (64) fills,
    // then burst over UDP. Shedding must be exact and attributed.
    let _ = d.post("/admin/slow?us=3000");
    send(&["--port", &d.udp.to_string(), "--mode", "udp", "--records", "5000", "--source", "44"]);
    let _ = d.post("/admin/slow?us=0");
    std::thread::sleep(Duration::from_millis(500));
    let s = d.stats();
    let (received, admitted, shed) = (
        s["received"].as_u64().unwrap(),
        s["admitted"].as_u64().unwrap(),
        s["shed"].as_u64().unwrap(),
    );
    assert!(shed > 0, "overload burst shed nothing: {s}");
    assert_eq!(received, admitted + shed, "shed accounting does not balance: {s}");
    let by_source = s["shed_by_source"].as_array().unwrap();
    let shed_44: u64 = by_source
        .iter()
        .filter(|row| row[0].as_u64() == Some(44))
        .map(|row| row[1].as_u64().unwrap())
        .sum();
    assert_eq!(shed_44, shed, "shed not attributed to the bursting source: {s}");

    // Malformed flood: source 99 is quarantined after consecutive bad
    // messages, then re-admitted (probation → healthy) by clean sends.
    send(&[
        "--port", &d.tcp.to_string(), "--mode", "tcp", "--source", "99", "--records", "600",
        "--malformed", "10",
    ]);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let sources = d.get("/sources");
        if sources.contains("\"id\":99,\"health\":\"quarantined\"") {
            break;
        }
        assert!(Instant::now() < deadline, "source 99 never quarantined: {sources}");
        std::thread::sleep(Duration::from_millis(50));
    }
    for _ in 0..6 {
        send(&["--port", &d.tcp.to_string(), "--mode", "tcp", "--source", "99", "--records",
            "300"]);
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let sources = d.get("/sources");
        if sources.contains("\"id\":99,\"health\":\"healthy\"") {
            break;
        }
        assert!(Instant::now() < deadline, "source 99 never re-admitted: {sources}");
        std::thread::sleep(Duration::from_millis(50));
    }

    // After all injected faults the daemon is still live, ready, and no
    // detection evidence was lost: every line detected before the chaos
    // is still detected (background traffic may only have *added*).
    assert_eq!(d.get("/healthz"), "ok\n");
    assert_eq!(d.get("/readyz"), "ready\n");
    let before: serde_json::Value = serde_json::from_str(&detections).unwrap();
    let after: serde_json::Value = serde_json::from_str(&d.get("/detections")).unwrap();
    for class in before["classes"].as_array().unwrap() {
        let name = class["class"].as_str().unwrap();
        let survived = after["classes"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["class"] == class["class"])
            .unwrap_or_else(|| panic!("class {name} vanished after chaos"));
        let lines = survived["lines"].as_array().unwrap();
        for line in class["lines"].as_array().unwrap() {
            assert!(
                lines.contains(line),
                "line {line} lost from {name} after panic/stall/overload"
            );
        }
    }
    let metrics = d.get("/metrics");
    assert!(metrics.contains("haystack_serve_shed"), "shed gauge missing from /metrics");

    d.drain();
    assert!(
        std::fs::read_dir(&ckpt).unwrap().count() > 0,
        "drained daemon left no checkpoint"
    );
}

/// Every query surface whose bytes must survive a restart. `/stats` is
/// deliberately excluded: counters restart from the checkpoint, but the
/// watchdog-probe count is wall-clock dependent.
fn query_snapshot(d: &Daemon) -> Vec<(String, String)> {
    [
        "/detections",
        "/detections?class=Alexa+Enabled",
        "/usage",
        "/staleness",
        "/line?id=3112275008770825849",
        "/sources",
    ]
    .iter()
    .map(|t| (t.to_string(), d.get(t)))
    .collect()
}

#[test]
fn sigterm_restart_answers_queries_byte_identical_to_an_uninterrupted_run() {
    // Reference: one daemon sees both halves of the stream.
    let ref_ckpt = scratch("ref-ckpt");
    let reference = Daemon::start("ref", &ref_ckpt, &[]);
    let half1 = hitting_burst(reference.tcp, "0");
    let half2 = hitting_burst(reference.tcp, "5");
    reference.wait_records(half1 + half2);
    let want = query_snapshot(&reference);
    reference.drain();

    // Subject: half the stream, SIGTERM, restart --resume, the rest.
    let sub_ckpt = scratch("sub-ckpt");
    let subject = Daemon::start("sub1", &sub_ckpt, &[]);
    let got1 = hitting_burst(subject.tcp, "0");
    assert_eq!(got1, half1);
    subject.wait_records(half1);
    subject.sigterm();

    let subject = Daemon::start("sub2", &sub_ckpt, &["--resume"]);
    let carried = subject.stats()["records"].as_u64().unwrap();
    assert_eq!(carried, half1, "restarted daemon lost checkpointed records");
    let got2 = hitting_burst(subject.tcp, "5");
    assert_eq!(got2, half2);
    subject.wait_records(half1 + half2);
    let got = query_snapshot(&subject);
    subject.drain();

    for ((t, want), (_, got)) in want.iter().zip(got.iter()) {
        assert_eq!(got, want, "{t} diverges after SIGTERM + resume restart");
    }
}

/// Seal the pipeline's rule set minus one class into a pack file.
fn pack_without(dir: &Path, name: &str, drop: &str) -> PathBuf {
    let rules = &pipeline().rules;
    let mut b = RuleSetBuilder::new();
    for r in &rules.rules {
        let class = rules.class_name(r.class);
        if class == drop {
            continue;
        }
        let parent = r.parent.map(|p| rules.class_name(p)).filter(|p| *p != drop);
        b.rule(class, r.level, parent, r.domains.clone());
    }
    let pack = SignaturePack {
        rules: b.build(),
        threshold: 0.4,
        source: format!("serve_daemon e2e, minus {drop}"),
        comment: String::new(),
    };
    let path = dir.join(name);
    std::fs::write(&path, pack.encode()).unwrap();
    path
}

/// Classes no other rule claims as parent — safe to drop from a pack
/// without dangling the hierarchy.
fn leaf_classes(rules: &RuleSet) -> Vec<&str> {
    rules
        .rules
        .iter()
        .filter(|r| !rules.rules.iter().any(|o| o.parent == Some(r.class)))
        .map(|r| rules.class_name(r.class))
        // "Alexa Enabled" stays: `query_snapshot` filters on it by name.
        .filter(|c| *c != "Alexa Enabled")
        .collect()
}

#[test]
fn reload_rules_swaps_pack_mid_stream_without_evidence_loss() {
    let rules = &pipeline().rules;
    let leaves = leaf_classes(rules);
    assert!(leaves.len() >= 2, "need two leaf classes to add/remove: {leaves:?}");
    let added = leaves[0]; // absent from pack A, present in pack B
    let removed = leaves[1]; // present in pack A, absent from pack B
    let packs = scratch("reload-packs");
    let pack_a = pack_without(&packs, "a.hsp", added);
    let pack_b = pack_without(&packs, "b.hsp", removed);

    let class_names = |v: &serde_json::Value| -> Vec<String> {
        v["classes"]
            .as_array()
            .unwrap()
            .iter()
            .map(|c| c["class"].as_str().unwrap().to_string())
            .collect()
    };
    let count_of = |v: &serde_json::Value, class: &str| -> Option<u64> {
        v["classes"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["class"].as_str() == Some(class))
            .map(|c| c["count"].as_u64().unwrap())
    };

    let ckpt = scratch("reload-ckpt");
    let d = Daemon::start_with_rules("reload1", &ckpt, &[], &pack_a);

    // First half of the stream: the burst hits every rule of the *full*
    // set, but the daemon only knows pack A.
    let half1 = hitting_burst(d.tcp, "0");
    d.wait_records(half1);
    let before: serde_json::Value = serde_json::from_str(&d.get("/detections")).unwrap();
    assert!(!class_names(&before).contains(&added.to_string()), "pack A must not know {added}");
    assert!(count_of(&before, removed).unwrap() > 0, "{removed} undetected before reload");

    // Swap packs mid-stream: adds `added`, removes `removed`.
    let reply = d.post(&format!("/admin/reload-rules?path={}", pack_b.display()));
    assert!(reply.contains("\"reloaded\":true"), "unexpected reload reply: {reply}");

    let after: serde_json::Value = serde_json::from_str(&d.get("/detections")).unwrap();
    assert!(
        !class_names(&after).contains(&removed.to_string()),
        "{removed} still served after a reload that dropped it"
    );
    assert_eq!(
        count_of(&after, added),
        Some(0),
        "{added} must appear (still evidence-free) right after the reload"
    );
    // No evidence loss: every unchanged rule keeps its detected lines.
    for class in before["classes"].as_array().unwrap() {
        let name = class["class"].as_str().unwrap();
        if name == removed {
            continue;
        }
        let kept = after["classes"]
            .as_array()
            .unwrap()
            .iter()
            .find(|c| c["class"] == class["class"])
            .unwrap_or_else(|| panic!("class {name} vanished across the reload"));
        assert_eq!(kept["lines"], class["lines"], "evidence lost for {name} across the reload");
    }

    // Second half of the stream: the added rule lights up.
    let half2 = hitting_burst(d.tcp, "5");
    d.wait_records(half1 + half2);
    let lit: serde_json::Value = serde_json::from_str(&d.get("/detections")).unwrap();
    assert!(count_of(&lit, added).unwrap() > 0, "{added} never detected after the reload");

    // SIGTERM + --resume: the reloaded pack survives the restart — the
    // stale pack A on the command line must lose to the checkpoint.
    let want = query_snapshot(&d);
    d.sigterm();
    let d = Daemon::start_with_rules("reload2", &ckpt, &["--resume"], &pack_a);
    assert_eq!(d.stats()["records"].as_u64().unwrap(), half1 + half2);
    let got = query_snapshot(&d);
    for ((t, want), (_, got)) in want.iter().zip(got.iter()) {
        assert_eq!(got, want, "{t} diverges after SIGTERM + resume with a reloaded pack");
    }
    let resumed: serde_json::Value = serde_json::from_str(&d.get("/detections")).unwrap();
    assert!(!class_names(&resumed).contains(&removed.to_string()));
    assert!(count_of(&resumed, added).unwrap() > 0);
    d.drain();
}
