//! Crash-injection oracle for `haystack detect --checkpoint-dir`
//! (DESIGN.md §12): SIGKILL the process mid-stream, resume from the
//! checkpoint directory, and diff stdout byte-for-byte against an
//! uninterrupted run. Also proves the corruption fallback: bit-flipping
//! the newest checkpoint generation makes resume fall back to the
//! previous one — same byte-identical output, no panic.

use haystack_cli::resume::RunCheckpoint;
use haystack_cli::rules_to_json;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::CheckpointDir;
use haystack_net::snapshot::{seal, SnapWriter};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_haystack");

/// Detect flags shared by every run in this file. Two days at modest
/// scale: long enough that the kill lands mid-stream with several
/// checkpoint generations on disk, short enough for CI.
const DETECT: &[&str] = &[
    "detect", "--lines", "3000", "--days", "2", "--seed", "7", "--workers", "3", "--quiet",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "haystack-kill-resume-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Rules JSON on disk, generated once for the whole test binary.
fn rules_file() -> &'static Path {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let p = Pipeline::run(PipelineConfig::fast(7));
        let path = scratch("rules").join("rules.json");
        let text = serde_json::to_string(&rules_to_json(&p.rules)).unwrap();
        std::fs::write(&path, text).unwrap();
        path
    })
}

fn detect_cmd(extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(DETECT).arg("--rules").arg(rules_file()).args(extra);
    cmd
}

fn run_to_string(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).unwrap()
}

fn ckpt_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == "ckpt"))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

/// Start a checkpointed run, SIGKILL it once at least two checkpoint
/// generations exist, and return the checkpoint directory. If the run
/// finishes before the kill lands, that is fine too — the resume path
/// then just replays the completed run's output.
fn crashed_run() -> PathBuf {
    let dir = scratch("ckpt");
    let mut child = detect_cmd(&["--checkpoint-dir", dir.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if ckpt_files(&dir).len() >= 2 {
            child.kill().unwrap(); // SIGKILL on unix — no cleanup runs
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break; // finished before we could kill it
        }
        assert!(Instant::now() < deadline, "no checkpoints appeared in 120 s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.wait();
    assert!(!ckpt_files(&dir).is_empty(), "killed run left no checkpoint");
    dir
}

#[test]
fn sigkill_then_resume_is_byte_identical() {
    let clean = run_to_string(&mut detect_cmd(&[]));
    assert!(clean.lines().count() > 1, "clean run produced no rows");

    let dir = crashed_run();
    let resumed = run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(resumed, clean, "resumed stdout diverges from the uninterrupted run");

    // A second resume replays the completed run verbatim from its
    // done-marked checkpoint without recomputing anything.
    let replayed = run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(replayed, clean);

    // Corruption fallback: flip bits throughout the newest generation.
    // The checksum rejects it, resume falls back to the previous
    // generation and recomputes the tail — same bytes, no panic.
    let files = ckpt_files(&dir);
    assert!(files.len() >= 2, "expected two retained generations, got {files:?}");
    let newest = files.last().unwrap();
    let mut bytes = std::fs::read(newest).unwrap();
    for i in (0..bytes.len()).step_by(7) {
        bytes[i] ^= 0x5A;
    }
    std::fs::write(newest, bytes).unwrap();
    let fallback = run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(fallback, clean, "fallback resume diverges");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn events_stream_survives_sigkill_and_resume_byte_identical() {
    // Reference: the NDJSON event stream of an uninterrupted run.
    let clean_path = scratch("events-clean").join("clean.ndjson");
    run_to_string(&mut detect_cmd(&["--events", clean_path.to_str().unwrap()]));
    let want = std::fs::read_to_string(&clean_path).unwrap();
    assert!(!want.is_empty(), "clean run emitted no events");

    // Crash a checkpointed run writing the same stream, then resume it
    // against the same file — the result must be byte-identical, with
    // no day lost and no day duplicated.
    let dir = scratch("events-ckpt");
    let events = scratch("events-out").join("events.ndjson");
    let mut child = detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--events",
        events.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        if ckpt_files(&dir).len() >= 2 {
            child.kill().unwrap();
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break;
        }
        assert!(Instant::now() < deadline, "no checkpoints appeared in 120 s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = child.wait();

    run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
        "--events",
        events.to_str().unwrap(),
    ]));
    assert_eq!(
        std::fs::read_to_string(&events).unwrap(),
        want,
        "event stream diverges after SIGKILL + resume"
    );
}

/// Run a command expecting failure; return its stderr.
fn run_to_failure(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(
        !out.status.success(),
        "expected failure, got success with stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn sigterm_drains_to_a_final_checkpoint_and_resumes_byte_identical() {
    let clean = run_to_string(&mut detect_cmd(&[]));

    let dir = scratch("sigterm");
    let mut child = detect_cmd(&["--checkpoint-dir", dir.to_str().unwrap()])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Wait until the run is demonstrably mid-stream (one durable
    // generation), then ask for a graceful drain.
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut terminated = false;
    loop {
        if !ckpt_files(&dir).is_empty() {
            let ok = Command::new("kill")
                .args(["-TERM", &child.id().to_string()])
                .status()
                .unwrap()
                .success();
            terminated = ok;
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break; // finished before the drain request
        }
        assert!(Instant::now() < deadline, "no checkpoints appeared in 120 s");
        std::thread::sleep(Duration::from_millis(20));
    }
    let out = child.wait_with_output().unwrap();
    // Unlike SIGKILL, a drain is an orderly exit: status 0, and when the
    // signal landed mid-run the process says what it checkpointed.
    assert!(out.status.success(), "SIGTERM drain exited nonzero: {:?}", out.status);
    if terminated {
        let stderr = String::from_utf8_lossy(&out.stderr);
        if stderr.contains("sigterm") {
            assert!(stderr.contains("checkpointed"), "drain message missing: {stderr}");
        }
    }
    assert!(!ckpt_files(&dir).is_empty(), "drained run left no checkpoint");

    let resumed = run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(resumed, clean, "post-SIGTERM resume diverges from the uninterrupted run");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn version_skew_refuses_resume_and_names_the_generation() {
    // A directory holding one valid-checksum frame from a "future"
    // snapshot format version: resume must refuse loudly rather than
    // silently recompute or misparse.
    let dir = scratch("skew");
    let ckpt = CheckpointDir::open(&dir).unwrap();
    let mut w = SnapWriter::new();
    w.put_u64(0xDEAD);
    let future = seal(RunCheckpoint::MAGIC, RunCheckpoint::VERSION + 1, &w.into_bytes());
    let generation = ckpt.write(RunCheckpoint::PREFIX, &future).unwrap();

    let stderr = run_to_failure(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert!(
        stderr.contains(&format!("generation {generation}")),
        "error does not name the generation: {stderr}"
    );
    assert!(
        stderr.contains(&format!("version {}", RunCheckpoint::VERSION + 1)),
        "error does not name the found version: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn conflicting_flag_refuses_resume_and_names_the_field() {
    let dir = crashed_run();
    // The checkpointed run used --lines 3000; resuming under a
    // different synthetic-universe size would silently answer for the
    // wrong world, so it must be refused by name.
    let mut cmd = Command::new(BIN);
    cmd.args([
        "detect", "--lines", "4321", "--days", "2", "--seed", "7", "--workers", "3", "--quiet",
    ])
    .arg("--rules")
    .arg(rules_file())
    .args(["--checkpoint-dir", dir.to_str().unwrap(), "--resume"]);
    let stderr = run_to_failure(&mut cmd);
    assert!(stderr.contains("--lines"), "error does not name the flag: {stderr}");
    assert!(stderr.contains("4321"), "error does not echo the flag value: {stderr}");
    assert!(stderr.contains("generation"), "error does not name the generation: {stderr}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_without_a_checkpoint_starts_fresh_and_matches() {
    let clean = run_to_string(&mut detect_cmd(&[]));
    let dir = scratch("fresh");
    let resumed = run_to_string(&mut detect_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
    ]));
    assert_eq!(resumed, clean, "fresh --resume diverges from a plain run");
    let _ = std::fs::remove_dir_all(&dir);
}
