//! Soak-scale crash oracle for `haystack soak --checkpoint-dir`
//! (DESIGN.md §12): a 10⁶-line soak is SIGKILLed mid-stream with an
//! incremental delta chain on disk, resumed, and its stdout, final
//! detections file, and NDJSON event stream are diffed byte-for-byte
//! against an uninterrupted run.
//!
//! This is the wild-scale companion to `kill_resume.rs`: same contract,
//! but the state being recovered is dominated by dirty-only `.dckpt`
//! frames chained onto periodic fulls, not standalone full snapshots —
//! the kill is timed so at least two delta frames exist when it lands.

use haystack_cli::rules_to_json;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_haystack");

/// One soak shape for every run in this file: a full 10⁶-line
/// population, ~99% miss rate, three simulated hours. `--checkpoint-
/// chunks 4` makes saves land every few chunks so the SIGKILL window is
/// wide and the chain holds many deltas per full anchor.
const SOAK: &[&str] = &[
    "soak",
    "--lines",
    "1000000",
    "--hours",
    "3",
    "--records-per-hour",
    "350000",
    "--hit-rate-ppm",
    "10000",
    "--seed",
    "11",
    "--workers",
    "3",
    "--checkpoint-chunks",
    "4",
    "--quiet",
];

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "haystack-soak-resume-{}-{tag}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Rules JSON on disk, generated once for the whole test binary.
fn rules_file() -> &'static Path {
    static FILE: OnceLock<PathBuf> = OnceLock::new();
    FILE.get_or_init(|| {
        let p = Pipeline::run(PipelineConfig::fast(7));
        let path = scratch("rules").join("rules.json");
        let text = serde_json::to_string(&rules_to_json(&p.rules)).unwrap();
        std::fs::write(&path, text).unwrap();
        path
    })
}

fn soak_cmd(extra: &[&str]) -> Command {
    let mut cmd = Command::new(BIN);
    cmd.args(SOAK).arg("--rules").arg(rules_file()).args(extra);
    cmd
}

fn run_to_string(cmd: &mut Command) -> String {
    let out = cmd.output().unwrap();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    String::from_utf8(out.stdout).unwrap()
}

fn files_with_ext(dir: &Path, ext: &str) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.extension().is_some_and(|x| x == ext))
                .collect()
        })
        .unwrap_or_default();
    files.sort();
    files
}

#[test]
fn soak_sigkill_resume_replays_the_delta_chain_byte_identical() {
    // Reference: the uninterrupted soak's stdout, detections, events.
    let clean_out = scratch("clean").join("detections.tsv");
    let clean_events = scratch("clean-ev").join("events.ndjson");
    let clean_stdout = run_to_string(&mut soak_cmd(&[
        "--out",
        clean_out.to_str().unwrap(),
        "--events",
        clean_events.to_str().unwrap(),
    ]));
    assert!(clean_stdout.lines().count() > 5, "clean soak produced no rows");
    let want_out = std::fs::read_to_string(&clean_out).unwrap();
    let want_events = std::fs::read_to_string(&clean_events).unwrap();
    assert!(!want_events.is_empty(), "clean soak emitted no events");

    // Crash a checkpointed soak once the incremental chain is real: a
    // full anchor plus at least two dirty-only delta frames on disk.
    let dir = scratch("ckpt");
    let out = scratch("out").join("detections.tsv");
    let events = scratch("ev").join("events.ndjson");
    let mut child = soak_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--out",
        out.to_str().unwrap(),
        "--events",
        events.to_str().unwrap(),
    ])
    .stdout(Stdio::null())
    .stderr(Stdio::null())
    .spawn()
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(300);
    let mut killed = false;
    loop {
        if files_with_ext(&dir, "dckpt").len() >= 2 {
            child.kill().unwrap(); // SIGKILL — no cleanup runs
            killed = true;
            break;
        }
        if child.try_wait().unwrap().is_some() {
            break; // finished before the kill could land
        }
        assert!(Instant::now() < deadline, "no delta frames appeared in 300 s");
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = child.wait();
    if killed {
        assert!(
            !files_with_ext(&dir, "ckpt").is_empty(),
            "killed soak left no full anchor"
        );
        assert!(
            files_with_ext(&dir, "dckpt").len() >= 2,
            "killed soak left no delta chain"
        );
    }

    // Resume: the chain (full + deltas, applied in base_generation
    // order) plus the stateless stream must reconstruct everything.
    let resumed_stdout = run_to_string(&mut soak_cmd(&[
        "--checkpoint-dir",
        dir.to_str().unwrap(),
        "--resume",
        "--out",
        out.to_str().unwrap(),
        "--events",
        events.to_str().unwrap(),
    ]));
    assert_eq!(
        resumed_stdout, clean_stdout,
        "resumed soak stdout diverges from the uninterrupted run"
    );
    assert_eq!(
        std::fs::read_to_string(&out).unwrap(),
        want_out,
        "final detections diverge after SIGKILL + resume"
    );
    assert_eq!(
        std::fs::read_to_string(&events).unwrap(),
        want_events,
        "event stream diverges after SIGKILL + resume"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
