//! Process-pool equivalence (DESIGN.md §15): the process-isolated
//! [`ProcPool`] — real `haystack shard-worker` children spoken to over
//! HAYPROC pipe frames — must be observationally identical to the
//! in-process [`DetectorPool`] and to the [`ReferenceDetector`] oracle,
//! for any rule set, record feed, chunking, and worker count. The
//! equivalence must survive an ungraceful mid-stream SIGKILL of a
//! worker, and a crash-looping shard must trip the circuit breaker
//! within its configured bound instead of respawning forever.
//!
//! These tests live in the CLI crate because only it has the worker
//! binary: `CARGO_BIN_EXE_haystack` points at the real executable whose
//! `shard-worker` arm the pool spawns.

use haystack_core::detector::DetectorConfig;
use haystack_core::events::{events_from_states, ndjson_line};
use haystack_core::hitlist::{HitList, MapHitList};
use haystack_core::parallel::{DetectorPool, RespawnPolicy, ShardStatus};
use haystack_core::procpool::{ProcPool, ProcPoolOptions};
use haystack_core::reference::ReferenceDetector;
use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_testbed::catalog::DetectionLevel;
use haystack_wild::WildRecord;
use proptest::prelude::*;
use std::net::Ipv4Addr;
use std::time::Duration;

/// The worker command every test pool spawns: the real CLI binary's
/// `shard-worker` arm.
fn worker_cmd() -> Vec<String> {
    vec![env!("CARGO_BIN_EXE_haystack").to_string(), "shard-worker".to_string()]
}

fn proc_opts() -> ProcPoolOptions {
    ProcPoolOptions { command: worker_cmd(), ..ProcPoolOptions::default() }
}

/// A fixed class-name universe keeps generated rule sets comparable.
const CLASSES: [&str; 3] = ["P0", "P1", "P2"];
const PORTS: [u16; 2] = [443, 8883];

fn pool_ip(idx: u8) -> Ipv4Addr {
    Ipv4Addr::new(198, 18, 33, idx % 8)
}

/// One generated domain: (ip pool index, port pool index, usage flag).
type DomainSpec = (u8, u8, bool);

fn build_rules(specs: &[Vec<DomainSpec>]) -> RuleSet {
    let mut b = RuleSetBuilder::new();
    for (ri, domains) in specs.iter().enumerate() {
        b.rule(
            CLASSES[ri],
            DetectionLevel::Manufacturer,
            None,
            domains
                .iter()
                .enumerate()
                .map(|(di, &(ip, port, usage_indicator))| RuleDomain {
                    name: DomainName::parse(&format!("d{di}.p{ri}.example")).unwrap(),
                    ports: [PORTS[port as usize % PORTS.len()]].into_iter().collect(),
                    ips: [pool_ip(ip)].into_iter().collect(),
                    usage_indicator,
                })
                .collect(),
        );
    }
    b.build()
}

/// One generated record: (line, ip idx, port idx, packets, hour).
type RecordSpec = (u64, u8, u8, u64, u32);

fn build_record(&(line, ip, port, packets, hour): &RecordSpec) -> WildRecord {
    let src = Ipv4Addr::new(100, 64, 0, line as u8);
    WildRecord {
        line: AnonId(line),
        line_slash24: Prefix4::slash24_of(src),
        src_ip: src,
        dst: pool_ip(ip),
        dport: PORTS[port as usize % PORTS.len()],
        proto: Proto::Tcp,
        packets,
        bytes: packets * 500,
        established: true,
        hour: HourBin(hour),
    }
}

fn record_strategy() -> impl Strategy<Value = Vec<RecordSpec>> {
    prop::collection::vec((0u64..40, 0u8..8, 0u8..2, 1u64..30, 0u32..48), 0..200)
}

fn rules_strategy() -> impl Strategy<Value = Vec<Vec<DomainSpec>>> {
    prop::collection::vec(
        prop::collection::vec((0u8..8, 0u8..2, any::<bool>()), 1..4),
        1..=3,
    )
}

/// Sorted detections per class, from any backend's query surface.
fn detections(rules: &RuleSet, mut query: impl FnMut(&str) -> Vec<AnonId>) -> Vec<Vec<AnonId>> {
    rules
        .rules
        .iter()
        .map(|r| {
            let mut lines = query(rules.class_name(r.class));
            lines.sort_unstable();
            lines
        })
        .collect()
}

proptest! {
    // Each case spawns real child processes, so the case budget is
    // deliberately small; the record/chunk/worker space still varies
    // per case.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// ProcPool ≡ DetectorPool ≡ ReferenceDetector for arbitrary rule
    /// sets, feeds, chunk sizes, and worker counts.
    #[test]
    fn process_pool_equals_thread_pool_and_reference(
        specs in rules_strategy(),
        records in record_strategy(),
        chunk_size in 1usize..64,
        proc_workers in 1usize..4,
        thread_workers in 1usize..4,
        threshold_pick in 0usize..3,
    ) {
        let rules = build_rules(&specs);
        let threshold = [0.3f64, 0.5, 0.9][threshold_pick];
        let config = DetectorConfig { threshold, require_established: false };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();

        let mut proc_pool =
            ProcPool::new(&rules, config, proc_workers, proc_opts()).expect("spawn workers");
        let mut thread_pool = DetectorPool::new(
            &rules,
            &HitList::whole_window(&rules),
            config,
            thread_workers,
        );
        let mut oracle =
            ReferenceDetector::new(&rules, MapHitList::whole_window(&rules), config);

        for chunk in records.chunks(chunk_size) {
            proc_pool.observe_records(chunk).expect("proc observe");
            thread_pool.observe_records(chunk).expect("thread observe");
            for r in chunk {
                oracle.observe_wild(r);
            }
        }
        proc_pool.finish().expect("proc finish");
        thread_pool.finish().expect("thread finish");

        let by_proc = detections(&rules, |c| proc_pool.detected_lines(c).expect("proc query"));
        let by_thread =
            detections(&rules, |c| thread_pool.detected_lines(c).expect("thread query"));
        let by_oracle = detections(&rules, |c| oracle.detected_lines(c));
        prop_assert_eq!(&by_proc, &by_thread, "process vs thread pool diverge");
        prop_assert_eq!(&by_proc, &by_oracle, "process pool vs reference diverge");
        prop_assert_eq!(
            proc_pool.state_size().expect("proc state size"),
            oracle.state_size()
        );

        // Per-line verdicts and confidences agree too.
        for r in &rules.rules {
            let class = rules.class_name(r.class);
            for line in by_oracle.iter().flatten().take(8) {
                prop_assert!(proc_pool.is_detected(*line, class).expect("is_detected")
                    == oracle.is_detected(*line, class)
                    || !by_oracle[rules.rule_index(class).unwrap() as usize].contains(line));
            }
        }
    }

    /// SIGKILL of one worker mid-stream changes nothing observable:
    /// the supervisor restores the shard's checkpoint, replays retained
    /// chunks, and the final detections, NDJSON events, and state sizes
    /// are byte-identical to an uninterrupted in-process run.
    #[test]
    fn sigkill_mid_stream_is_byte_identical(
        specs in rules_strategy(),
        records in record_strategy(),
        kill_frac in 0.0f64..=1.0,
        workers in 2usize..4,
    ) {
        let rules = build_rules(&specs);
        let config = DetectorConfig { threshold: 0.4, require_established: false };
        let records: Vec<WildRecord> = records.iter().map(build_record).collect();
        let chunks: Vec<&[WildRecord]> = records.chunks(16).collect();
        let kill_at = ((chunks.len() as f64) * kill_frac) as usize;
        let victim = kill_at % workers;

        let mut proc_pool =
            ProcPool::new(&rules, config, workers, proc_opts()).expect("spawn workers");
        let mut thread_pool =
            DetectorPool::new(&rules, &HitList::whole_window(&rules), config, 2);
        for (i, chunk) in chunks.iter().enumerate() {
            if i == kill_at {
                proc_pool.kill_shard(victim).expect("SIGKILL");
            }
            proc_pool.observe_records(chunk).expect("proc observe");
            thread_pool.observe_records(chunk).expect("thread observe");
        }
        if kill_at >= chunks.len() {
            // The kill landed after the last chunk; deliver it anyway so
            // every generated case exercises a death.
            proc_pool.kill_shard(victim).expect("SIGKILL");
        }
        proc_pool.finish().expect("proc finish");
        thread_pool.finish().expect("thread finish");

        let by_proc = detections(&rules, |c| proc_pool.detected_lines(c).expect("proc query"));
        let by_thread =
            detections(&rules, |c| thread_pool.detected_lines(c).expect("thread query"));
        prop_assert_eq!(&by_proc, &by_thread, "SIGKILL changed the detections");

        // The derived NDJSON event stream is byte-identical as well.
        let proc_events: Vec<String> =
            events_from_states(&rules, &proc_pool.shard_states().expect("proc states"))
                .iter()
                .map(|e| ndjson_line(&rules, e, None))
                .collect();
        let thread_events: Vec<String> =
            events_from_states(&rules, &thread_pool.shard_states().expect("thread states"))
                .iter()
                .map(|e| ndjson_line(&rules, e, None))
                .collect();
        prop_assert_eq!(proc_events, thread_events, "SIGKILL changed the event stream");
        prop_assert_eq!(
            proc_pool.state_size().expect("proc size"),
            thread_pool.state_size().expect("thread size")
        );
    }
}

/// A crash-looping worker trips the breaker within `trip_after` fast
/// deaths: the shard degrades (visible in `shard_status`), its evidence
/// queues instead of being lost, and an operator `reset_breaker`
/// restores service with the queued evidence replayed — detections
/// equal to a never-degraded run.
#[test]
fn crash_loop_trips_breaker_then_operator_reset_recovers() {
    let rules = build_rules(&[vec![(0, 0, false), (1, 0, false)]]);
    let config = DetectorConfig { threshold: 0.4, require_established: false };
    let policy = RespawnPolicy {
        base: Duration::from_millis(1),
        cap: Duration::from_millis(2),
        fast_window: Duration::from_secs(600),
        trip_after: 3,
    };
    let opts = ProcPoolOptions { policy, ..proc_opts() };
    let mut pool = ProcPool::new(&rules, config, 1, opts).expect("spawn worker");

    // Evidence from before the crash loop.
    let pre: Vec<WildRecord> = (0..8).map(|i| build_record(&(i, 0, 0, 4, 0))).collect();
    pool.observe_records(&pre).expect("pre-crash observe");
    pool.finish().expect("pre-crash finish");

    // Deterministic crash loop: every probe after a SIGKILL finds the
    // shard dead and heals it; the third fast death opens the breaker.
    let mut tripped_after = None;
    for death in 1..=3 {
        pool.kill_shard(0).expect("SIGKILL");
        // Any synchronous request notices the death and heals (or trips).
        let _ = pool.state_size();
        if pool.shard_status()[0].status == ShardStatus::Degraded {
            tripped_after = Some(death);
            break;
        }
    }
    assert_eq!(tripped_after, Some(3), "breaker must trip on the 3rd fast death");

    // Degraded: new evidence queues with exact accounting, not silently
    // dropped, and queries fail loudly.
    let post: Vec<WildRecord> = (8..16).map(|i| build_record(&(i, 1, 0, 4, 1))).collect();
    pool.observe_records(&post).expect("degraded observe queues");
    let report = &pool.shard_status()[0];
    assert_eq!(report.status, ShardStatus::Degraded);
    assert_eq!(report.queued, post.len() as u64, "all post-trip records queued");
    assert_eq!(report.shed, 0);
    assert!(pool.detected_lines(CLASSES[0]).is_err(), "degraded shard fails queries");

    // Operator reset: breaker closes, the queue replays, and the state
    // matches a pool that never degraded.
    pool.reset_breaker(0).expect("operator reset");
    assert_eq!(pool.shard_status()[0].status, ShardStatus::Ok);
    pool.finish().expect("post-reset finish");

    let mut clean = ProcPool::new(&rules, config, 1, proc_opts()).expect("spawn worker");
    clean.observe_records(&pre).expect("clean observe");
    clean.observe_records(&post).expect("clean observe");
    clean.finish().expect("clean finish");
    assert_eq!(
        pool.detected_lines(CLASSES[0]).expect("recovered query"),
        clean.detected_lines(CLASSES[0]).expect("clean query"),
        "recovered pool diverges from a never-degraded run"
    );
    assert_eq!(
        pool.state_size().expect("recovered size"),
        clean.state_size().expect("clean size")
    );
}
