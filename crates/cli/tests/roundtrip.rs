//! The JSON document must carry real pipeline rules losslessly — a
//! collector loading the file detects exactly what the generating side
//! would.

use haystack_cli::{rules_from_json, rules_to_json};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin};

#[test]
fn real_rules_survive_json_and_detect_identically() {
    let p = Pipeline::run(PipelineConfig::fast(7));
    let doc = rules_to_json(&p.rules);
    let text = serde_json::to_string(&doc).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
    let loaded = rules_from_json(&parsed).unwrap();

    assert_eq!(loaded.rules.len(), p.rules.rules.len());
    for (a, b) in p.rules.rules.iter().zip(&loaded.rules) {
        assert_eq!(p.rules.class_name(a.class), loaded.class_name(b.class));
        assert_eq!(a.level, b.level);
        assert_eq!(
            a.parent.map(|x| p.rules.class_name(x)),
            b.parent.map(|x| loaded.class_name(x))
        );
        assert_eq!(a.domains.len(), b.domains.len());
        for (da, db) in a.domains.iter().zip(&b.domains) {
            assert_eq!(da.name, db.name);
            assert_eq!(da.ports, db.ports);
            assert_eq!(da.ips, db.ips);
            assert_eq!(da.usage_indicator, db.usage_indicator);
        }
    }

    // Identical evidence → identical verdicts, original vs loaded rules.
    let line = AnonId(42);
    let mut orig = Detector::new(
        &p.rules,
        HitList::whole_window(&p.rules),
        DetectorConfig::default(),
    );
    let mut from_json = Detector::new(
        &loaded,
        HitList::whole_window(&loaded),
        DetectorConfig::default(),
    );
    // Touch one IP/port of every rule domain.
    let combos: Vec<(std::net::Ipv4Addr, u16)> = p
        .rules
        .rules
        .iter()
        .flat_map(|r| r.domains.iter())
        .filter_map(|d| {
            Some((*d.ips.iter().next()?, *d.ports.iter().next()?))
        })
        .collect();
    for (ip, port) in combos {
        orig.observe(line, ip, port, Proto::Tcp, true, HourBin(0));
        from_json.observe(line, ip, port, Proto::Tcp, true, HourBin(0));
    }
    for rule in &p.rules.rules {
        let class = p.rules.class_name(rule.class);
        assert_eq!(
            orig.is_detected(line, class),
            from_json.is_detected(line, class),
            "verdict diverged for {class}"
        );
    }
}
