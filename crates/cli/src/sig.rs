//! SIGTERM/SIGINT → a cooperative shutdown flag.
//!
//! The daemon (and a checkpointing `detect` run) must *drain* on
//! SIGTERM: finish in-flight work, write a final checkpoint, exit 0 —
//! not die mid-write. The handler therefore does the only async-safe
//! thing possible: it sets an atomic flag that every blocking loop in
//! the binary polls (all socket reads run with short timeouts for
//! exactly this reason — glibc installs handlers with `SA_RESTART`, so
//! a signal alone does not interrupt a blocking `recv`).
//!
//! This is the one unsafe corner of the binary (the `haystack-cli`
//! library itself is `#![forbid(unsafe_code)]`): a single libc
//! `signal(2)` call per signal, installing a handler that touches
//! nothing but an `AtomicBool`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; polled by every long-running loop.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    // Storing an AtomicBool is async-signal-safe; nothing else here is
    // allowed to be.
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
}

/// Install the drain handler for SIGTERM and SIGINT.
pub fn install() {
    let handler = on_signal as extern "C" fn(i32) as *const () as usize;
    unsafe {
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has been received.
pub fn triggered() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Request shutdown from inside the process (the `/admin/drain`
/// endpoint goes through the same flag as SIGTERM, so there is exactly
/// one drain path).
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}
