//! The daemon's engine: one thread that owns every piece of mutable
//! pipeline state (collector, detector pool, usage tracker, staleness
//! monitor) and serializes the two things that touch it — ingested
//! datagrams and control-plane queries — through channels.
//!
//! Single ownership is the robustness story: there are no locks to
//! poison, no partially-updated state for a query to observe, and the
//! drain path is just "consume the queue to disconnection, finish the
//! pool, write the final checkpoint".
//!
//! The engine never exits on ingest trouble. Malformed datagrams are
//! counted and dropped (the collector quarantines the source); a shard
//! panic is healed by the pool's supervision; a shard *stall* (a worker
//! alive but stuck) is caught by the watchdog probe, which respawns the
//! shard from its last checkpoint after two consecutive failed probes.

use super::state::ServeCheckpoint;
use bytes::Bytes;
use haystack_cli::note;
use haystack_core::checkpoint::CheckpointDir;
use haystack_core::detector::DetectorConfig;
use haystack_core::events::{events_from_states, ndjson_line};
use haystack_core::hitlist::HitList;
use haystack_core::pack::{self, SignaturePack};
use haystack_core::parallel::{ShardBackend, ShardHealth, ShardStatus, DEFAULT_REPLAY_LIMIT};
use haystack_core::rules::RuleSet;
use haystack_core::staleness::StalenessMonitor;
use haystack_core::telemetry;
use haystack_core::usage::{UsageConfig, UsageTracker};
use haystack_flow::listener::AdmissionStats;
use haystack_flow::Collector;
use haystack_net::{Anonymizer, Prefix4};
use haystack_wild::WildRecord;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Consecutive failed watchdog probes before a shard is force-respawned
/// (one failure can be a barrier queued behind a deep backlog; two in a
/// row across a probe interval is a stuck worker).
const WATCHDOG_STRIKES: u8 = 2;

/// A control-plane query, answered by the engine between ingest chunks.
#[derive(Debug)]
pub enum Query {
    /// Readiness: 200 while every shard is serving, 503 (naming the
    /// degraded shards) once any crash-loop breaker is open.
    Ready,
    /// Ingest / shed / collector counters.
    Stats,
    /// Detected lines, optionally for one class.
    Detections {
        /// Restrict to this class (404 if unknown).
        class: Option<String>,
    },
    /// Per-class verdicts for one line.
    Line {
        /// The anonymized line id.
        id: u64,
    },
    /// Active-use lines, optionally for one class.
    Usage {
        /// Restrict to this class (404 if unknown).
        class: Option<String>,
    },
    /// The staleness monitor's day counts and baselines.
    Staleness,
    /// Per-source health and shed attribution.
    Sources,
    /// The NDJSON detection-event stream, derived from shard states.
    Events,
    /// Load a signature pack from a daemon-side path and swap it in
    /// live (checkpoint-first, evidence migrated by class name).
    ReloadRules {
        /// Filesystem path of the pack, as seen by the daemon.
        path: String,
    },
    /// Write a checkpoint generation now.
    CheckpointNow,
    /// Chaos: panic one shard (healed by supervision).
    Panic {
        /// Shard index.
        shard: usize,
    },
    /// Chaos: stall one shard (healed by the watchdog).
    Stall {
        /// Shard index.
        shard: usize,
        /// Stall duration in milliseconds.
        ms: u64,
    },
    /// Chaos: slow the engine's ingest loop (a controlled overload —
    /// the admission queue fills and the UDP path sheds).
    Slow {
        /// Added latency per datagram, in microseconds (0 clears it).
        us: u64,
    },
}

/// One control-plane request: a query plus its reply channel.
#[derive(Debug)]
pub struct CtlRequest {
    /// What is being asked.
    pub query: Query,
    /// Where the JSON answer goes.
    pub reply: Sender<CtlReply>,
}

/// The engine's answer: an HTTP status, a content type, and a body.
#[derive(Debug)]
pub struct CtlReply {
    /// HTTP status code.
    pub status: u16,
    /// `application/json` everywhere except `/events` (NDJSON).
    pub content_type: &'static str,
    /// Response body (a JSON object, or NDJSON lines for `/events`).
    pub body: String,
}

fn ok(body: String) -> CtlReply {
    CtlReply { status: 200, content_type: "application/json", body }
}

fn err(status: u16, msg: &str) -> CtlReply {
    CtlReply {
        status,
        content_type: "application/json",
        body: format!("{{\"error\":{msg:?}}}"),
    }
}

/// Fixed configuration the engine runs under.
pub struct EngineConfig {
    /// Detector worker (shard) count.
    pub workers: usize,
    /// Detection threshold.
    pub threshold: f64,
    /// Anonymization seed.
    pub seed: u64,
    /// Where checkpoints go, if anywhere.
    pub ckpt: Option<CheckpointDir>,
    /// Seconds between automatic checkpoints (0 = only on demand/drain).
    pub checkpoint_secs: u64,
    /// Whether chaos endpoints are armed.
    pub chaos: bool,
    /// Watchdog probe interval.
    pub watchdog_every: Duration,
    /// Watchdog probe timeout (per probe round).
    pub watchdog_timeout: Duration,
    /// Shard backend: in-process threads or supervised child processes.
    pub isolate: crate::Isolate,
}

/// The engine state — see the module docs.
pub struct Engine {
    rules: Arc<RuleSet>,
    /// Canonical encoded pack of `rules`, checkpointed so `--resume`
    /// comes back with the rules that were *live* (possibly reloaded),
    /// not the ones the daemon was started with.
    pack_bytes: Vec<u8>,
    config: EngineConfig,
    collector: Collector,
    pool: Box<dyn ShardBackend>,
    usage: UsageTracker,
    staleness: StalenessMonitor,
    anon: Anonymizer,
    stats: Arc<AdmissionStats>,
    datagrams: u64,
    records: u64,
    decode_errors: u64,
    pool_errors: u64,
    watchdog_probes: u64,
    watchdog_respawns: u64,
    strikes: Vec<u8>,
    wild_buf: Vec<WildRecord>,
    ingest_delay: Duration,
}

impl Engine {
    /// Build a fresh engine (no checkpoint), with supervision enabled.
    /// `pack_bytes` is the canonical encoded signature pack of `rules`.
    pub fn new(
        rules: Arc<RuleSet>,
        pack_bytes: Vec<u8>,
        config: EngineConfig,
        stats: Arc<AdmissionStats>,
    ) -> Result<Engine, String> {
        let hitlist = HitList::whole_window(&rules);
        let mut pool = crate::build_backend(
            &rules,
            DetectorConfig { threshold: config.threshold, require_established: false },
            config.workers,
            config.isolate,
        );
        pool.enable_supervision(DEFAULT_REPLAY_LIMIT).map_err(|e| e.to_string())?;
        pool.attach_telemetry(&telemetry::Scope::named("pool")).map_err(|e| e.to_string())?;
        let usage = UsageTracker::new(Arc::clone(&rules), hitlist.clone(), UsageConfig::default());
        let staleness = StalenessMonitor::new(hitlist);
        let anon = Anonymizer::new(config.seed, config.seed ^ 0x9E37_79B9_7F4A_7C15);
        let workers = config.workers;
        Ok(Engine {
            rules,
            pack_bytes,
            config,
            collector: Collector::new(),
            pool,
            usage,
            staleness,
            anon,
            stats,
            datagrams: 0,
            records: 0,
            decode_errors: 0,
            pool_errors: 0,
            watchdog_probes: 0,
            watchdog_respawns: 0,
            strikes: vec![0; workers],
            wild_buf: Vec::new(),
            ingest_delay: Duration::ZERO,
        })
    }

    /// Restore a restarted engine from a serve checkpoint. The caller
    /// has already validated that `config.workers` matches and decoded
    /// `rules` from the checkpointed pack.
    pub fn restore(
        rules: Arc<RuleSet>,
        pack_bytes: Vec<u8>,
        config: EngineConfig,
        stats: Arc<AdmissionStats>,
        ck: &ServeCheckpoint,
    ) -> Result<Engine, String> {
        let mut engine = Engine::new(rules, pack_bytes, config, stats)?;
        engine.collector = Collector::restore(&ck.collector)
            .map_err(|e| format!("collector snapshot: {e}"))?;
        engine.pool.restore_shard_states(&ck.shards).map_err(|e| e.to_string())?;
        engine.usage.restore_state(&ck.usage).map_err(|e| e.to_string())?;
        engine.staleness.restore_state(&ck.staleness);
        engine.datagrams = ck.datagrams;
        engine.records = ck.records;
        engine.decode_errors = ck.decode_errors;
        Ok(engine)
    }

    /// Run until the data channel disconnects (every listener gone and
    /// the queue fully drained), then finish the pool and write the
    /// final checkpoint. This is the whole lifecycle: SIGTERM stops the
    /// listeners, the engine consumes what was already admitted, and
    /// exits with durable state.
    pub fn run(mut self, data_rx: Receiver<Bytes>, ctl_rx: Receiver<CtlRequest>) {
        let mut last_probe = Instant::now();
        let mut last_ckpt = Instant::now();
        loop {
            while let Ok(req) = ctl_rx.try_recv() {
                self.handle_ctl(req);
            }
            match data_rx.recv_timeout(Duration::from_millis(20)) {
                Ok(d) => self.ingest(d),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            if last_probe.elapsed() >= self.config.watchdog_every {
                self.watchdog_probe();
                self.publish_telemetry();
                last_probe = Instant::now();
            }
            if self.config.checkpoint_secs > 0
                && self.config.ckpt.is_some()
                && last_ckpt.elapsed() >= Duration::from_secs(self.config.checkpoint_secs)
            {
                if let Err(e) = self.write_checkpoint() {
                    note!("serve: periodic checkpoint failed: {e}");
                }
                last_ckpt = Instant::now();
            }
        }
        // Drain epilogue: all admitted datagrams are ingested; make the
        // evidence durable before exiting.
        if let Err(e) = self.pool.finish() {
            note!("serve: pool finish during drain: {e}");
        }
        if self.config.ckpt.is_some() {
            match self.write_checkpoint() {
                Ok(generation) => note!("serve: final checkpoint generation {generation}"),
                Err(e) => note!("serve: final checkpoint failed: {e}"),
            }
        }
        // Answer any control requests that raced the shutdown, so the
        // HTTP plane never hangs on a dropped reply channel.
        while let Ok(req) = ctl_rx.try_recv() {
            self.handle_ctl(req);
        }
    }

    /// Spawn the engine loop on its own thread.
    pub fn spawn(
        self,
        data_rx: Receiver<Bytes>,
        ctl_rx: Receiver<CtlRequest>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::Builder::new()
            .name("hay-engine".into())
            .spawn(move || self.run(data_rx, ctl_rx))
            .expect("spawn engine")
    }

    fn ingest(&mut self, datagram: Bytes) {
        if !self.ingest_delay.is_zero() {
            std::thread::sleep(self.ingest_delay);
        }
        self.datagrams += 1;
        match self.collector.feed(datagram) {
            Ok(records) => {
                self.records += records.len() as u64;
                self.wild_buf.clear();
                for r in &records {
                    let w = WildRecord {
                        line: self.anon.anonymize(r.key.src),
                        line_slash24: Prefix4::slash24_of(r.key.src),
                        src_ip: r.key.src,
                        dst: r.key.dst,
                        dport: r.key.dport,
                        proto: r.key.proto,
                        packets: r.packets,
                        bytes: r.bytes,
                        established: r.tcp_flags.is_established_evidence(),
                        hour: r.first.hour(),
                    };
                    self.usage.observe(&w);
                    self.staleness.observe(&w);
                    self.wild_buf.push(w);
                }
                if let Err(e) = self.pool.observe_records(&self.wild_buf) {
                    // Supervision already tried to heal; dropping the
                    // batch and staying up beats dying mid-stream.
                    self.pool_errors += 1;
                    note!("serve: pool rejected a batch: {e}");
                }
            }
            Err(_) => {
                // The collector has counted the malformed message and
                // advanced the source's quarantine state machine.
                self.decode_errors += 1;
            }
        }
    }

    fn watchdog_probe(&mut self) {
        self.watchdog_probes += 1;
        let health = self.pool.shard_health(self.config.watchdog_timeout);
        let status = self.pool.shard_status();
        for (shard, h) in health.iter().enumerate() {
            // A degraded shard (crash-loop breaker open) is the
            // supervisor's verdict, not a stall — respawning it again
            // is exactly the loop the breaker exists to stop. It waits
            // for an operator reset; `/readyz` advertises it meanwhile.
            if matches!(status[shard].status, ShardStatus::Degraded) {
                continue;
            }
            match h {
                ShardHealth::Responsive => self.strikes[shard] = 0,
                ShardHealth::Stalled | ShardHealth::Dead => {
                    self.strikes[shard] += 1;
                    if self.strikes[shard] >= WATCHDOG_STRIKES
                        || matches!(h, ShardHealth::Dead)
                    {
                        note!("serve: watchdog respawning shard {shard} ({})", h.label());
                        match self.pool.force_respawn(shard) {
                            Ok(()) => self.watchdog_respawns += 1,
                            Err(e) => note!("serve: respawn of shard {shard} failed: {e}"),
                        }
                        self.strikes[shard] = 0;
                    }
                }
            }
        }
    }

    /// Mirror the engine's counters into the telemetry registry so
    /// `/metrics` (served off-thread from a snapshot) stays current.
    fn publish_telemetry(&self) {
        let scope = telemetry::Scope::named("serve");
        scope.gauge("received").set(self.stats.received());
        scope.gauge("admitted").set(self.stats.admitted());
        scope.gauge("shed").set(self.stats.shed());
        scope.gauge("datagrams_processed").set(self.datagrams);
        scope.gauge("records_decoded").set(self.records);
        scope.gauge("decode_errors").set(self.decode_errors);
        scope.gauge("watchdog_probes").set(self.watchdog_probes);
        scope.gauge("watchdog_respawns").set(self.watchdog_respawns);
        telemetry::observe_collector(&telemetry::Scope::named("collector"), &self.collector);
    }

    fn write_checkpoint(&mut self) -> Result<u64, String> {
        // Workers export only their dirty-since-last-checkpoint entries;
        // the supervisor folds them into its per-shard bases, which then
        // provide the full states the serve frame persists. The on-disk
        // format stays a single full frame — only the worker pause
        // shrinks to the dirty set.
        self.pool.checkpoint_all_delta().map_err(|e| e.to_string())?;
        let shards = self.pool.supervised_shard_states();
        let ck = ServeCheckpoint {
            workers: self.config.workers as u32,
            threshold: self.config.threshold,
            seed: self.config.seed,
            datagrams: self.datagrams,
            records: self.records,
            decode_errors: self.decode_errors,
            collector: self.collector.snapshot(),
            shards,
            usage: self.usage.export_state(),
            staleness: self.staleness.export_state(),
            pack: self.pack_bytes.clone(),
        };
        let dir = self.config.ckpt.as_ref().ok_or("no --checkpoint-dir")?;
        dir.write(ServeCheckpoint::PREFIX, &ck.encode()).map_err(|e| e.to_string())
    }

    fn handle_ctl(&mut self, req: CtlRequest) {
        let reply = match req.query {
            Query::Ready => self.ready_body(),
            Query::Stats => self.stats_body(),
            Query::Detections { class } => self.detections_body(class.as_deref()),
            Query::Line { id } => self.line_body(id),
            Query::Usage { class } => self.usage_body(class.as_deref()),
            Query::Staleness => self.staleness_body(),
            Query::Sources => self.sources_body(),
            Query::Events => self.events_body(),
            Query::ReloadRules { path } => self.reload_rules(&path),
            Query::CheckpointNow => match self.write_checkpoint() {
                Ok(generation) => ok(format!("{{\"generation\":{generation}}}")),
                Err(e) => err(409, &e),
            },
            Query::Panic { shard } => self.chaos_panic(shard),
            Query::Stall { shard, ms } => self.chaos_stall(shard, ms),
            Query::Slow { us } => self.chaos_slow(us),
        };
        // A dropped reply channel just means the client went away.
        let _ = req.reply.send(reply);
    }

    /// Classes the query applies to, or `None` for an unknown class.
    fn class_filter(&self, class: Option<&str>) -> Option<Vec<String>> {
        match class {
            None => Some(
                self.rules
                    .rules
                    .iter()
                    .map(|r| self.rules.class_name(r.class).to_string())
                    .collect(),
            ),
            Some(c) => self.rules.rule_index(c).map(|_| vec![c.to_string()]),
        }
    }

    /// Datagrams admitted by the listeners but not yet ingested — the
    /// engine's backlog, visible on `/readyz` and `/stats`.
    fn queue_depth(&self) -> u64 {
        self.stats.admitted().saturating_sub(self.datagrams)
    }

    /// Per-shard status rows, byte-determinate: fixed field order,
    /// shards in index order.
    fn shards_json(&self) -> String {
        let rows: Vec<String> = self
            .pool
            .shard_status()
            .iter()
            .enumerate()
            .map(|(i, s)| {
                format!(
                    "{{\"shard\":{i},\"status\":\"{}\",\"queued\":{},\"shed\":{}}}",
                    s.status.label(),
                    s.queued,
                    s.shed
                )
            })
            .collect();
        format!("[{}]", rows.join(","))
    }

    /// `/readyz` through the engine: 200 while every shard serves, 503
    /// naming the degraded shards once any crash-loop breaker is open.
    /// Evidence for a degraded shard queues (bounded, then sheds with
    /// exact accounting) until an operator reset closes the breaker.
    fn ready_body(&mut self) -> CtlReply {
        let degraded: Vec<String> = self
            .pool
            .shard_status()
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.status, ShardStatus::Degraded))
            .map(|(i, _)| i.to_string())
            .collect();
        let body = format!(
            "{{\"ready\":{},\"isolate\":\"{}\",\"queue_depth\":{},\"degraded\":[{}],\"shards\":{}}}",
            degraded.is_empty(),
            self.config.isolate.label(),
            self.queue_depth(),
            degraded.join(","),
            self.shards_json()
        );
        CtlReply {
            status: if degraded.is_empty() { 200 } else { 503 },
            content_type: "application/json",
            body,
        }
    }

    fn stats_body(&mut self) -> CtlReply {
        let shed_by_source: Vec<String> = self
            .stats
            .shed_by_source()
            .iter()
            .map(|(id, n)| format!("[{id},{n}]"))
            .collect();
        ok(format!(
            "{{\"received\":{},\"admitted\":{},\"shed\":{},\"shed_by_source\":[{}],\
             \"datagrams\":{},\"records\":{},\"decode_errors\":{},\"pool_errors\":{},\
             \"isolate\":\"{}\",\"queue_depth\":{},\"shards\":{},\
             \"watchdog\":{{\"probes\":{},\"respawns\":{}}},\
             \"collector\":{{\"missed_datagrams\":{},\"restarts_detected\":{},\
             \"malformed_messages\":{},\"malformed_sets\":{},\"quarantined\":{},\
             \"requarantined\":{}}}}}",
            self.stats.received(),
            self.stats.admitted(),
            self.stats.shed(),
            shed_by_source.join(","),
            self.datagrams,
            self.records,
            self.decode_errors,
            self.pool_errors,
            self.config.isolate.label(),
            self.queue_depth(),
            self.shards_json(),
            self.watchdog_probes,
            self.watchdog_respawns,
            self.collector.missed_datagrams(),
            self.collector.restarts_detected(),
            self.collector.malformed_messages(),
            self.collector.malformed_sets(),
            self.collector.quarantined_sources().len(),
            self.collector.requarantines_total(),
        ))
    }

    fn detections_body(&mut self, class: Option<&str>) -> CtlReply {
        let Some(classes) = self.class_filter(class) else {
            return err(404, "unknown class");
        };
        if let Err(e) = self.pool.flush() {
            return err(500, &e.to_string());
        }
        let mut parts = Vec::with_capacity(classes.len());
        for c in classes {
            let mut lines = match self.pool.detected_lines(&c) {
                Ok(l) => l,
                Err(e) => return err(500, &e.to_string()),
            };
            lines.sort_unstable();
            let ids: Vec<String> = lines.iter().map(|l| l.0.to_string()).collect();
            parts.push(format!(
                "{{\"class\":{c:?},\"count\":{},\"lines\":[{}]}}",
                lines.len(),
                ids.join(",")
            ));
        }
        ok(format!("{{\"classes\":[{}]}}", parts.join(",")))
    }

    fn line_body(&mut self, id: u64) -> CtlReply {
        if let Err(e) = self.pool.flush() {
            return err(500, &e.to_string());
        }
        let line = haystack_net::AnonId(id);
        let names: Vec<String> = self
            .rules
            .rules
            .iter()
            .map(|r| self.rules.class_name(r.class).to_string())
            .collect();
        let mut parts = Vec::with_capacity(names.len());
        for name in &names {
            let detected = match self.pool.is_detected(line, name) {
                Ok(d) => d,
                Err(e) => return err(500, &e.to_string()),
            };
            let confidence = match self.pool.confidence(line, name) {
                Ok(c) => c,
                Err(e) => return err(500, &e.to_string()),
            };
            parts.push(format!(
                "{{\"class\":{name:?},\"detected\":{detected},\"confidence\":{confidence}}}"
            ));
        }
        ok(format!("{{\"line\":{id},\"classes\":[{}]}}", parts.join(",")))
    }

    fn usage_body(&mut self, class: Option<&str>) -> CtlReply {
        let Some(classes) = self.class_filter(class) else {
            return err(404, "unknown class");
        };
        let mut parts = Vec::with_capacity(classes.len());
        for c in classes {
            let active = self.usage.active_lines(&c);
            let ids: Vec<String> = active.iter().map(|l| l.0.to_string()).collect();
            parts.push(format!(
                "{{\"class\":{c:?},\"count\":{},\"active\":[{}]}}",
                active.len(),
                ids.join(",")
            ));
        }
        ok(format!("{{\"classes\":[{}]}}", parts.join(",")))
    }

    fn staleness_body(&mut self) -> CtlReply {
        // `export_state` is order-normalized, and baselines are reported
        // as raw IEEE-754 bits — the restart-determinism proof diffs
        // this body byte-for-byte.
        let state = self.staleness.export_state();
        let today: Vec<String> = state
            .today
            .iter()
            .map(|((ri, di), pkts)| format!("[{ri},{di},{pkts}]"))
            .collect();
        let baseline: Vec<String> = state
            .baseline
            .iter()
            .map(|((ri, di), b)| format!("[{ri},{di},\"{:#018x}\"]", b.to_bits()))
            .collect();
        ok(format!(
            "{{\"days_seen\":{},\"today\":[{}],\"baseline_bits\":[{}]}}",
            state.days_seen,
            today.join(","),
            baseline.join(",")
        ))
    }

    fn sources_body(&mut self) -> CtlReply {
        let healths = self.collector.source_healths();
        let shed = self.stats.shed_by_source();
        let shed_of = |id: u32| shed.iter().find(|(s, _)| *s == id).map_or(0, |(_, n)| *n);
        let mut seen: Vec<u32> = healths.iter().map(|(id, _)| *id).collect();
        let mut parts: Vec<String> = healths
            .iter()
            .map(|(id, h)| {
                format!(
                    "{{\"id\":{id},\"health\":{:?},\"shed\":{}}}",
                    h.label(),
                    shed_of(*id)
                )
            })
            .collect();
        // Sources that only ever shed (never decoded) still show up.
        for (id, n) in &shed {
            if !seen.contains(id) {
                seen.push(*id);
                parts.push(format!("{{\"id\":{id},\"health\":\"unseen\",\"shed\":{n}}}"));
            }
        }
        ok(format!("{{\"sources\":[{}]}}", parts.join(",")))
    }

    /// The NDJSON detection-event stream: one line per (line, rule)
    /// transition into *detected*, derived from exported shard states
    /// (the hot path pays nothing). Byte-determinate: events sort by
    /// (hour, rule, line) regardless of shard count or order.
    fn events_body(&mut self) -> CtlReply {
        let states = match self.pool.shard_states() {
            Ok(s) => s,
            Err(e) => return err(500, &e.to_string()),
        };
        let events = events_from_states(&self.rules, &states);
        let mut body = String::with_capacity(events.len() * 96);
        for e in &events {
            body.push_str(&ndjson_line(&self.rules, e, None));
            body.push('\n');
        }
        CtlReply { status: 200, content_type: "application/x-ndjson", body }
    }

    /// Swap in a signature pack mid-stream. Checkpoint-first: the pool
    /// exports every shard's evidence under supervision, migrates it to
    /// the new rule set by class name (identical rules keep their
    /// evidence verbatim), and ships the new rules + migrated state to
    /// each worker; usage windows and staleness baselines are rekeyed
    /// the same way. A defective or unreadable pack changes nothing.
    fn reload_rules(&mut self, path: &str) -> CtlReply {
        let bytes = match std::fs::read(path) {
            Ok(b) => b,
            Err(e) => return err(400, &format!("cannot read {path}: {e}")),
        };
        let loaded = match SignaturePack::load(&bytes) {
            Ok(p) => p,
            Err(e) => return err(400, &e.to_string()),
        };
        let new_rules = Arc::new(loaded.rules.clone());
        let hitlist = HitList::whole_window(&new_rules);
        if let Err(e) = self.pool.set_rules(&loaded.rules, &hitlist) {
            return err(500, &e.to_string());
        }
        let usage_state =
            pack::migrate_usage_state(&self.rules, &new_rules, &self.usage.export_state());
        self.usage.set_rules(Arc::clone(&new_rules), hitlist.clone());
        if let Err(e) = self.usage.restore_state(&usage_state) {
            return err(500, &format!("usage migration: {e}"));
        }
        let staleness_state =
            pack::migrate_staleness_state(&self.rules, &new_rules, &self.staleness.export_state());
        self.staleness = StalenessMonitor::new(hitlist);
        self.staleness.restore_state(&staleness_state);
        self.rules = new_rules;
        self.pack_bytes = loaded.encode();
        note!(
            "serve: reloaded signature pack from {path} ({} classes, {} rules)",
            self.rules.classes.len(),
            self.rules.rules.len()
        );
        ok(format!(
            "{{\"reloaded\":true,\"classes\":{},\"rules\":{},\"undetectable\":{},\"pack_bytes\":{}}}",
            self.rules.classes.len(),
            self.rules.rules.len(),
            self.rules.undetectable.len(),
            self.pack_bytes.len()
        ))
    }

    fn chaos_panic(&mut self, shard: usize) -> CtlReply {
        if !self.config.chaos {
            return err(403, "chaos endpoints need --chaos");
        }
        if shard >= self.pool.workers() {
            return err(400, "shard out of range");
        }
        match self.pool.inject_panic(shard, "chaos: forced shard panic") {
            Ok(()) => ok(format!("{{\"shard\":{shard},\"injected\":\"panic\"}}")),
            Err(e) => err(500, &e.to_string()),
        }
    }

    fn chaos_stall(&mut self, shard: usize, ms: u64) -> CtlReply {
        if !self.config.chaos {
            return err(403, "chaos endpoints need --chaos");
        }
        if shard >= self.pool.workers() {
            return err(400, "shard out of range");
        }
        match self.pool.inject_stall(shard, Duration::from_millis(ms)) {
            Ok(()) => ok(format!("{{\"shard\":{shard},\"injected\":\"stall\",\"ms\":{ms}}}")),
            Err(e) => err(500, &e.to_string()),
        }
    }

    fn chaos_slow(&mut self, us: u64) -> CtlReply {
        if !self.config.chaos {
            return err(403, "chaos endpoints need --chaos");
        }
        self.ingest_delay = Duration::from_micros(us);
        ok(format!("{{\"injected\":\"slow\",\"us\":{us}}}"))
    }
}

/// `true` while the engine thread is alive — used by the orchestrator's
/// poll loop to notice an engine death.
pub fn engine_alive(handle: &std::thread::JoinHandle<()>) -> bool {
    !handle.is_finished()
}

/// Shared shutdown flag helper: the listeners and the HTTP plane all
/// poll one `AtomicBool`.
pub fn new_shutdown_flag() -> Arc<AtomicBool> {
    Arc::new(AtomicBool::new(false))
}

/// Set the shared flag (listener/HTTP side of the drain).
pub fn trip(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}
