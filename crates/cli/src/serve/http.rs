//! The daemon's HTTP/1.1 control and query plane, hand-rolled over
//! `std::net::TcpListener` (the workspace vendors no HTTP stack, and
//! the plane needs exactly one verb pair, tiny requests, and
//! `Connection: close` semantics).
//!
//! Three endpoint families:
//!
//! * **liveness** — `/healthz` (process up), `/readyz` (503 once a
//!   drain has begun), `/metrics` (Prometheus exposition of the
//!   telemetry registry). Answered directly on the HTTP thread; they
//!   must work even when the engine is busy or draining.
//! * **queries** — `/stats`, `/detections`, `/line`, `/usage`,
//!   `/staleness`, `/sources`, `/events` (NDJSON): forwarded to the
//!   engine over the control channel and answered between ingest
//!   chunks, so they always see consistent state.
//! * **admin** — `POST /admin/checkpoint`, `POST /admin/drain`,
//!   `POST /admin/reload-rules?path=…` (live signature-pack swap), and
//!   (only with `--chaos`) `POST /admin/panic` / `POST /admin/stall`.
//!
//! Requests race the drain: once the shutdown flag is set the accept
//! loop exits within one poll interval, and an engine reply that never
//! comes (engine already gone) surfaces as 503, never a hang.

use super::engine::{CtlReply, CtlRequest, Query};
use haystack_core::telemetry;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Accept-loop poll interval (shutdown-flag latency bound).
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// How long a query may wait on the engine before 503.
const ENGINE_TIMEOUT: Duration = Duration::from_secs(10);
/// Largest request head accepted.
const MAX_HEAD: usize = 8 * 1024;

/// Run the HTTP plane until `shutdown` is set.
pub fn spawn_http(
    listener: TcpListener,
    ctl: Sender<CtlRequest>,
    chaos: bool,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    listener.set_nonblocking(true).expect("http nonblocking");
    std::thread::Builder::new()
        .name("hay-http".into())
        .spawn(move || {
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => handle_conn(stream, &ctl, chaos),
                    Err(e)
                        if matches!(
                            e.kind(),
                            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                        ) =>
                    {
                        std::thread::sleep(POLL_INTERVAL)
                    }
                    Err(_) => break,
                }
            }
        })
        .expect("spawn http")
}

fn handle_conn(mut stream: TcpStream, ctl: &Sender<CtlRequest>, chaos: bool) {
    stream.set_read_timeout(Some(Duration::from_secs(5))).expect("http read timeout");
    let Some((method, target)) = read_request_head(&mut stream) else {
        respond(&mut stream, 400, "text/plain", "bad request\n");
        return;
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body) = route(&method, path, query, ctl, chaos);
    respond(&mut stream, status, content_type, &body);
}

/// Read up to the header terminator and parse the request line.
fn read_request_head(stream: &mut TcpStream) -> Option<(String, String)> {
    let mut head = Vec::new();
    let mut chunk = [0u8; 1024];
    while !head.windows(4).any(|w| w == b"\r\n\r\n") {
        if head.len() > MAX_HEAD {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => head.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    let head = String::from_utf8_lossy(&head);
    let mut parts = head.lines().next()?.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?.to_string();
    Some((method, target))
}

fn respond(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        403 => "Forbidden",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Percent-decode one query-string value (`+` means space; a malformed
/// escape passes through literally).
fn url_decode(v: &str) -> String {
    let bytes = v.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (
                bytes.get(i + 1).and_then(hexval),
                bytes.get(i + 2).and_then(hexval),
            ) {
                (Some(h), Some(l)) => {
                    out.push((h << 4) | l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hexval(b: &u8) -> Option<u8> {
    match b.to_ascii_lowercase() {
        c @ b'0'..=b'9' => Some(c - b'0'),
        c @ b'a'..=b'f' => Some(c - b'a' + 10),
        _ => None,
    }
}

fn param(query: &str, key: &str) -> Option<String> {
    query.split('&').find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then(|| url_decode(v))
    })
}

type Routed = (u16, &'static str, String);

fn route(
    method: &str,
    path: &str,
    query: &str,
    ctl: &Sender<CtlRequest>,
    chaos: bool,
) -> Routed {
    match (method, path) {
        ("GET", "/healthz") => (200, "text/plain", "ok\n".into()),
        ("GET", "/readyz") => {
            if crate::sig::triggered() {
                (503, "text/plain", "draining\n".into())
            } else {
                // Readiness is the engine's verdict: any shard with an
                // open crash-loop breaker turns the daemon not-ready.
                ask(ctl, Query::Ready)
            }
        }
        ("GET", "/metrics") => {
            (200, "text/plain; version=0.0.4", telemetry::global().snapshot().to_prometheus())
        }
        ("GET", "/stats") => ask(ctl, Query::Stats),
        ("GET", "/detections") => ask(ctl, Query::Detections { class: param(query, "class") }),
        ("GET", "/line") => match param(query, "id").and_then(|v| v.parse().ok()) {
            Some(id) => ask(ctl, Query::Line { id }),
            None => bad("line needs ?id=N"),
        },
        ("GET", "/usage") => ask(ctl, Query::Usage { class: param(query, "class") }),
        ("GET", "/staleness") => ask(ctl, Query::Staleness),
        ("GET", "/sources") => ask(ctl, Query::Sources),
        ("GET", "/events") => ask(ctl, Query::Events),
        ("POST", "/admin/checkpoint") => ask(ctl, Query::CheckpointNow),
        ("POST", "/admin/reload-rules") => match param(query, "path") {
            Some(path) => ask(ctl, Query::ReloadRules { path }),
            None => bad("reload-rules needs ?path=/abs/pack.hsp"),
        },
        ("POST", "/admin/drain") => {
            crate::sig::request_shutdown();
            (200, "application/json", "{\"draining\":true}".into())
        }
        ("POST", "/admin/panic") => {
            if !chaos {
                return forbidden();
            }
            match param(query, "shard").and_then(|v| v.parse().ok()) {
                Some(shard) => ask(ctl, Query::Panic { shard }),
                None => bad("panic needs ?shard=N"),
            }
        }
        ("POST", "/admin/slow") => {
            if !chaos {
                return forbidden();
            }
            match param(query, "us").and_then(|v| v.parse().ok()) {
                Some(us) => ask(ctl, Query::Slow { us }),
                None => bad("slow needs ?us=N"),
            }
        }
        ("POST", "/admin/stall") => {
            if !chaos {
                return forbidden();
            }
            match (
                param(query, "shard").and_then(|v| v.parse().ok()),
                param(query, "ms").and_then(|v| v.parse().ok()),
            ) {
                (Some(shard), Some(ms)) => ask(ctl, Query::Stall { shard, ms }),
                _ => bad("stall needs ?shard=N&ms=M"),
            }
        }
        (
            _,
            "/healthz" | "/readyz" | "/metrics" | "/stats" | "/detections" | "/line"
            | "/usage" | "/staleness" | "/sources" | "/events" | "/admin/checkpoint"
            | "/admin/drain" | "/admin/reload-rules" | "/admin/panic" | "/admin/stall"
            | "/admin/slow",
        ) => (405, "application/json", "{\"error\":\"method not allowed\"}".into()),
        _ => (404, "application/json", "{\"error\":\"no such endpoint\"}".into()),
    }
}

fn bad(msg: &str) -> Routed {
    (400, "application/json", format!("{{\"error\":{msg:?}}}"))
}

fn forbidden() -> Routed {
    (403, "application/json", "{\"error\":\"chaos endpoints need --chaos\"}".into())
}

/// Round-trip a query to the engine; a missing engine is 503, not a hang.
fn ask(ctl: &Sender<CtlRequest>, query: Query) -> Routed {
    let (tx, rx) = channel();
    if ctl.send(CtlRequest { query, reply: tx }).is_err() {
        return (503, "application/json", "{\"error\":\"engine gone\"}".into());
    }
    match rx.recv_timeout(ENGINE_TIMEOUT) {
        Ok(CtlReply { status, content_type, body }) => (status, content_type, body),
        Err(_) => (503, "application/json", "{\"error\":\"engine busy\"}".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn url_decoding_covers_the_class_names() {
        assert_eq!(url_decode("Alexa%20Enabled"), "Alexa Enabled");
        assert_eq!(url_decode("Alexa+Enabled"), "Alexa Enabled");
        assert_eq!(url_decode("plain"), "plain");
        assert_eq!(url_decode("bad%zz"), "bad%zz");
        assert_eq!(url_decode("%41%6a"), "Aj");
    }

    #[test]
    fn params_parse() {
        assert_eq!(param("class=Alexa+Enabled&x=1", "class").as_deref(), Some("Alexa Enabled"));
        assert_eq!(param("a=1&b=2", "b").as_deref(), Some("2"));
        assert_eq!(param("a=1", "missing"), None);
        assert_eq!(param("", "a"), None);
    }
}
