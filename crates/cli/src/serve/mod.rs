//! `haystack serve` — the hardened long-running detection daemon
//! (DESIGN.md §13).
//!
//! Wiring, front to back:
//!
//! ```text
//!   UDP socket ──┐                       ┌── HTTP plane (queries/admin)
//!                ├─ bounded admission ───┤
//!   TCP replay ──┘   queue (sheds on     └─▶ control channel
//!                     the UDP path)            │
//!                          │ data              │
//!                          ▼                   ▼
//!                    engine thread (collector → pool → usage/staleness)
//! ```
//!
//! Lifecycle state machine: **serving** → (SIGTERM, SIGINT, or
//! `POST /admin/drain`) → **draining** (listeners stop, `/readyz` turns
//! 503, the engine consumes every already-admitted datagram) →
//! **checkpointed exit** (pool finished, one final checkpoint
//! generation, exit 0). A daemon restarted with `--resume` restores
//! collector, shard evidence, usage window, staleness baselines, and
//! counters, and answers queries byte-identically to a run that was
//! never interrupted.

mod engine;
mod http;
mod send;
mod state;

pub use send::cmd_send;

use engine::{Engine, EngineConfig};
use haystack_cli::resume::{load_validated, ResumeError};
use haystack_cli::{cli_error, note};
use haystack_core::checkpoint::CheckpointDir;
use haystack_core::pack::SignaturePack;
use haystack_core::rules::RuleSet;
use haystack_core::telemetry;
use haystack_flow::listener::{spawn_tcp_listener, spawn_udp_listener, AdmissionQueue};
use state::ServeCheckpoint;
use std::collections::HashMap;
use std::net::{Ipv4Addr, TcpListener, UdpSocket};
use std::process::exit;
use std::sync::atomic::Ordering;
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::time::Duration;

fn fatal<T, E: std::fmt::Display>(what: &str, r: Result<T, E>) -> T {
    r.unwrap_or_else(|e| {
        cli_error!("{what}: {e}");
        exit(1);
    })
}

/// Reject an explicit flag that contradicts the checkpointed daemon
/// configuration (same policy as `detect --resume`).
fn serve_conflicts(
    ck: &ServeCheckpoint,
    generation: u64,
    flags: &HashMap<String, String>,
) -> Result<(), ResumeError> {
    fn check<T: std::str::FromStr + PartialEq + std::fmt::Display>(
        flags: &HashMap<String, String>,
        generation: u64,
        field: &'static str,
        checkpoint: T,
    ) -> Result<(), ResumeError> {
        let Some(flag) = flags.get(field) else { return Ok(()) };
        if flag.parse::<T>().is_ok_and(|v| v == checkpoint) {
            return Ok(());
        }
        Err(ResumeError::Conflict {
            generation,
            field,
            flag: flag.clone(),
            checkpoint: checkpoint.to_string(),
        })
    }
    check(flags, generation, "workers", ck.workers)?;
    check(flags, generation, "threshold", ck.threshold)?;
    check(flags, generation, "seed", ck.seed)?;
    Ok(())
}

pub fn cmd_serve(flags: HashMap<String, String>) {
    telemetry::set_enabled(true);
    crate::sig::install();

    let (file_rules, file_pack) = crate::load_rules_full(&flags);

    let ckpt_dir = flags
        .get("checkpoint-dir")
        .map(|d| fatal("checkpoint", CheckpointDir::open(d)));
    let resume = flags.contains_key("resume");
    if resume && ckpt_dir.is_none() {
        cli_error!("--resume needs --checkpoint-dir");
        exit(2);
    }

    // A resumed daemon takes its configuration from the checkpoint;
    // explicit flags may confirm it but not contradict it.
    let loaded: Option<(u64, ServeCheckpoint)> = if resume {
        let dir = ckpt_dir.as_ref().expect("checked above");
        match load_validated(dir, ServeCheckpoint::PREFIX, ServeCheckpoint::decode) {
            Ok(Some((generation, ck))) => {
                fatal("resume", serve_conflicts(&ck, generation, &flags).map_err(|e| e.to_string()));
                note!(
                    "resuming from serve checkpoint generation {generation} \
                     ({} datagrams, {} records)",
                    ck.datagrams,
                    ck.records
                );
                Some((generation, ck))
            }
            Ok(None) => {
                note!("no serve checkpoint found; starting fresh");
                None
            }
            Err(e) => {
                cli_error!("resume: {e}");
                exit(1);
            }
        }
    } else {
        None
    };

    let (workers, threshold, seed) = match &loaded {
        Some((_, ck)) => (ck.workers as usize, ck.threshold, ck.seed),
        None => (
            crate::num(&flags, "workers", 4),
            crate::num(&flags, "threshold", 0.4),
            crate::num(&flags, "seed", 42),
        ),
    };
    if workers == 0 {
        cli_error!("--workers must be at least 1");
        exit(2);
    }

    // A resumed daemon runs the rules it checkpointed (a pack reloaded
    // via `/admin/reload-rules` survives the restart); a fresh daemon
    // wraps its `--rules` file into a canonical pack frame.
    let (rules, pack_bytes): (Arc<RuleSet>, Vec<u8>) = match &loaded {
        Some((generation, ck)) => {
            let pack = SignaturePack::load(&ck.pack).unwrap_or_else(|e| {
                cli_error!("resume: checkpoint generation {generation} pack: {e}");
                exit(1);
            });
            let bytes = pack.encode();
            (Arc::new(pack.rules), bytes)
        }
        None => {
            let pack = match file_pack {
                Some(p) => p,
                None => SignaturePack {
                    rules: file_rules.clone(),
                    threshold,
                    source: "haystack serve --rules".into(),
                    comment: String::new(),
                },
            };
            let bytes = pack.encode();
            (Arc::new(pack.rules), bytes)
        }
    };

    let queue_capacity: usize = crate::num(&flags, "queue-capacity", 1_024);
    if queue_capacity == 0 {
        cli_error!("--queue-capacity must be at least 1");
        exit(2);
    }
    let chaos = flags.contains_key("chaos");
    let isolate = crate::parse_isolate(&flags);
    let config = EngineConfig {
        workers,
        threshold,
        seed,
        ckpt: ckpt_dir,
        checkpoint_secs: crate::num(&flags, "checkpoint-secs", 0),
        chaos,
        watchdog_every: Duration::from_millis(crate::num(&flags, "watchdog-ms", 1_000)),
        watchdog_timeout: Duration::from_millis(crate::num(&flags, "watchdog-timeout-ms", 500)),
        isolate,
    };

    // Bind every socket before spawning anything, so a port clash fails
    // fast and `--ports-file` describes a fully-listening daemon.
    let host = flags.get("host").cloned().unwrap_or_else(|| "127.0.0.1".into());
    let host_ip: Ipv4Addr = fatal("--host", host.parse());
    let udp = fatal(
        "udp bind",
        UdpSocket::bind((host_ip, crate::num::<u16>(&flags, "udp-port", 0))),
    );
    let tcp = fatal(
        "tcp bind",
        TcpListener::bind((host_ip, crate::num::<u16>(&flags, "tcp-port", 0))),
    );
    let http_sock = fatal(
        "http bind",
        TcpListener::bind((host_ip, crate::num::<u16>(&flags, "http-port", 0))),
    );
    let udp_port = fatal("udp addr", udp.local_addr()).port();
    let tcp_port = fatal("tcp addr", tcp.local_addr()).port();
    let http_port = fatal("http addr", http_sock.local_addr()).port();
    note!(
        "haystack serve: udp {host}:{udp_port}  tcp {host}:{tcp_port}  http {host}:{http_port}  \
         ({workers} {} workers, queue {queue_capacity}{})",
        isolate.label(),
        if chaos { ", chaos armed" } else { "" }
    );
    if let Some(path) = flags.get("ports-file") {
        let doc = format!(
            "{{\"udp\":{udp_port},\"tcp\":{tcp_port},\"http\":{http_port},\"pid\":{}}}\n",
            std::process::id()
        );
        fatal("ports file", std::fs::write(path, doc));
    }

    let (queue, data_rx, stats) = AdmissionQueue::bounded(queue_capacity);
    let engine = match &loaded {
        Some((_, ck)) => fatal(
            "restore",
            Engine::restore(rules, pack_bytes, config, stats.clone(), ck),
        ),
        None => fatal("engine", Engine::new(rules, pack_bytes, config, stats.clone())),
    };

    let shutdown = engine::new_shutdown_flag();
    let (ctl_tx, ctl_rx) = channel();
    let udp_handle = spawn_udp_listener(udp, queue.clone(), shutdown.clone());
    let tcp_handle = spawn_tcp_listener(tcp, queue.clone(), shutdown.clone());
    let http_handle = http::spawn_http(http_sock, ctl_tx, chaos, shutdown.clone());
    // The engine's data channel must disconnect when the listeners
    // exit, so the orchestrator holds no producer of its own.
    drop(queue);
    let engine_handle = engine.spawn(data_rx, ctl_rx);

    // Park until a drain begins (signal or /admin/drain) or the engine
    // dies underneath us (listener sockets torn down, nothing to serve).
    while !crate::sig::triggered() && engine::engine_alive(&engine_handle) {
        std::thread::sleep(Duration::from_millis(50));
    }
    note!("serve: draining (stopping listeners, flushing admitted datagrams)");
    engine::trip(&shutdown);
    let _ = udp_handle.join();
    let _ = tcp_handle.join();
    // Listener producers are gone: the engine drains to disconnection,
    // finishes the pool, writes the final checkpoint, and exits.
    let _ = engine_handle.join();
    let _ = http_handle.join();
    debug_assert!(shutdown.load(Ordering::SeqCst));
    note!("serve: drained and checkpointed; exiting");
}
