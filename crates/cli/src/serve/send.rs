//! `haystack send` — a loopback NetFlow v9 exporter for driving a
//! running `haystack serve` daemon: smoke tests, the CI replay job, the
//! chaos suite, and the restart-determinism proof all feed the daemon
//! through this command.
//!
//! Two record generators:
//!
//! * with `--rules FILE`, every line contacts every (service IP, port)
//!   of every rule — records that *hit*, so detections, usage, and
//!   staleness all light up deterministically;
//! * without, the generic synthetic stream (same generator as
//!   `haystack chaos`) — background traffic that misses the hitlist.
//!
//! Two transports, matching the daemon's two listeners:
//!
//! * `--mode tcp` (default): length-prefixed frames over the lossless
//!   replay path — nothing sheds, so byte-identical restart proofs can
//!   count on every record arriving;
//! * `--mode udp`: raw datagrams at full speed — the overload path.
//!
//! `--malformed N` corrupts the first N datagrams' first set header
//! (valid NetFlow header, garbage sets), which drives the collector's
//! per-source malformed/quarantine machinery for `--source`.

use haystack_cli::{cli_error, note};
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::listener::write_frame;
use haystack_flow::{FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::collections::HashMap;
use std::net::{Ipv4Addr, TcpStream, UdpSocket};
use std::process::exit;

/// Records that hit every rule's every (service IP, port) once per line.
fn hitting_records(
    rules: &haystack_core::rules::RuleSet,
    lines: u32,
    packets: u64,
    hour: u32,
) -> Vec<FlowRecord> {
    let mut out = Vec::new();
    let base = u64::from(hour) * 3_600;
    for line in 0..lines {
        let src = Ipv4Addr::new(100, 64, (line >> 8) as u8, line as u8);
        for rule in &rules.rules {
            for dom in &rule.domains {
                for &ip in &dom.ips {
                    for &port in &dom.ports {
                        out.push(FlowRecord {
                            key: FlowKey {
                                src,
                                dst: ip,
                                sport: 40_000 + (line % 1_000) as u16,
                                dport: port,
                                proto: Proto::Tcp,
                            },
                            packets,
                            bytes: 60 * packets,
                            tcp_flags: TcpFlags::ACK,
                            first: SimTime(base),
                            last: SimTime(base + 30),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Overwrite the first set header with garbage: the NetFlow header (and
/// its source id) still parses, the sets do not — a malformed message
/// attributed to the right source.
fn corrupt(datagram: &[u8]) -> Vec<u8> {
    let mut d = datagram.to_vec();
    for b in d.iter_mut().skip(20).take(4) {
        *b = 0xFF;
    }
    d
}

pub fn cmd_send(flags: HashMap<String, String>) {
    let port: u16 = crate::num(&flags, "port", 0);
    if port == 0 {
        cli_error!("send needs --port (the daemon prints its bound ports at startup)");
        exit(2);
    }
    let host = flags.get("host").cloned().unwrap_or_else(|| "127.0.0.1".into());
    let mode = flags.get("mode").map(String::as_str).unwrap_or("tcp");
    let seed: u64 = crate::num(&flags, "seed", 42);
    let source: u32 = crate::num(&flags, "source", 7);
    let hour: u32 = crate::num(&flags, "hour", 0);
    let malformed: usize = crate::num(&flags, "malformed", 0);
    let repeat: usize = crate::num(&flags, "repeat", 1);

    let records = if flags.contains_key("rules") {
        let rules = crate::load_rules(&flags);
        let lines: u32 = crate::num(&flags, "lines", 16);
        let packets: u64 = crate::num(&flags, "packets", 12);
        hitting_records(&rules, lines, packets, hour)
    } else {
        let n: usize = crate::num(&flags, "records", 10_000);
        crate::synthetic_flow_records(n, seed)
    };

    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, source);
    let mut datagrams: Vec<Vec<u8>> = Vec::new();
    for chunk in records.chunks(512) {
        let msgs = exporter.export(chunk, 3_600 * hour).unwrap_or_else(|e| {
            cli_error!("export: {e}");
            exit(1);
        });
        datagrams.extend(msgs.iter().map(|d| d.to_vec()));
    }
    for d in datagrams.iter_mut().take(malformed) {
        *d = corrupt(d);
    }

    let addr = format!("{host}:{port}");
    let mut sent = 0usize;
    match mode {
        "tcp" => {
            let mut stream = TcpStream::connect(&addr).unwrap_or_else(|e| {
                cli_error!("cannot connect to {addr}: {e}");
                exit(1);
            });
            for _ in 0..repeat {
                for d in &datagrams {
                    write_frame(&mut stream, d).unwrap_or_else(|e| {
                        cli_error!("send to {addr}: {e}");
                        exit(1);
                    });
                    sent += 1;
                }
            }
        }
        "udp" => {
            let socket = UdpSocket::bind((Ipv4Addr::UNSPECIFIED, 0)).unwrap_or_else(|e| {
                cli_error!("cannot bind a udp socket: {e}");
                exit(1);
            });
            for _ in 0..repeat {
                for d in &datagrams {
                    socket.send_to(d, &addr).unwrap_or_else(|e| {
                        cli_error!("send to {addr}: {e}");
                        exit(1);
                    });
                    sent += 1;
                }
            }
        }
        other => {
            cli_error!("--mode must be tcp or udp, not {other:?}");
            exit(2);
        }
    }
    note!(
        "sent {sent} datagram(s) ({} record(s){}) from source {source} to {addr} over {mode}",
        records.len() * repeat,
        if malformed > 0 { format!(", first {malformed} malformed") } else { String::new() },
    );
    println!("{sent}\t{}", records.len() * repeat);
}
