//! The daemon's durable state: one frame holding everything a restarted
//! `haystack serve` needs to answer queries byte-identically to an
//! uninterrupted run (DESIGN.md §13).
//!
//! The frame nests the components' own checksummed frames (collector
//! snapshot, per-shard detector states, usage window, staleness
//! baselines) rather than re-flattening them — each component already
//! guarantees order-normalized, bit-exact encoding, and nesting keeps
//! this codec ignorant of their internals.

use haystack_core::{DetectorState, StalenessState, UsageState};
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};

/// Everything `haystack serve` persists at checkpoint time.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeCheckpoint {
    /// Worker (shard) count — shard states are per-shard, so a resumed
    /// pool must match.
    pub workers: u32,
    /// Detection threshold the daemon was started with.
    pub threshold: f64,
    /// Anonymization seed (line identities must survive a restart).
    pub seed: u64,
    /// Datagrams the engine has processed (admitted and fed).
    pub datagrams: u64,
    /// Flow records decoded out of those datagrams.
    pub records: u64,
    /// Datagrams the collector rejected as malformed.
    pub decode_errors: u64,
    /// The collector's own snapshot frame (templates, sequence state,
    /// per-source health including quarantine/probation).
    pub collector: Vec<u8>,
    /// Per-shard detector evidence.
    pub shards: Vec<DetectorState>,
    /// The usage tracker's current hour window.
    pub usage: UsageState,
    /// The staleness monitor's day counts and decayed baselines.
    pub staleness: StalenessState,
    /// The live rules as a canonical signature-pack frame — a reloaded
    /// pack must survive `--resume`, so the daemon persists the rules
    /// it is actually running, not the path it was started with.
    pub pack: Vec<u8>,
}

impl ServeCheckpoint {
    /// Frame magic of a serve checkpoint.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYSRVC\0";
    /// Snapshot format version this build writes and reads (v2 added
    /// the signature-pack frame).
    pub const VERSION: u32 = 2;
    /// File prefix inside the checkpoint directory.
    pub const PREFIX: &'static str = "serve";

    /// Seal the checkpoint as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u32(self.workers);
        w.put_f64_bits(self.threshold);
        w.put_u64(self.seed);
        w.put_u64(self.datagrams);
        w.put_u64(self.records);
        w.put_u64(self.decode_errors);
        w.put_bytes(&self.collector);
        w.put_u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_bytes(&shard.encode());
        }
        w.put_bytes(&self.usage.encode());
        w.put_bytes(&self.staleness.encode());
        w.put_bytes(&self.pack);
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`ServeCheckpoint::encode`].
    pub fn decode(frame: &[u8]) -> Result<ServeCheckpoint, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let workers = r.u32()?;
        let threshold = r.f64_bits()?;
        let seed = r.u64()?;
        let datagrams = r.u64()?;
        let records = r.u64()?;
        let decode_errors = r.u64()?;
        let collector = r.bytes()?.to_vec();
        let n_shards = r.count(4)?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(DetectorState::decode(r.bytes()?)?);
        }
        let usage = UsageState::decode(r.bytes()?)?;
        let staleness = StalenessState::decode(r.bytes()?)?;
        let pack = r.bytes()?.to_vec();
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(ServeCheckpoint {
            workers,
            threshold,
            seed,
            datagrams,
            records,
            decode_errors,
            collector,
            shards,
            usage,
            staleness,
            pack,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_core::checkpoint::LineEvidence;
    use haystack_net::{AnonId, HourBin};

    fn sample() -> ServeCheckpoint {
        ServeCheckpoint {
            workers: 3,
            threshold: 0.4,
            seed: 7,
            datagrams: 120,
            records: 840,
            decode_errors: 2,
            collector: haystack_flow::Collector::new().snapshot(),
            shards: vec![
                DetectorState {
                    rules: vec![vec![LineEvidence {
                        line: AnonId(11),
                        mask: 0b11,
                        first_met: Some(HourBin(4)),
                    }]],
                },
                DetectorState { rules: vec![vec![]] },
            ],
            usage: UsageState {
                packets: vec![vec![(AnonId(11), 14)]],
                indicator: vec![vec![AnonId(11)]],
            },
            staleness: StalenessState {
                today: vec![((0, 0), 9)],
                baseline: vec![((0, 0), 1.0 / 7.0)],
                days_seen: 2,
            },
            pack: b"HAYPACK\0stand-in pack frame".to_vec(),
        }
    }

    #[test]
    fn round_trips_exactly_and_deterministically() {
        let ck = sample();
        assert_eq!(ServeCheckpoint::decode(&ck.encode()).unwrap(), ck);
        assert_eq!(ck.encode(), ck.encode());
    }

    #[test]
    fn corruption_is_rejected() {
        let frame = sample().encode();
        for i in (0..frame.len()).step_by(13) {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(ServeCheckpoint::decode(&bad).is_err(), "flip at {i}");
        }
        assert!(ServeCheckpoint::decode(&frame[..frame.len() - 1]).is_err());
    }
}
