//! The run-level checkpoint `haystack detect --checkpoint-dir` persists
//! (DESIGN.md §12).
//!
//! One [`RunCheckpoint`] frame captures everything a killed `detect` run
//! needs to continue byte-identically:
//!
//! * the **configuration** the run was started with — a resumed run uses
//!   the checkpointed config, so flag drift between invocations cannot
//!   silently change the stream being generated;
//! * the **watermark** (`day`, `hour`, `chunk`) of the next chunk to
//!   process — generation is deterministic and chunking-invariant, so
//!   the resumed run regenerates the watermark hour and skips the
//!   already-processed prefix;
//! * every stdout line **emitted** so far — re-printed on resume, so the
//!   concatenation rule is trivial: a resumed run's stdout equals an
//!   uninterrupted run's stdout, full stop (the `kill_resume`
//!   integration test diffs them byte for byte);
//! * the per-shard **detector states**, exported by the worker pool.
//!
//! The frame rides the `haystack-net` snapshot codec: versioned magic,
//! length header, FNV-1a checksum. A truncated or bit-flipped file is
//! rejected with a typed error and `CheckpointDir::load_latest` falls
//! back to the previous generation.

use haystack_core::{CheckpointDir, CheckpointError, DetectorSnapshot, DetectorState};
use haystack_net::snapshot::{
    checksum_ok, open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN,
};
use haystack_wild::Watermark;
use std::collections::HashMap;
use std::fmt;

/// Everything needed to resume an interrupted `haystack detect` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// `--seed` of the interrupted run.
    pub seed: u64,
    /// `--lines` of the interrupted run.
    pub lines: u32,
    /// `--days` of the interrupted run.
    pub days: u32,
    /// `--threshold` of the interrupted run.
    pub threshold: f64,
    /// `--workers` of the interrupted run (shard states are per-shard,
    /// so the resumed pool must match).
    pub workers: u32,
    /// Stream chunk size (watermark chunks are counted in this unit).
    pub chunk_records: u64,
    /// Next chunk to process.
    pub watermark: Watermark,
    /// Records already streamed in the watermark's day (the day-summary
    /// note continues from here).
    pub records_this_day: u64,
    /// Whether the run had already completed when this was written.
    pub done: bool,
    /// Stdout lines already printed, re-printed verbatim on resume.
    pub emitted: Vec<String>,
    /// Per-shard detector evidence as of the watermark.
    pub shards: Vec<DetectorState>,
}

impl RunCheckpoint {
    /// Frame magic of a run checkpoint.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYRUNC\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;
    /// File prefix inside the checkpoint directory.
    pub const PREFIX: &'static str = "run";

    /// Seal the checkpoint as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.seed);
        w.put_u32(self.lines);
        w.put_u32(self.days);
        w.put_f64_bits(self.threshold);
        w.put_u32(self.workers);
        w.put_u64(self.chunk_records);
        w.put_u32(self.watermark.day);
        w.put_u32(self.watermark.hour);
        w.put_u64(self.watermark.chunk);
        w.put_u64(self.records_this_day);
        w.put_u8(u8::from(self.done));
        w.put_u64(self.emitted.len() as u64);
        for line in &self.emitted {
            w.put_str(line);
        }
        w.put_u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_bytes(&shard.encode());
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`RunCheckpoint::encode`].
    pub fn decode(frame: &[u8]) -> Result<RunCheckpoint, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let seed = r.u64()?;
        let lines = r.u32()?;
        let days = r.u32()?;
        let threshold = r.f64_bits()?;
        let workers = r.u32()?;
        let chunk_records = r.u64()?;
        let watermark = Watermark { day: r.u32()?, hour: r.u32()?, chunk: r.u64()? };
        let records_this_day = r.u64()?;
        let done = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapError::Malformed("bad done flag")),
        };
        let n_emitted = r.count(4)?;
        let mut emitted = Vec::with_capacity(n_emitted);
        for _ in 0..n_emitted {
            let s = std::str::from_utf8(r.bytes()?)
                .map_err(|_| SnapError::Malformed("emitted line is not UTF-8"))?;
            emitted.push(s.to_string());
        }
        let n_shards = r.count(4)?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(DetectorState::decode(r.bytes()?)?);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(RunCheckpoint { seed, lines, days, threshold, workers, chunk_records, watermark, records_this_day, done, emitted, shards })
    }
}

/// An incremental run checkpoint: everything that changed since the
/// previous frame (full or delta), chained by `base_generation`.
///
/// At soak scale a full [`RunCheckpoint`] re-encodes every (line, rule)
/// evidence entry on every save; a delta carries only the watermark
/// advance, the stdout lines emitted since the previous flush, and each
/// shard's dirty-only [`DetectorSnapshot`]. The chain invariant is that
/// applying deltas in `base_generation` order onto their full base
/// reconstructs exactly the state an uninterrupted full checkpoint would
/// have captured at the last delta's watermark; a delta whose base is
/// missing or corrupt does not link, so the loader stops at the last
/// *consistent* (watermark, state) pair and re-processes the stream from
/// there — determinism makes the final output identical either way.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDelta {
    /// Generation of the frame this delta chains directly onto.
    pub base_generation: u64,
    /// Next chunk to process, as of this delta.
    pub watermark: Watermark,
    /// Records already streamed in the watermark's day.
    pub records_this_day: u64,
    /// Whether the run had completed when this was written.
    pub done: bool,
    /// Stdout lines emitted since the previous frame.
    pub emitted_new: Vec<String>,
    /// Per-shard dirty-only (or, for a healed shard, full) snapshots.
    pub shards: Vec<DetectorSnapshot>,
}

impl RunDelta {
    /// Frame magic of a run delta.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYRUND\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;

    /// Seal the delta as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.base_generation);
        w.put_u32(self.watermark.day);
        w.put_u32(self.watermark.hour);
        w.put_u64(self.watermark.chunk);
        w.put_u64(self.records_this_day);
        w.put_u8(u8::from(self.done));
        w.put_u64(self.emitted_new.len() as u64);
        for line in &self.emitted_new {
            w.put_str(line);
        }
        w.put_u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_bytes(&shard.encode());
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`RunDelta::encode`].
    pub fn decode(frame: &[u8]) -> Result<RunDelta, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let base_generation = r.u64()?;
        let watermark = Watermark { day: r.u32()?, hour: r.u32()?, chunk: r.u64()? };
        let records_this_day = r.u64()?;
        let done = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapError::Malformed("bad done flag")),
        };
        let n_emitted = r.count(4)?;
        let mut emitted_new = Vec::with_capacity(n_emitted);
        for _ in 0..n_emitted {
            let s = std::str::from_utf8(r.bytes()?)
                .map_err(|_| SnapError::Malformed("emitted line is not UTF-8"))?;
            emitted_new.push(s.to_string());
        }
        let n_shards = r.count(4)?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(DetectorSnapshot::decode(r.bytes()?)?);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(RunDelta { base_generation, watermark, records_this_day, done, emitted_new, shards })
    }

    /// Fold this delta into its base checkpoint.
    pub fn apply(&self, ck: &mut RunCheckpoint) -> Result<(), CheckpointError> {
        if self.shards.len() != ck.shards.len() {
            return Err(CheckpointError::StateMismatch(
                "run delta shard count differs from its base checkpoint",
            ));
        }
        ck.watermark = self.watermark;
        ck.records_this_day = self.records_this_day;
        ck.done = self.done;
        ck.emitted.extend(self.emitted_new.iter().cloned());
        for (base, snap) in ck.shards.iter_mut().zip(&self.shards) {
            snap.apply_to(base)?;
        }
        Ok(())
    }
}

/// Why a checkpoint directory could not be resumed from — each variant
/// names the offending generation, so the operator knows exactly which
/// file to inspect or delete.
#[derive(Debug)]
pub enum ResumeError {
    /// Directory-level I/O failed (or every generation was unreadable).
    Checkpoint(CheckpointError),
    /// The newest generation has a *valid checksum* but was written by a
    /// different format version — falling back would silently resume an
    /// older run, so this is a hard error naming both versions.
    VersionSkew {
        /// Generation that carries the skewed frame.
        generation: u64,
        /// Version the frame declares.
        found: u32,
        /// Version this build reads.
        expected: u32,
    },
    /// Every on-disk generation failed its checksum or decode; the
    /// newest generation's error is reported.
    AllCorrupt {
        /// Newest (first-tried) generation.
        generation: u64,
        /// Its decode failure.
        err: SnapError,
    },
    /// An explicit command-line flag contradicts the checkpointed
    /// configuration — resuming would silently change the stream.
    Conflict {
        /// Generation the configuration was read from.
        generation: u64,
        /// The conflicting configuration field.
        field: &'static str,
        /// Value given on the command line.
        flag: String,
        /// Value recorded in the checkpoint.
        checkpoint: String,
    },
}

impl fmt::Display for ResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResumeError::Checkpoint(e) => write!(f, "{e}"),
            ResumeError::VersionSkew { generation, found, expected } => write!(
                f,
                "checkpoint generation {generation} was written by snapshot format \
                 version {found}, but this build reads version {expected}; \
                 re-run the writing build or remove the checkpoint directory"
            ),
            ResumeError::AllCorrupt { generation, err } => write!(
                f,
                "no usable checkpoint: every generation is corrupt \
                 (newest generation {generation}: {err})"
            ),
            ResumeError::Conflict { generation, field, flag, checkpoint } => write!(
                f,
                "--{field} {flag} conflicts with checkpoint generation {generation} \
                 ({field} = {checkpoint}); drop the flag or start a fresh checkpoint directory"
            ),
        }
    }
}

impl std::error::Error for ResumeError {}

impl From<CheckpointError> for ResumeError {
    fn from(e: CheckpointError) -> Self {
        ResumeError::Checkpoint(e)
    }
}

/// Load the newest usable generation of `prefix`, with *explained*
/// failures (unlike `CheckpointDir::load_latest`, which only falls
/// back):
///
/// * a frame whose **checksum verifies** but whose version differs is
///   genuine version skew — a hard [`ResumeError::VersionSkew`] naming
///   the generation, never a silent fallback to an older run;
/// * a frame whose checksum fails is bit rot or a torn write — skipped,
///   falling back to the previous generation exactly as before;
/// * when every generation is corrupt, the newest generation's error is
///   reported with its generation number.
pub fn load_validated<T>(
    dir: &CheckpointDir,
    prefix: &str,
    mut decode: impl FnMut(&[u8]) -> Result<T, SnapError>,
) -> Result<Option<(u64, T)>, ResumeError> {
    let generations = dir.generations(prefix)?;
    let mut newest_err: Option<(u64, SnapError)> = None;
    for &generation in generations.iter().rev() {
        let frame = dir.read_generation(prefix, generation)?;
        match decode(&frame) {
            Ok(v) => return Ok(Some((generation, v))),
            Err(SnapError::BadVersion { found, expected }) if checksum_ok(&frame) => {
                return Err(ResumeError::VersionSkew { generation, found, expected });
            }
            Err(e) => {
                if newest_err.is_none() {
                    newest_err = Some((generation, e));
                }
            }
        }
    }
    match newest_err {
        Some((generation, err)) => Err(ResumeError::AllCorrupt { generation, err }),
        None => Ok(None),
    }
}

/// Load the newest usable run state by replaying the full+delta chain.
///
/// Fulls are tried newest-first with [`load_validated`]'s error
/// classification (checksum-valid version skew is a hard error, bit rot
/// falls back). Onto the chosen full, deltas are applied in generation
/// order — but only while each delta's `base_generation` links to the
/// frame before it. A corrupt, skewed-base, or non-linking delta stops
/// the chain: the run resumes from the last *consistent* generation and
/// re-processes the stream from that watermark.
pub fn load_resume_checkpoint(
    dir: &CheckpointDir,
) -> Result<Option<(u64, RunCheckpoint)>, ResumeError> {
    let fulls = dir.generations(RunCheckpoint::PREFIX)?;
    let deltas = dir.delta_generations(RunCheckpoint::PREFIX)?;
    let mut newest_err: Option<(u64, SnapError)> = None;
    for &generation in fulls.iter().rev() {
        let frame = dir.read_generation(RunCheckpoint::PREFIX, generation)?;
        let mut ck = match RunCheckpoint::decode(&frame) {
            Ok(ck) => ck,
            Err(SnapError::BadVersion { found, expected }) if checksum_ok(&frame) => {
                return Err(ResumeError::VersionSkew { generation, found, expected });
            }
            Err(e) => {
                if newest_err.is_none() {
                    newest_err = Some((generation, e));
                }
                continue;
            }
        };
        let mut top = generation;
        for &dg in deltas.iter().filter(|&&dg| dg > generation) {
            let Ok(dframe) = dir.read_delta(RunCheckpoint::PREFIX, dg) else { break };
            match RunDelta::decode(&dframe) {
                Ok(d) if d.base_generation == top => {
                    if d.apply(&mut ck).is_err() {
                        break;
                    }
                    top = dg;
                }
                // Chains onto a generation this walk did not restore
                // (e.g. a newer-but-corrupt full): the chain breaks here
                // and the run resumes from the last linked frame.
                Ok(_) => break,
                Err(SnapError::BadVersion { found, expected }) if checksum_ok(&dframe) => {
                    return Err(ResumeError::VersionSkew { generation: dg, found, expected });
                }
                Err(_) => break,
            }
        }
        return Ok(Some((top, ck)));
    }
    match newest_err {
        Some((generation, err)) => Err(ResumeError::AllCorrupt { generation, err }),
        None => Ok(None),
    }
}

/// Reject explicit flags that contradict the checkpointed configuration.
///
/// A resumed run takes its configuration from the checkpoint; a flag the
/// operator *did not pass* simply defers to it. But an explicitly passed
/// value that disagrees is a footgun — the run would silently ignore it —
/// so each one fails loudly, naming the field, both values, and the
/// generation they came from.
pub fn flag_conflicts(
    ck: &RunCheckpoint,
    generation: u64,
    flags: &HashMap<String, String>,
) -> Result<(), ResumeError> {
    fn check<T: std::str::FromStr + PartialEq + fmt::Display>(
        flags: &HashMap<String, String>,
        generation: u64,
        field: &'static str,
        checkpoint: T,
    ) -> Result<(), ResumeError> {
        let Some(flag) = flags.get(field) else { return Ok(()) };
        // Values are compared *parsed*, so `--threshold 0.40` does not
        // conflict with a stored 0.4. A flag value that does not parse
        // conflicts trivially (it cannot equal the checkpoint's).
        if flag.parse::<T>().is_ok_and(|v| v == checkpoint) {
            return Ok(());
        }
        Err(ResumeError::Conflict {
            generation,
            field,
            flag: flag.clone(),
            checkpoint: checkpoint.to_string(),
        })
    }
    check(flags, generation, "seed", ck.seed)?;
    check(flags, generation, "lines", ck.lines)?;
    check(flags, generation, "days", ck.days)?;
    check(flags, generation, "threshold", ck.threshold)?;
    check(flags, generation, "workers", ck.workers)?;
    check(flags, generation, "chunk-records", ck.chunk_records)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_core::checkpoint::LineEvidence;
    use haystack_net::{AnonId, HourBin};

    fn sample() -> RunCheckpoint {
        RunCheckpoint {
            seed: 42,
            lines: 3_000,
            days: 2,
            threshold: 0.4,
            workers: 4,
            chunk_records: 512,
            watermark: Watermark { day: 1, hour: 7, chunk: 13 },
            records_this_day: 99_001,
            done: false,
            emitted: vec![
                "day\tclass\tdetected_lines".to_string(),
                "0\tAlexa Enabled\t17".to_string(),
            ],
            shards: vec![
                DetectorState {
                    rules: vec![vec![LineEvidence {
                        line: AnonId(7),
                        mask: 0b101,
                        first_met: Some(HourBin(30)),
                    }]],
                },
                DetectorState { rules: vec![vec![]] },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let ck = sample();
        assert_eq!(RunCheckpoint::decode(&ck.encode()).unwrap(), ck);
    }

    fn sample_delta(base_generation: u64, hour: u32) -> RunDelta {
        use haystack_core::DetectorDelta;
        RunDelta {
            base_generation,
            watermark: Watermark { day: 1, hour, chunk: 2 },
            records_this_day: 123_456,
            done: false,
            emitted_new: vec![format!("1\tAlexa Enabled\t{hour}")],
            shards: vec![
                DetectorSnapshot::Delta(DetectorDelta {
                    rules: vec![vec![LineEvidence {
                        line: AnonId(7),
                        mask: 0b111,
                        first_met: Some(HourBin(30)),
                    }]],
                }),
                DetectorSnapshot::Delta(DetectorDelta {
                    rules: vec![vec![LineEvidence { line: AnonId(9), mask: 0b1, first_met: None }]],
                }),
            ],
        }
    }

    #[test]
    fn run_delta_round_trips_exactly() {
        let d = sample_delta(3, 8);
        assert_eq!(RunDelta::decode(&d.encode()).unwrap(), d);
    }

    #[test]
    fn delta_chain_replays_onto_the_full_base() {
        let dir = CheckpointDir::open(scratch("chain")).unwrap();
        let ck = sample();
        let g1 = dir.write(RunCheckpoint::PREFIX, &ck.encode()).unwrap();
        let d = sample_delta(g1, 8);
        let g2 = dir
            .write_delta(
                RunCheckpoint::PREFIX,
                &d.encode(),
                d.shards.iter().map(DetectorSnapshot::entry_count).sum::<usize>() as u64,
            )
            .unwrap();
        let (top, loaded) = load_resume_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(top, g2);
        assert_eq!(loaded.watermark, d.watermark);
        assert_eq!(loaded.records_this_day, 123_456);
        assert_eq!(loaded.emitted.len(), ck.emitted.len() + 1);
        // The dirty entry upserted line 7's mask and inserted line 9.
        assert_eq!(loaded.shards[0].rules[0][0].mask, 0b111);
        assert_eq!(loaded.shards[1].rules[0].len(), 1);
        // Config fields come from the full base.
        assert_eq!(loaded.seed, ck.seed);
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn corrupt_full_stops_the_chain_at_the_last_linked_generation() {
        let dir = CheckpointDir::open(scratch("chain-rot")).unwrap();
        let ck = sample();
        let g1 = dir.write(RunCheckpoint::PREFIX, &ck.encode()).unwrap();
        let d2 = sample_delta(g1, 8);
        let g2 = dir.write_delta(RunCheckpoint::PREFIX, &d2.encode(), 2).unwrap();
        // A newer full that rots on disk…
        let mut rotten = ck.encode();
        let mid = rotten.len() / 2;
        rotten[mid] ^= 0x20;
        let g3 = dir.write(RunCheckpoint::PREFIX, &rotten).unwrap();
        // …and a delta chained onto it, which therefore cannot link once
        // the full is skipped.
        let d4 = sample_delta(g3, 9);
        dir.write_delta(RunCheckpoint::PREFIX, &d4.encode(), 2).unwrap();
        let (top, loaded) = load_resume_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(top, g2, "resume stops at the last consistent frame");
        assert_eq!(loaded.watermark, d2.watermark);
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn skewed_delta_version_is_a_hard_error() {
        let dir = CheckpointDir::open(scratch("delta-skew")).unwrap();
        dir.write(RunCheckpoint::PREFIX, &sample().encode()).unwrap();
        let mut w = SnapWriter::new();
        w.put_u64(1);
        let future = seal(RunDelta::MAGIC, RunDelta::VERSION + 1, &w.into_bytes());
        let generation = dir.write_delta(RunCheckpoint::PREFIX, &future, 0).unwrap();
        match load_resume_checkpoint(&dir).unwrap_err() {
            ResumeError::VersionSkew { generation: g, found, .. } => {
                assert_eq!(g, generation);
                assert_eq!(found, RunDelta::VERSION + 1);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    fn scratch(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "haystack-resume-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    #[test]
    fn version_skew_is_a_hard_error_naming_the_generation() {
        let dir = CheckpointDir::open(scratch("skew")).unwrap();
        dir.write(RunCheckpoint::PREFIX, &sample().encode()).unwrap();
        // A frame from a "future" build: valid checksum, bumped version.
        let mut w = SnapWriter::new();
        w.put_u64(99);
        let future = seal(RunCheckpoint::MAGIC, RunCheckpoint::VERSION + 1, &w.into_bytes());
        let generation = dir.write(RunCheckpoint::PREFIX, &future).unwrap();
        let err = load_resume_checkpoint(&dir).unwrap_err();
        match err {
            ResumeError::VersionSkew { generation: g, found, expected } => {
                assert_eq!(g, generation);
                assert_eq!(found, RunCheckpoint::VERSION + 1);
                assert_eq!(expected, RunCheckpoint::VERSION);
            }
            other => panic!("expected VersionSkew, got {other:?}"),
        }
        let msg = load_resume_checkpoint(&dir).unwrap_err().to_string();
        assert!(msg.contains(&format!("generation {generation}")), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn bit_rot_still_falls_back_but_total_loss_names_the_generation() {
        let dir = CheckpointDir::open(scratch("rot")).unwrap();
        let ck = sample();
        let g0 = dir.write(RunCheckpoint::PREFIX, &ck.encode()).unwrap();
        let mut rotten = ck.encode();
        let mid = rotten.len() / 2;
        rotten[mid] ^= 0x20;
        let g1 = dir.write(RunCheckpoint::PREFIX, &rotten).unwrap();
        // Newest is rotten: fall back to the previous generation.
        let (generation, loaded) = load_resume_checkpoint(&dir).unwrap().unwrap();
        assert_eq!(generation, g0);
        assert_eq!(loaded, ck);
        // Rot the older one too: the error names the *newest* generation.
        let mut older = dir.read_generation(RunCheckpoint::PREFIX, g0).unwrap();
        older.truncate(older.len() / 2);
        std::fs::write(
            dir.root().join(format!("{}-{g0:08}.ckpt", RunCheckpoint::PREFIX)),
            older,
        )
        .unwrap();
        match load_resume_checkpoint(&dir).unwrap_err() {
            ResumeError::AllCorrupt { generation, .. } => assert_eq!(generation, g1),
            other => panic!("expected AllCorrupt, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn empty_directory_resumes_fresh() {
        let dir = CheckpointDir::open(scratch("empty")).unwrap();
        assert!(load_resume_checkpoint(&dir).unwrap().is_none());
        let _ = std::fs::remove_dir_all(dir.root());
    }

    #[test]
    fn explicit_flag_conflicts_name_field_and_generation() {
        let ck = sample();
        let mut flags = HashMap::new();
        // Absent flags defer to the checkpoint.
        flag_conflicts(&ck, 3, &flags).unwrap();
        // Matching explicit flags are fine, including re-formatted floats.
        flags.insert("lines".into(), "3000".into());
        flags.insert("threshold".into(), "0.40".into());
        flag_conflicts(&ck, 3, &flags).unwrap();
        // A disagreeing flag names the field, both values, the generation.
        flags.insert("lines".into(), "5000".into());
        let err = flag_conflicts(&ck, 3, &flags).unwrap_err();
        match &err {
            ResumeError::Conflict { generation, field, flag, checkpoint } => {
                assert_eq!(*generation, 3);
                assert_eq!(*field, "lines");
                assert_eq!(flag, "5000");
                assert_eq!(checkpoint, "3000");
            }
            other => panic!("expected Conflict, got {other:?}"),
        }
        let msg = err.to_string();
        assert!(msg.contains("--lines 5000"), "{msg}");
        assert!(msg.contains("generation 3"), "{msg}");
        assert!(msg.contains("3000"), "{msg}");
        // Unparseable values conflict rather than being ignored.
        flags.remove("lines");
        flags.insert("workers".into(), "many".into());
        assert!(flag_conflicts(&ck, 3, &flags).is_err());
    }

    #[test]
    fn corruption_is_rejected_not_panicking() {
        let frame = sample().encode();
        for cut in [0, 7, frame.len() / 2, frame.len() - 1] {
            assert!(RunCheckpoint::decode(&frame[..cut]).is_err(), "cut {cut}");
        }
        for i in (0..frame.len()).step_by(11) {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(RunCheckpoint::decode(&bad).is_err(), "flip at {i}");
        }
    }
}
