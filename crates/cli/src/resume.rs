//! The run-level checkpoint `haystack detect --checkpoint-dir` persists
//! (DESIGN.md §12).
//!
//! One [`RunCheckpoint`] frame captures everything a killed `detect` run
//! needs to continue byte-identically:
//!
//! * the **configuration** the run was started with — a resumed run uses
//!   the checkpointed config, so flag drift between invocations cannot
//!   silently change the stream being generated;
//! * the **watermark** (`day`, `hour`, `chunk`) of the next chunk to
//!   process — generation is deterministic and chunking-invariant, so
//!   the resumed run regenerates the watermark hour and skips the
//!   already-processed prefix;
//! * every stdout line **emitted** so far — re-printed on resume, so the
//!   concatenation rule is trivial: a resumed run's stdout equals an
//!   uninterrupted run's stdout, full stop (the `kill_resume`
//!   integration test diffs them byte for byte);
//! * the per-shard **detector states**, exported by the worker pool.
//!
//! The frame rides the `haystack-net` snapshot codec: versioned magic,
//! length header, FNV-1a checksum. A truncated or bit-flipped file is
//! rejected with a typed error and `CheckpointDir::load_latest` falls
//! back to the previous generation.

use haystack_core::DetectorState;
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};
use haystack_wild::Watermark;

/// Everything needed to resume an interrupted `haystack detect` run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunCheckpoint {
    /// `--seed` of the interrupted run.
    pub seed: u64,
    /// `--lines` of the interrupted run.
    pub lines: u32,
    /// `--days` of the interrupted run.
    pub days: u32,
    /// `--threshold` of the interrupted run.
    pub threshold: f64,
    /// `--workers` of the interrupted run (shard states are per-shard,
    /// so the resumed pool must match).
    pub workers: u32,
    /// Stream chunk size (watermark chunks are counted in this unit).
    pub chunk_records: u64,
    /// Next chunk to process.
    pub watermark: Watermark,
    /// Records already streamed in the watermark's day (the day-summary
    /// note continues from here).
    pub records_this_day: u64,
    /// Whether the run had already completed when this was written.
    pub done: bool,
    /// Stdout lines already printed, re-printed verbatim on resume.
    pub emitted: Vec<String>,
    /// Per-shard detector evidence as of the watermark.
    pub shards: Vec<DetectorState>,
}

impl RunCheckpoint {
    /// Frame magic of a run checkpoint.
    pub const MAGIC: &'static [u8; MAGIC_LEN] = b"HAYRUNC\0";
    /// Snapshot format version this build writes and reads.
    pub const VERSION: u32 = 1;
    /// File prefix inside the checkpoint directory.
    pub const PREFIX: &'static str = "run";

    /// Seal the checkpoint as one checksummed frame.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.seed);
        w.put_u32(self.lines);
        w.put_u32(self.days);
        w.put_f64_bits(self.threshold);
        w.put_u32(self.workers);
        w.put_u64(self.chunk_records);
        w.put_u32(self.watermark.day);
        w.put_u32(self.watermark.hour);
        w.put_u64(self.watermark.chunk);
        w.put_u64(self.records_this_day);
        w.put_u8(u8::from(self.done));
        w.put_u64(self.emitted.len() as u64);
        for line in &self.emitted {
            w.put_str(line);
        }
        w.put_u64(self.shards.len() as u64);
        for shard in &self.shards {
            w.put_bytes(&shard.encode());
        }
        seal(Self::MAGIC, Self::VERSION, &w.into_bytes())
    }

    /// Decode a frame produced by [`RunCheckpoint::encode`].
    pub fn decode(frame: &[u8]) -> Result<RunCheckpoint, SnapError> {
        let payload = open(Self::MAGIC, Self::VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let seed = r.u64()?;
        let lines = r.u32()?;
        let days = r.u32()?;
        let threshold = r.f64_bits()?;
        let workers = r.u32()?;
        let chunk_records = r.u64()?;
        let watermark = Watermark { day: r.u32()?, hour: r.u32()?, chunk: r.u64()? };
        let records_this_day = r.u64()?;
        let done = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(SnapError::Malformed("bad done flag")),
        };
        let n_emitted = r.count(4)?;
        let mut emitted = Vec::with_capacity(n_emitted);
        for _ in 0..n_emitted {
            let s = std::str::from_utf8(r.bytes()?)
                .map_err(|_| SnapError::Malformed("emitted line is not UTF-8"))?;
            emitted.push(s.to_string());
        }
        let n_shards = r.count(4)?;
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            shards.push(DetectorState::decode(r.bytes()?)?);
        }
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(RunCheckpoint { seed, lines, days, threshold, workers, chunk_records, watermark, records_this_day, done, emitted, shards })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_core::checkpoint::LineEvidence;
    use haystack_net::{AnonId, HourBin};

    fn sample() -> RunCheckpoint {
        RunCheckpoint {
            seed: 42,
            lines: 3_000,
            days: 2,
            threshold: 0.4,
            workers: 4,
            chunk_records: 512,
            watermark: Watermark { day: 1, hour: 7, chunk: 13 },
            records_this_day: 99_001,
            done: false,
            emitted: vec![
                "day\tclass\tdetected_lines".to_string(),
                "0\tAlexa Enabled\t17".to_string(),
            ],
            shards: vec![
                DetectorState {
                    rules: vec![vec![LineEvidence {
                        line: AnonId(7),
                        mask: 0b101,
                        first_met: Some(HourBin(30)),
                    }]],
                },
                DetectorState { rules: vec![vec![]] },
            ],
        }
    }

    #[test]
    fn round_trips_exactly() {
        let ck = sample();
        assert_eq!(RunCheckpoint::decode(&ck.encode()).unwrap(), ck);
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(sample().encode(), sample().encode());
    }

    #[test]
    fn corruption_is_rejected_not_panicking() {
        let frame = sample().encode();
        for cut in [0, 7, frame.len() / 2, frame.len() - 1] {
            assert!(RunCheckpoint::decode(&frame[..cut]).is_err(), "cut {cut}");
        }
        for i in (0..frame.len()).step_by(11) {
            let mut bad = frame.clone();
            bad[i] ^= 0x40;
            assert!(RunCheckpoint::decode(&bad).is_err(), "flip at {i}");
        }
    }
}
