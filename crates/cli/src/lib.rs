//! JSON persistence for rule sets, and the CLI's plumbing.
//!
//! An operator runs the §2–§4 pipeline once (it needs the testbeds), then
//! ships the resulting rules to collectors as a JSON document; collectors
//! only need the rules plus a passive-DNS feed to rebuild daily hitlists.
//! The format is versioned and intentionally dumb — one object per rule,
//! primitive types only — so non-Rust consumers can read it.

#![forbid(unsafe_code)]

use haystack_core::rules::{RuleDomain, RuleSet, RuleSetBuilder};
use haystack_dns::DomainName;
use haystack_testbed::catalog::DetectionLevel;
use serde_json::{json, Value};
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

pub mod resume;

/// Format version written into every document.
pub const FORMAT_VERSION: u32 = 1;

fn level_str(l: DetectionLevel) -> &'static str {
    match l {
        DetectionLevel::Platform => "platform",
        DetectionLevel::Manufacturer => "manufacturer",
        DetectionLevel::Product => "product",
    }
}

fn level_from(s: &str) -> Result<DetectionLevel, String> {
    match s {
        "platform" => Ok(DetectionLevel::Platform),
        "manufacturer" => Ok(DetectionLevel::Manufacturer),
        "product" => Ok(DetectionLevel::Product),
        other => Err(format!("unknown detection level {other:?}")),
    }
}

/// Serialize a rule set to the versioned JSON document.
pub fn rules_to_json(rules: &RuleSet) -> Value {
    json!({
        "format_version": FORMAT_VERSION,
        "rules": rules.rules.iter().map(|r| json!({
            "class": rules.class_name(r.class),
            "level": level_str(r.level),
            "parent": r.parent.map(|p| rules.class_name(p)),
            "domains": r.domains.iter().map(|d| json!({
                "name": d.name.as_str(),
                "ports": d.ports.iter().collect::<Vec<_>>(),
                "ips": d.ips.iter().map(|ip| ip.to_string()).collect::<Vec<_>>(),
                "usage_indicator": d.usage_indicator,
            })).collect::<Vec<_>>(),
        })).collect::<Vec<_>>(),
        "undetectable": rules.undetectable.iter().map(|(c, r)| json!({
            "class": rules.class_name(*c),
            "reason": format!("{r:?}"),
        })).collect::<Vec<_>>(),
    })
}

fn str_field<'a>(v: &'a Value, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

/// Deserialize a rule set. Class names are interned into the rule
/// set's own [`haystack_core::ClassTable`] in document order.
pub fn rules_from_json(doc: &Value) -> Result<RuleSet, String> {
    let version = doc
        .get("format_version")
        .and_then(Value::as_u64)
        .ok_or("missing format_version")?;
    if version != u64::from(FORMAT_VERSION) {
        return Err(format!("unsupported format version {version}"));
    }
    let mut b = RuleSetBuilder::new();
    let rules = doc.get("rules").and_then(Value::as_array).ok_or("missing rules array")?;
    for r in rules {
        let class = str_field(r, "class")?;
        let level = level_from(str_field(r, "level")?)?;
        let parent = match r.get("parent") {
            Some(Value::String(p)) => Some(p.as_str()),
            _ => None,
        };
        let mut domains = Vec::new();
        for d in r.get("domains").and_then(Value::as_array).ok_or("missing domains")? {
            let name = DomainName::parse(str_field(d, "name")?)
                .map_err(|e| format!("bad domain name: {e}"))?;
            let ports: BTreeSet<u16> = d
                .get("ports")
                .and_then(Value::as_array)
                .ok_or("missing ports")?
                .iter()
                .map(|p| {
                    p.as_u64()
                        .and_then(|v| u16::try_from(v).ok())
                        .ok_or_else(|| format!("bad port {p}"))
                })
                .collect::<Result<_, _>>()?;
            let ips: BTreeSet<Ipv4Addr> = d
                .get("ips")
                .and_then(Value::as_array)
                .ok_or("missing ips")?
                .iter()
                .map(|ip| {
                    ip.as_str()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| format!("bad ip {ip}"))
                })
                .collect::<Result<_, _>>()?;
            let usage_indicator =
                d.get("usage_indicator").and_then(Value::as_bool).unwrap_or(false);
            domains.push(RuleDomain { name, ports, ips, usage_indicator });
        }
        b.rule(class, level, parent, domains);
    }
    Ok(b.build())
}

pub mod log {
    //! Verbosity-gated stderr logging for the `haystack` binary.
    //!
    //! Progress notes go through [`note_args`] (the [`note!`] macro) and
    //! are silenced by `--quiet`, keeping machine-readable stdout/stderr
    //! clean; errors always print. Every message — emitted or suppressed
    //! — is tallied into the `cli` telemetry scope when telemetry is on,
    //! so `haystack metrics` accounts for its own chatter.
    //!
    //! [`note!`]: crate::note

    use haystack_core::telemetry;
    use std::fmt;
    use std::sync::atomic::{AtomicU8, Ordering};

    /// `--quiet`: progress notes are swallowed (errors still print).
    pub const QUIET: u8 = 0;
    /// Default: progress notes on stderr.
    pub const NORMAL: u8 = 1;

    static VERBOSITY: AtomicU8 = AtomicU8::new(NORMAL);

    /// Set the process-wide verbosity from the `--quiet` flag.
    pub fn set_quiet(quiet: bool) {
        VERBOSITY.store(if quiet { QUIET } else { NORMAL }, Ordering::Relaxed);
    }

    /// Whether progress notes are currently suppressed.
    pub fn is_quiet() -> bool {
        VERBOSITY.load(Ordering::Relaxed) == QUIET
    }

    fn count(name: &str) {
        // Handles are cheap no-ops unless telemetry is compiled in and
        // enabled; log volume is tens of lines, so no caching needed.
        if telemetry::enabled() {
            telemetry::global().scope("cli").counter(name).inc();
        }
    }

    /// A progress note: stderr unless `--quiet`, counted either way.
    pub fn note_args(args: fmt::Arguments<'_>) {
        if is_quiet() {
            count("notes_suppressed");
        } else {
            eprintln!("{args}");
            count("notes_emitted");
        }
    }

    /// An error: always stderr, `error:`-prefixed, never silenced.
    pub fn error_args(args: fmt::Arguments<'_>) {
        eprintln!("error: {args}");
        count("errors");
    }

    /// Unconditional bare stderr output (usage/help text).
    pub fn raw_args(args: fmt::Arguments<'_>) {
        eprintln!("{args}");
        count("raw_emitted");
    }
}

/// Print a progress note to stderr unless `--quiet` is in effect.
#[macro_export]
macro_rules! note {
    ($($arg:tt)*) => {
        $crate::log::note_args(format_args!($($arg)*))
    };
}

/// Print an `error:`-prefixed line to stderr (never silenced).
#[macro_export]
macro_rules! cli_error {
    ($($arg:tt)*) => {
        $crate::log::error_args(format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RuleSet {
        let mut b = RuleSetBuilder::new();
        b.rule(
            "Alexa Enabled",
            DetectionLevel::Platform,
            None,
            vec![RuleDomain {
                name: DomainName::parse("avs-alexa.amazon-iot.com").unwrap(),
                ports: [443u16].into_iter().collect(),
                ips: ["198.18.0.1".parse().unwrap(), "198.18.0.2".parse().unwrap()]
                    .into_iter()
                    .collect(),
                usage_indicator: false,
            }],
        );
        b.rule(
            "Amazon Product",
            DetectionLevel::Manufacturer,
            Some("Alexa Enabled"),
            vec![RuleDomain {
                name: DomainName::parse("d1.amazon-iot.com").unwrap(),
                ports: [443u16, 8883].into_iter().collect(),
                ips: ["198.18.0.9".parse().unwrap()].into_iter().collect(),
                usage_indicator: true,
            }],
        );
        b.build()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let rules = sample();
        let doc = rules_to_json(&rules);
        let loaded = rules_from_json(&doc).unwrap();
        assert_eq!(loaded.rules.len(), 2);
        for (a, b) in rules.rules.iter().zip(&loaded.rules) {
            assert_eq!(rules.class_name(a.class), loaded.class_name(b.class));
            assert_eq!(a.level, b.level);
            assert_eq!(a.parent, b.parent);
            assert_eq!(a.domains.len(), b.domains.len());
            for (da, db) in a.domains.iter().zip(&b.domains) {
                assert_eq!(da.name, db.name);
                assert_eq!(da.ports, db.ports);
                assert_eq!(da.ips, db.ips);
                assert_eq!(da.usage_indicator, db.usage_indicator);
            }
        }
    }

    #[test]
    fn version_mismatch_rejected() {
        let mut doc = rules_to_json(&sample());
        doc["format_version"] = json!(99);
        assert!(rules_from_json(&doc).unwrap_err().contains("version"));
    }

    #[test]
    fn malformed_documents_rejected() {
        assert!(rules_from_json(&json!({})).is_err());
        assert!(rules_from_json(&json!({"format_version": 1})).is_err());
        let mut doc = rules_to_json(&sample());
        doc["rules"][0]["domains"][0]["ips"][0] = json!("not-an-ip");
        assert!(rules_from_json(&doc).is_err());
        let mut doc = rules_to_json(&sample());
        doc["rules"][0]["level"] = json!("galaxy");
        assert!(rules_from_json(&doc).is_err());
    }
}
