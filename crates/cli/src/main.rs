//! `haystack` — the operator-facing command line.
//!
//! ```text
//! haystack rules    [--fast] [--seed N] [--out rules.json]
//! haystack inspect  --rules rules.json
//! haystack detect   --rules rules.json [--lines N] [--days D] [--threshold T] [--workers W]
//! haystack mitigate --rules rules.json --class NAME [--redirect IP]
//! haystack chaos    [--severity S] [--seed N] [--records N]
//! haystack metrics  [--rules rules.json] [--severity S] [--records N] [--json]
//! ```
//!
//! `rules` runs the full §2–§4 pipeline (it needs the testbeds) and
//! persists the detection rules; the other commands work from the JSON
//! document alone, the way a collector-side deployment would.
//!
//! `--quiet` silences progress notes on any command (errors still
//! print), keeping stdout machine-readable and stderr clean. All
//! progress/error output routes through [`haystack_cli::log`].

use haystack_cli::{cli_error, note, rules_from_json, rules_to_json};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::mitigation::{block_plan, Action};
use haystack_core::parallel::DetectorPool;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::telemetry;
use haystack_dns::DnsDb;
use haystack_net::DayBin;
use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::materialize::materialize;
use haystack_wild::{IspConfig, IspVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};
use std::collections::HashMap;
use std::process::exit;

fn usage() -> ! {
    haystack_cli::log::raw_args(format_args!(
        "usage:\n  haystack rules    [--fast] [--seed N] [--out FILE]\n  haystack inspect  --rules FILE\n  haystack detect   --rules FILE [--lines N] [--days D] [--threshold T] [--seed N] [--workers W]\n  haystack mitigate --rules FILE --class NAME [--redirect IP]\n  haystack capture  --out FILE [--hours N] [--seed N]\n  haystack replay   --trace FILE --rules FILE [--sampling N] [--threshold T]\n  haystack chaos    [--severity S] [--seed N] [--records N]\n  haystack metrics  [--rules FILE] [--severity S] [--seed N] [--records N] [--lines N] [--workers W] [--json]\nglobal flags:\n  --quiet           suppress progress notes (errors still print)"
    ));
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if matches!(key, "fast" | "quiet" | "json") {
                out.insert(key.to_string(), "true".into());
            } else {
                match it.next() {
                    Some(v) => {
                        out.insert(key.to_string(), v.clone());
                    }
                    None => usage(),
                }
            }
        } else {
            usage();
        }
    }
    out
}

fn load_rules(flags: &HashMap<String, String>) -> haystack_core::rules::RuleSet {
    let path = flags.get("rules").unwrap_or_else(|| usage());
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        cli_error!("cannot read {path}: {e}");
        exit(1);
    });
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        cli_error!("{path} is not JSON: {e}");
        exit(1);
    });
    rules_from_json(&doc).unwrap_or_else(|e| {
        cli_error!("{path}: {e}");
        exit(1);
    })
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                cli_error!("--{key} needs a number");
                exit(2);
            })
        })
        .unwrap_or(default)
}

fn cmd_rules(flags: HashMap<String, String>) {
    let seed: u64 = num(&flags, "seed", 42);
    let config = if flags.contains_key("fast") {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig { seed, ..Default::default() }
    };
    note!("running the ground-truth pipeline (this is the slow part) ...");
    let pipeline = Pipeline::run(config);
    let doc = rules_to_json(&pipeline.rules);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| {
                cli_error!("cannot write {path}: {e}");
                exit(1);
            });
            note!(
                "wrote {} rules ({} undetectable classes) to {path}",
                pipeline.rules.rules.len(),
                pipeline.rules.undetectable.len()
            );
        }
        None => println!("{text}"),
    }
}

fn cmd_inspect(flags: HashMap<String, String>) {
    let rules = load_rules(&flags);
    println!("class\tlevel\tparent\tdomains\tservice_ips\tusage_indicators");
    for r in &rules.rules {
        println!(
            "{}\t{:?}\t{}\t{}\t{}\t{}",
            r.class,
            r.level,
            r.parent.unwrap_or("-"),
            r.domains.len(),
            r.domains.iter().map(|d| d.ips.len()).sum::<usize>(),
            r.domains.iter().filter(|d| d.usage_indicator).count(),
        );
    }
}

fn cmd_detect(flags: HashMap<String, String>) {
    let rules = load_rules(&flags);
    let lines: u32 = num(&flags, "lines", 20_000);
    let days: u32 = num(&flags, "days", 1);
    let threshold: f64 = num(&flags, "threshold", 0.4);
    let seed: u64 = num(&flags, "seed", 42);
    let workers: usize = num(&flags, "workers", 4);
    if workers == 0 {
        cli_error!("--workers must be at least 1");
        exit(2);
    }

    note!("building the simulated ISP ({lines} lines) ...");
    let catalog = standard_catalog();
    let world = materialize(&catalog);
    let isp = IspVantage::new(
        &catalog,
        IspConfig { lines, sampling: 1_000, seed, background: false },
    );
    // Hours stream chunk-by-chunk into the persistent worker pool — the
    // hour is never materialized, and detection state is sharded by line.
    let mut pool = DetectorPool::new(
        &rules,
        &HitList::whole_window(&rules),
        DetectorConfig { threshold, require_established: false },
        workers,
    );
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    println!("day\tclass\tdetected_lines");
    for day in 0..days {
        pool.reset();
        let mut records = 0u64;
        for hour in DayBin(day).hours() {
            let mut stream = isp.stream_hour(&world, hour, DEFAULT_CHUNK_RECORDS);
            let (recs, _packets, _degradation) = pool.observe_stream(&mut *stream, &mut chunk);
            records += recs;
        }
        pool.finish();
        note!("day {day}: {records} records streamed through {workers} workers");
        for rule in &rules.rules {
            println!("{day}\t{}\t{}", rule.class, pool.detected_lines(rule.class).len());
        }
    }
}

fn cmd_mitigate(flags: HashMap<String, String>) {
    let rules = load_rules(&flags);
    let class = flags.get("class").unwrap_or_else(|| usage());
    let class: &'static str = Box::leak(class.clone().into_boxed_str());
    let action = match flags.get("redirect") {
        Some(ip) => Action::Redirect(ip.parse().unwrap_or_else(|_| {
            cli_error!("--redirect needs an IPv4 address");
            exit(2);
        })),
        None => Action::Block,
    };
    // Collector-side mitigations work from the rules' IP unions when no
    // passive-DNS feed is wired in.
    match block_plan(&rules, &DnsDb::new(), class, DayBin(0), action) {
        Some(plan) => {
            println!("# {:?} plan for {class} ({} targets)", plan.action, plan.targets.len());
            for (ip, port) in &plan.targets {
                println!("{ip}\t{port}");
            }
        }
        None => {
            cli_error!("no rule for class {class:?} (try `haystack inspect`)");
            exit(1);
        }
    }
}

fn cmd_capture(flags: HashMap<String, String>) {
    use haystack_testbed::capture::write_trace;
    use haystack_testbed::ExperimentDriver;
    let out = flags.get("out").unwrap_or_else(|| usage());
    let hours: u32 = num(&flags, "hours", 6);
    let seed: u64 = num(&flags, "seed", 42);
    let driver = ExperimentDriver::new(standard_catalog(), seed);
    let world = materialize(driver.catalog());
    let mut packets = Vec::new();
    note!("capturing {hours} h of the idle experiment at the Home-VP ...");
    for hour in haystack_net::StudyWindow::IDLE_GT.hour_bins().take(hours as usize) {
        packets.extend(driver.generate_hour(&world, hour));
    }
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        cli_error!("cannot create {out}: {e}");
        exit(1);
    });
    write_trace(std::io::BufWriter::new(file), &packets).unwrap_or_else(|e| {
        cli_error!("write failed: {e}");
        exit(1);
    });
    note!("wrote {} packets to {out}", packets.len());
}

fn cmd_replay(flags: HashMap<String, String>) {
    use haystack_flow::sampling::{PacketSampler, SystematicSampler};
    use haystack_testbed::capture::read_trace;
    let rules = load_rules(&flags);
    let trace_path = flags.get("trace").unwrap_or_else(|| usage());
    let sampling: u64 = num(&flags, "sampling", 1_000);
    let threshold: f64 = num(&flags, "threshold", 0.4);
    let file = std::fs::File::open(trace_path).unwrap_or_else(|e| {
        cli_error!("cannot open {trace_path}: {e}");
        exit(1);
    });
    let packets = read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        cli_error!("{trace_path}: {e}");
        exit(1);
    });
    let mut sampler = SystematicSampler::new(sampling, 3).unwrap_or_else(|e| {
        cli_error!("{e}");
        exit(1);
    });
    let mut det = Detector::new(
        &rules,
        HitList::whole_window(&rules),
        DetectorConfig { threshold, require_established: false },
    );
    let line = haystack_net::AnonId(1);
    let mut kept = 0u64;
    for g in &packets {
        if sampler.sample() {
            kept += 1;
            det.observe(
                line,
                g.packet.dst,
                g.packet.dport,
                g.packet.proto,
                g.packet.flags.is_established_evidence(),
                g.packet.ts.hour(),
            );
        }
    }
    note!("{} packets replayed, {kept} sampled (1/{sampling})", packets.len());
    println!("class\tdetected");
    for (ri, rule) in rules.rules.iter().enumerate() {
        println!("{}\t{}", rule.class, det.is_detected_rule(line, ri as u16));
    }
}

/// Deterministic synthetic flow records shared by `chaos` and `metrics`.
fn synthetic_flow_records(n_records: usize, seed: u64) -> Vec<haystack_flow::FlowRecord> {
    use haystack_flow::{FlowKey, FlowRecord, TcpFlags};
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    (0..n_records)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            FlowRecord {
                key: FlowKey {
                    src: std::net::Ipv4Addr::new(100, 64, (x >> 8) as u8, x as u8),
                    dst: std::net::Ipv4Addr::new(198, 18, 0, (x >> 16) as u8),
                    sport: 40_000 + (i % 1_000) as u16,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 1 + (x % 5),
                bytes: 60 * (1 + (x % 5)),
                tcp_flags: TcpFlags::ACK,
                first: SimTime(i as u64),
                last: SimTime(i as u64 + 30),
            }
        })
        .collect()
}

/// Push one synthetic hour through Exporter → ChaosLink → Collector at
/// the given severity and print what survived — a quick operator-facing
/// smoke test of the collector's fault tolerance (DESIGN.md, "Fault
/// model"). `haystack chaos --severity 0` must report a lossless path.
fn cmd_chaos(flags: HashMap<String, String>) {
    use haystack_flow::export::{ExportProtocol, Exporter};
    use haystack_flow::{ChaosConfig, ChaosLink, Collector};

    let seed: u64 = num(&flags, "seed", 42);
    let n_records: usize = num(&flags, "records", 10_000);
    let severities: Vec<f64> = match flags.get("severity") {
        Some(v) => match v.parse::<f64>() {
            Ok(s) if (0.0..=1.0).contains(&s) => vec![s],
            _ => {
                cli_error!("--severity needs a number in [0, 1]");
                exit(2);
            }
        },
        None => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let records = synthetic_flow_records(n_records, seed);
    println!(
        "severity\tsent\tdelivered\tdecoded\tdecode_rate\tmissed_dg\trestarts\tmalformed\tquarantined"
    );
    for &severity in &severities {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
        let mut link = ChaosLink::new(ChaosConfig::at_severity(severity, seed));
        let mut collector = Collector::new();
        let mut decoded = 0usize;
        for (hour, chunk) in records.chunks(512).enumerate() {
            let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
            for d in link.transmit_all(msgs) {
                decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
            }
        }
        for d in link.shutdown() {
            decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
        }
        let s = link.stats();
        println!(
            "{severity:.2}\t{}\t{}\t{decoded}\t{:.3}\t{}\t{}\t{}\t{}",
            s.sent,
            s.delivered,
            if records.is_empty() { 1.0 } else { decoded as f64 / records.len() as f64 },
            collector.missed_datagrams(),
            collector.restarts_detected(),
            collector.malformed_messages() + collector.malformed_sets(),
            collector.quarantined_sources().len(),
        );
        if severity == 0.0 && decoded != records.len() {
            cli_error!("clean link lost records ({decoded}/{})", records.len());
            exit(1);
        }
    }
}

/// Run an instrumented slice of the pipeline and print the telemetry
/// snapshot — Prometheus text exposition by default, the structured
/// JSON document with `--json` (DESIGN.md §11).
///
/// The wire stage (Exporter → ChaosLink → Collector) always runs; the
/// detect stage (simulated ISP hour → instrumented stream → sharded
/// detector pool) runs when `--rules` is given.
fn cmd_metrics(flags: HashMap<String, String>) {
    use haystack_core::telemetry::{observe_collector, observe_hitlist, InstrumentedStream};
    use haystack_flow::export::{ExportProtocol, Exporter};
    use haystack_flow::{ChaosConfig, ChaosLink, Collector};

    telemetry::set_enabled(true);
    let seed: u64 = num(&flags, "seed", 42);
    let severity: f64 = num(&flags, "severity", 0.25);
    let n_records: usize = num(&flags, "records", 10_000);
    if !(0.0..=1.0).contains(&severity) {
        cli_error!("--severity needs a number in [0, 1]");
        exit(2);
    }

    note!("wire stage: {n_records} records through a severity-{severity:.2} link ...");
    let records = synthetic_flow_records(n_records, seed);
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
    let mut link = ChaosLink::new(ChaosConfig::at_severity(severity, seed));
    let mut collector = Collector::new();
    let wire = telemetry::Scope::named("wire");
    let mut decoded = 0u64;
    for (hour, chunk) in records.chunks(512).enumerate() {
        let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
        for d in link.transmit_all(msgs) {
            decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len()) as u64;
        }
    }
    for d in link.shutdown() {
        decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len()) as u64;
    }
    let s = link.stats();
    wire.counter("records_sent").add(records.len() as u64);
    wire.counter("records_decoded").add(decoded);
    wire.gauge("datagrams_sent").set(s.sent);
    wire.gauge("datagrams_delivered").set(s.delivered);
    wire.gauge("datagrams_dropped").set(s.dropped);
    observe_collector(&telemetry::Scope::named("collector"), &collector);

    if flags.contains_key("rules") {
        let rules = load_rules(&flags);
        let lines: u32 = num(&flags, "lines", 2_000);
        let workers: usize = num(&flags, "workers", 2);
        if workers == 0 {
            cli_error!("--workers must be at least 1");
            exit(2);
        }
        note!("detect stage: simulated ISP hour over {lines} lines, {workers} workers ...");
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let isp = IspVantage::new(
            &catalog,
            IspConfig { lines, sampling: 1_000, seed, background: false },
        );
        let hitlist = HitList::whole_window(&rules);
        observe_hitlist(&telemetry::Scope::named("hitlist"), &hitlist);
        let mut pool = DetectorPool::new(
            &rules,
            &hitlist,
            DetectorConfig { threshold: 0.4, require_established: false },
            workers,
        );
        pool.attach_telemetry(&telemetry::Scope::named("pool"));
        let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
        let hour = DayBin(0).hours().next().expect("a day has hours");
        let mut stream = InstrumentedStream::new(
            isp.stream_hour(&world, hour, DEFAULT_CHUNK_RECORDS),
            &telemetry::Scope::named("stream"),
        );
        pool.observe_stream(&mut stream, &mut chunk);
        pool.finish();
    }

    let snap = telemetry::global().snapshot();
    if flags.contains_key("json") {
        println!("{}", serde_json::to_string_pretty(&snap.to_json()).expect("serializable"));
    } else {
        print!("{}", snap.to_prometheus());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    let flags = parse_flags(rest);
    haystack_cli::log::set_quiet(flags.contains_key("quiet"));
    match cmd.as_str() {
        "rules" => cmd_rules(flags),
        "inspect" => cmd_inspect(flags),
        "detect" => cmd_detect(flags),
        "mitigate" => cmd_mitigate(flags),
        "capture" => cmd_capture(flags),
        "replay" => cmd_replay(flags),
        "chaos" => cmd_chaos(flags),
        "metrics" => cmd_metrics(flags),
        _ => usage(),
    }
}
