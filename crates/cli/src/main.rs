//! `haystack` — the operator-facing command line.
//!
//! ```text
//! haystack rules    [--fast] [--seed N] [--out rules.json]
//! haystack inspect  --rules rules.json
//! haystack detect   --rules rules.json [--lines N] [--days D] [--threshold T] [--workers W]
//! haystack mitigate --rules rules.json --class NAME [--redirect IP]
//! haystack chaos    [--severity S] [--seed N] [--records N]
//! haystack metrics  [--rules rules.json] [--severity S] [--records N] [--json]
//! ```
//!
//! `rules` runs the full §2–§4 pipeline (it needs the testbeds) and
//! persists the detection rules; the other commands work from the JSON
//! document alone, the way a collector-side deployment would.
//!
//! `--quiet` silences progress notes on any command (errors still
//! print), keeping stdout machine-readable and stderr clean. All
//! progress/error output routes through [`haystack_cli::log`].

mod serve;
mod sig;
mod soak;

use haystack_cli::resume::{flag_conflicts, load_resume_checkpoint, RunCheckpoint, RunDelta};
use haystack_cli::{cli_error, note, rules_from_json, rules_to_json};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::mitigation::{block_plan, Action};
use haystack_core::pack::SignaturePack;
use haystack_core::parallel::{DetectorPool, ShardBackend};
use haystack_core::procpool::{ProcPool, ProcPoolOptions};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::telemetry;
use haystack_core::CheckpointDir;
use haystack_dns::DnsDb;
use haystack_net::DayBin;
use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::materialize::materialize;
use haystack_wild::{
    skip_chunks, IspConfig, IspVantage, RecordChunk, VantagePoint, Watermark,
    DEFAULT_CHUNK_RECORDS,
};
use std::collections::HashMap;
use std::process::exit;

/// Exit with a checkpoint I/O or decode error.
fn pool_fatal_ck<T>(r: Result<T, haystack_core::CheckpointError>) -> T {
    r.unwrap_or_else(|e| {
        cli_error!("checkpoint: {e}");
        exit(1);
    })
}

fn usage() -> ! {
    haystack_cli::log::raw_args(format_args!(
        "usage:\n  haystack rules    [--fast] [--seed N] [--out FILE]\n  haystack rules export [--rules FILE] [--threshold T] [--comment TEXT] --out PACK\n  haystack rules show   --pack PACK\n  haystack rules lint   --pack PACK\n  haystack inspect  --rules FILE\n  haystack detect   [--rules FILE|PACK] [--lines N] [--days D] [--threshold T] [--seed N] [--workers W]\n                    [--checkpoint-dir DIR] [--resume] [--checkpoint-chunks N] [--events FILE]\n                    [--isolate thread|process] [--chaos]\n  haystack serve    [--rules FILE|PACK] [--udp-port N] [--tcp-port N] [--http-port N] [--host IP]\n                    [--workers W] [--threshold T] [--seed N] [--queue-capacity N]\n                    [--checkpoint-dir DIR] [--resume] [--checkpoint-secs N]\n                    [--ports-file FILE] [--watchdog-ms N] [--watchdog-timeout-ms N] [--chaos]\n                    [--isolate thread|process]\n  haystack send     --port N [--host IP] [--mode tcp|udp] [--rules FILE] [--lines N]\n                    [--records N] [--packets N] [--seed N] [--source N] [--hour N]\n                    [--malformed N] [--repeat N]\n  haystack soak     [--rules FILE|PACK] [--lines N] [--hours N] [--records-per-hour N]\n                    [--hit-rate-ppm N] [--threshold T] [--seed N] [--workers W]\n                    [--checkpoint-dir DIR] [--resume] [--checkpoint-chunks N]\n                    [--mem-ceiling-mb N] [--out FILE] [--events FILE] [--report FILE]\n                    [--isolate thread|process] [--chaos]\n  haystack mitigate --rules FILE --class NAME [--redirect IP]\n  haystack capture  --out FILE [--hours N] [--seed N]\n  haystack replay   --trace FILE --rules FILE [--sampling N] [--threshold T]\n  haystack chaos    [--severity S] [--seed N] [--records N]\n  haystack metrics  [--rules FILE] [--severity S] [--seed N] [--records N] [--lines N] [--workers W] [--json]\nnotes:\n  --rules accepts a JSON rules file or a binary signature pack (HAYPACK frame);\n  when omitted, the compiled-in default rule set is generated (fast pipeline, seed 42);\n  --isolate process runs each detector shard as a supervised `haystack shard-worker`\n  child process (crash-isolated; see DESIGN.md \u{00a7}15) instead of an in-process thread\nglobal flags:\n  --quiet           suppress progress notes (errors still print)"
    ));
    exit(2);
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut out = HashMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(key) = a.strip_prefix("--") {
            if matches!(key, "fast" | "quiet" | "json" | "resume" | "chaos") {
                out.insert(key.to_string(), "true".into());
            } else {
                match it.next() {
                    Some(v) => {
                        out.insert(key.to_string(), v.clone());
                    }
                    None => usage(),
                }
            }
        } else {
            usage();
        }
    }
    out
}

/// Provenance string of the compiled-in default rule set — the pack
/// `haystack rules export` writes when no `--rules` file is given.
const DEFAULT_PACK_SOURCE: &str = "generate(fast,seed=42)";

/// The compiled-in default rule set: the deterministic fast pipeline at
/// seed 42. `haystack rules export` (no `--rules`) packs exactly this,
/// so `detect --rules <that pack>` is byte-identical to `detect` with
/// no `--rules` at all.
fn default_rules() -> haystack_core::rules::RuleSet {
    note!("no --rules: generating the compiled-in default rule set (fast pipeline, seed 42) ...");
    Pipeline::run(PipelineConfig::fast(42)).rules.as_ref().clone()
}

/// Load `--rules` from a JSON rules file *or* a binary signature pack
/// (sniffed by frame magic); absent the flag, generate the compiled-in
/// default. Returns the pack too when one was loaded, so callers can
/// pick up its threshold and provenance.
fn load_rules_full(
    flags: &HashMap<String, String>,
) -> (haystack_core::rules::RuleSet, Option<SignaturePack>) {
    let Some(path) = flags.get("rules") else {
        return (default_rules(), None);
    };
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        cli_error!("cannot read {path}: {e}");
        exit(1);
    });
    if SignaturePack::sniff(&bytes) {
        let pack = SignaturePack::load(&bytes).unwrap_or_else(|e| {
            cli_error!("{path}: {e}");
            exit(1);
        });
        return (pack.rules.clone(), Some(pack));
    }
    let text = String::from_utf8(bytes).unwrap_or_else(|_| {
        cli_error!("{path} is neither a signature pack nor UTF-8 JSON");
        exit(1);
    });
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        cli_error!("{path} is not JSON: {e}");
        exit(1);
    });
    let rules = rules_from_json(&doc).unwrap_or_else(|e| {
        cli_error!("{path}: {e}");
        exit(1);
    });
    (rules, None)
}

fn load_rules(flags: &HashMap<String, String>) -> haystack_core::rules::RuleSet {
    load_rules_full(flags).0
}

/// Which shard backend `--isolate` selects (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isolate {
    /// In-process worker threads (the default).
    Thread,
    /// One `haystack shard-worker` child process per shard.
    Process,
}

impl Isolate {
    fn label(self) -> &'static str {
        match self {
            Isolate::Thread => "thread",
            Isolate::Process => "process",
        }
    }
}

fn parse_isolate(flags: &HashMap<String, String>) -> Isolate {
    match flags.get("isolate").map(String::as_str) {
        None | Some("thread") => Isolate::Thread,
        Some("process") => Isolate::Process,
        Some(other) => {
            cli_error!("--isolate needs `thread` or `process`, not {other:?}");
            exit(2);
        }
    }
}

/// Build the shard backend `--isolate` asked for. Both backends derive
/// the whole-window hitlist from the rules, so their detections are
/// byte-identical; only the failure domain differs.
fn build_backend(
    rules: &haystack_core::rules::RuleSet,
    config: DetectorConfig,
    workers: usize,
    isolate: Isolate,
) -> Box<dyn ShardBackend> {
    match isolate {
        Isolate::Thread => Box::new(DetectorPool::new(
            rules,
            &HitList::whole_window(rules),
            config,
            workers,
        )),
        Isolate::Process => match ProcPool::new(rules, config, workers, ProcPoolOptions::default())
        {
            Ok(pool) => Box::new(pool),
            Err(e) => {
                cli_error!("spawning shard workers: {e}");
                exit(1);
            }
        },
    }
}

/// `--chaos` on `detect`/`soak`: ungracefully kill one shard every this
/// many chunks, cycling through the shards. The schedule is a pure
/// function of the chunk count, so a chaos run is reproducible and its
/// outputs must still match an undisturbed run byte-for-byte.
const CHAOS_KILL_EVERY: u64 = 40;

/// Apply the deterministic chaos kill schedule at chunk `tick`.
fn chaos_tick(pool: &mut dyn ShardBackend, tick: u64) {
    if tick == 0 || tick % CHAOS_KILL_EVERY != 0 {
        return;
    }
    let shard = ((tick / CHAOS_KILL_EVERY - 1) % pool.workers() as u64) as usize;
    note!("chaos: killing shard {shard} at chunk {tick}");
    if let Err(e) = pool.kill_shard(shard) {
        note!("chaos: kill of shard {shard} reported: {e}");
    }
}

fn num<T: std::str::FromStr>(flags: &HashMap<String, String>, key: &str, default: T) -> T {
    flags
        .get(key)
        .map(|v| {
            v.parse().unwrap_or_else(|_| {
                cli_error!("--{key} needs a number");
                exit(2);
            })
        })
        .unwrap_or(default)
}

fn cmd_rules(flags: HashMap<String, String>) {
    let seed: u64 = num(&flags, "seed", 42);
    let config = if flags.contains_key("fast") {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig { seed, ..Default::default() }
    };
    note!("running the ground-truth pipeline (this is the slow part) ...");
    let pipeline = Pipeline::run(config);
    let doc = rules_to_json(&pipeline.rules);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, text).unwrap_or_else(|e| {
                cli_error!("cannot write {path}: {e}");
                exit(1);
            });
            note!(
                "wrote {} rules ({} undetectable classes) to {path}",
                pipeline.rules.rules.len(),
                pipeline.rules.undetectable.len()
            );
        }
        None => println!("{text}"),
    }
}

/// `haystack rules export`: seal a rule set (from `--rules`, or the
/// compiled-in default) as a versioned, checksummed signature pack.
/// The encoding is deterministic, so exporting the default twice gives
/// byte-identical packs, and `export → load → export` is a fixpoint.
fn cmd_rules_export(flags: HashMap<String, String>) {
    let (rules, loaded) = load_rules_full(&flags);
    let threshold: f64 = num(
        &flags,
        "threshold",
        loaded.as_ref().map(|p| p.threshold).unwrap_or(0.4),
    );
    let source = match &loaded {
        Some(p) => p.source.clone(),
        None if flags.contains_key("rules") => "haystack rules export --rules".to_string(),
        None => DEFAULT_PACK_SOURCE.to_string(),
    };
    let comment = flags.get("comment").cloned().unwrap_or_default();
    let pack = SignaturePack { rules, threshold, source, comment };
    let defects = pack.lint();
    if !defects.is_empty() {
        for d in &defects {
            cli_error!("lint: {d}");
        }
        exit(1);
    }
    let bytes = pack.encode();
    let out = flags.get("out").unwrap_or_else(|| usage());
    std::fs::write(out, &bytes).unwrap_or_else(|e| {
        cli_error!("cannot write {out}: {e}");
        exit(1);
    });
    note!(
        "wrote signature pack v{} ({} classes, {} rules, {} undetectable, {} bytes) to {out}",
        SignaturePack::VERSION,
        pack.rules.classes.len(),
        pack.rules.rules.len(),
        pack.rules.undetectable.len(),
        bytes.len()
    );
}

/// Read `--pack`, tolerating semantic defects (lint reports them) but
/// not codec-level corruption.
fn read_pack(flags: &HashMap<String, String>) -> (String, SignaturePack) {
    let path = flags.get("pack").unwrap_or_else(|| usage());
    let bytes = std::fs::read(path).unwrap_or_else(|e| {
        cli_error!("cannot read {path}: {e}");
        exit(1);
    });
    let pack = SignaturePack::decode(&bytes).unwrap_or_else(|e| {
        cli_error!("{path}: signature pack unreadable: {e}");
        exit(1);
    });
    (path.clone(), pack)
}

/// `haystack rules show`: human-readable pack summary (provenance plus
/// the `inspect` table), with lint defects appended if any.
fn cmd_rules_show(flags: HashMap<String, String>) {
    let (_, pack) = read_pack(&flags);
    println!("format\tHAYPACK v{}", SignaturePack::VERSION);
    println!("threshold\t{}", pack.threshold);
    println!("source\t{}", pack.source);
    println!("comment\t{}", pack.comment);
    println!("classes\t{}", pack.rules.classes.len());
    println!();
    println!("class\tlevel\tparent\tdomains\tservice_ips\tusage_indicators");
    let rules = &pack.rules;
    for r in &rules.rules {
        println!(
            "{}\t{:?}\t{}\t{}\t{}\t{}",
            rules.class_name(r.class),
            r.level,
            r.parent.map(|p| rules.class_name(p)).unwrap_or("-"),
            r.domains.len(),
            r.domains.iter().map(|d| d.ips.len()).sum::<usize>(),
            r.domains.iter().filter(|d| d.usage_indicator).count(),
        );
    }
    for (class, reason) in &rules.undetectable {
        println!("{}\tundetectable\t{reason:?}\t-\t-\t-", rules.class_name(*class));
    }
    let defects = pack.lint();
    if !defects.is_empty() {
        println!();
        for d in &defects {
            println!("lint\t{d}");
        }
    }
}

/// `haystack rules lint`: exit 0 on a clean pack, exit 1 with one line
/// per defect (naming the offending class/domain/field) otherwise.
fn cmd_rules_lint(flags: HashMap<String, String>) {
    let (path, pack) = read_pack(&flags);
    let defects = pack.lint();
    if defects.is_empty() {
        println!(
            "ok: {} classes, {} rules, {} undetectable, threshold {}",
            pack.rules.classes.len(),
            pack.rules.rules.len(),
            pack.rules.undetectable.len(),
            pack.threshold
        );
        return;
    }
    for d in &defects {
        println!("{path}: {d}");
    }
    exit(1);
}

fn cmd_inspect(flags: HashMap<String, String>) {
    let rules = load_rules(&flags);
    println!("class\tlevel\tparent\tdomains\tservice_ips\tusage_indicators");
    for r in &rules.rules {
        println!(
            "{}\t{:?}\t{}\t{}\t{}\t{}",
            rules.class_name(r.class),
            r.level,
            r.parent.map(|p| rules.class_name(p)).unwrap_or("-"),
            r.domains.len(),
            r.domains.iter().map(|d| d.ips.len()).sum::<usize>(),
            r.domains.iter().filter(|d| d.usage_indicator).count(),
        );
    }
}

/// Exit with the pool error — a shard died and (without supervision or
/// after repeated deaths) could not be healed.
fn pool_fatal<T>(r: Result<T, haystack_core::PoolError>) -> T {
    r.unwrap_or_else(|e| {
        cli_error!("{e}");
        exit(1);
    })
}

fn cmd_detect(flags: HashMap<String, String>) {
    let (rules, pack) = load_rules_full(&flags);
    let ckpt_dir = flags.get("checkpoint-dir").map(|d| {
        pool_fatal_ck(CheckpointDir::open(d))
    });
    let resume = flags.contains_key("resume");
    if resume && ckpt_dir.is_none() {
        cli_error!("--resume needs --checkpoint-dir");
        exit(2);
    }
    let checkpoint_chunks: u64 = num(&flags, "checkpoint-chunks", 0);

    // A resumed run takes its configuration from the checkpoint — flag
    // drift between invocations cannot silently change the stream. An
    // *explicitly* conflicting flag, a version-skewed frame, or a fully
    // corrupt directory each fail with a message naming the generation
    // (and field) at fault, not a generic codec error.
    let loaded: Option<RunCheckpoint> = if resume {
        let dir = ckpt_dir.as_ref().expect("checked above");
        match load_resume_checkpoint(dir) {
            Ok(Some((generation, ck))) => {
                if let Err(e) = flag_conflicts(&ck, generation, &flags) {
                    cli_error!("resume: {e}");
                    exit(1);
                }
                note!(
                    "resuming from checkpoint generation {generation} at day {} hour {} chunk {}",
                    ck.watermark.day,
                    ck.watermark.hour,
                    ck.watermark.chunk
                );
                Some(ck)
            }
            Ok(None) => {
                note!("no checkpoint found; starting fresh");
                None
            }
            Err(e) => {
                cli_error!("resume: {e}");
                exit(1);
            }
        }
    } else {
        None
    };

    let (lines, days, threshold, seed, workers, chunk_records) = match &loaded {
        Some(ck) => (
            ck.lines,
            ck.days,
            ck.threshold,
            ck.seed,
            ck.workers as usize,
            ck.chunk_records as usize,
        ),
        None => {
            let workers: usize = num(&flags, "workers", 4);
            if workers == 0 {
                cli_error!("--workers must be at least 1");
                exit(2);
            }
            (
                num(&flags, "lines", 20_000),
                num(&flags, "days", 1),
                // A loaded pack carries the threshold `D` it was
                // generated for; an explicit --threshold still wins.
                num(
                    &flags,
                    "threshold",
                    pack.as_ref().map(|p| p.threshold).unwrap_or(0.4),
                ),
                num(&flags, "seed", 42),
                workers,
                DEFAULT_CHUNK_RECORDS,
            )
        }
    };

    note!("building the simulated ISP ({lines} lines) ...");
    let catalog = standard_catalog();
    let world = materialize(&catalog);
    let isp = IspVantage::new(
        &catalog,
        IspConfig { lines, sampling: 1_000, seed, background: false },
    );
    // Hours stream chunk-by-chunk into the persistent worker pool — the
    // hour is never materialized, and detection state is sharded by line.
    let isolate = parse_isolate(&flags);
    let chaos = flags.contains_key("chaos");
    let mut pool = build_backend(
        &rules,
        DetectorConfig { threshold, require_established: false },
        workers,
        isolate,
    );
    if ckpt_dir.is_some() || isolate == Isolate::Process || chaos {
        // Checkpointed runs are also supervised: a shard panic is healed
        // from the pool's in-memory shard checkpoints instead of killing
        // the run. They drain on SIGTERM too — checkpoint at the current
        // watermark, exit 0 — so an orchestrator's stop is never a crash.
        // Process isolation and chaos both imply supervision — losing a
        // child (or killing one on purpose) must never lose evidence.
        pool_fatal(pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT));
    }
    if ckpt_dir.is_some() {
        sig::install();
    }

    // `emit` lines are the run's replayable stdout: checkpointed
    // verbatim, re-printed on resume, so a resumed run's stdout is
    // byte-identical to an uninterrupted one.
    let mut emitted: Vec<String> = Vec::new();
    let mut wm = Watermark::start();
    let mut records_this_day = 0u64;
    match &loaded {
        Some(ck) => {
            if ck.done {
                note!("checkpointed run already complete; re-printing its output");
            }
            for line in &ck.emitted {
                println!("{line}");
            }
            emitted = ck.emitted.clone();
            wm = ck.watermark;
            records_this_day = ck.records_this_day;
            pool_fatal(pool.restore_shard_states(&ck.shards));
            if ck.done {
                return;
            }
        }
        None => {
            let header = "day\tclass\tdetected_lines".to_string();
            println!("{header}");
            emitted.push(header);
        }
    }

    // `--events FILE`: the NDJSON detection-event stream, derived from
    // shard states at each day boundary (evidence resets there). Fresh
    // runs truncate. Resumed runs rewrite the file keeping only the
    // days the watermark proves complete, then append — a crash can
    // land between a day's event append and its day-roll checkpoint,
    // and re-deriving that day on resume must not duplicate it.
    let mut events_file = flags.get("events").map(|path| {
        use std::io::Write;
        let kept: String = if loaded.is_some() {
            std::fs::read_to_string(path)
                .unwrap_or_default()
                .lines()
                .filter(|l| {
                    l.strip_prefix("{\"day\":")
                        .and_then(|rest| rest.split(',').next())
                        .and_then(|n| n.parse::<u32>().ok())
                        .is_some_and(|d| d < wm.day)
                })
                .fold(String::new(), |mut acc, l| {
                    acc.push_str(l);
                    acc.push('\n');
                    acc
                })
        } else {
            String::new()
        };
        let mut f = std::fs::File::create(path).unwrap_or_else(|e| {
            cli_error!("cannot open {path}: {e}");
            exit(1);
        });
        f.write_all(kept.as_bytes()).unwrap_or_else(|e| {
            cli_error!("events write failed: {e}");
            exit(1);
        });
        f
    });

    // Checkpoint cadence: periodic full frames anchor the chain; every
    // save in between writes a dirty-only [`RunDelta`] — the watermark
    // advance, the stdout lines since the last flush, and each shard's
    // incremental snapshot — chained by `base_generation`. Day rolls and
    // run completion force a full frame (evidence resets there, so a
    // delta would be full-sized anyway and the chain stays short).
    const FULL_EVERY: u64 = 8;
    let mut last_generation: Option<u64> = None;
    let mut saves_since_full: u64 = 0;
    let mut last_emitted_flushed: usize = 0;
    let mut save = |pool: &mut dyn ShardBackend,
                    wm: Watermark,
                    records_this_day: u64,
                    done: bool,
                    force_full: bool,
                    emitted: &[String]| {
        let Some(dir) = &ckpt_dir else { return };
        let full = force_full
            || done
            || last_generation.is_none()
            || saves_since_full + 1 >= FULL_EVERY;
        let generation = if full {
            // Fold outstanding dirty state into the supervisor's bases so
            // the full frame doubles as the next delta's clean anchor.
            pool_fatal(pool.checkpoint_all_delta());
            let ck = RunCheckpoint {
                seed,
                lines,
                days,
                threshold,
                workers: workers as u32,
                chunk_records: chunk_records as u64,
                watermark: wm,
                records_this_day,
                done,
                emitted: emitted.to_vec(),
                shards: pool.supervised_shard_states(),
            };
            saves_since_full = 0;
            pool_fatal_ck(dir.write(RunCheckpoint::PREFIX, &ck.encode()))
        } else {
            let shards = pool_fatal(pool.checkpoint_all_delta());
            let dirty: usize =
                shards.iter().map(haystack_core::DetectorSnapshot::entry_count).sum();
            let delta = RunDelta {
                base_generation: last_generation.expect("delta saves follow a full"),
                watermark: wm,
                records_this_day,
                done,
                emitted_new: emitted[last_emitted_flushed..].to_vec(),
                shards,
            };
            saves_since_full += 1;
            pool_fatal_ck(dir.write_delta(RunCheckpoint::PREFIX, &delta.encode(), dirty as u64))
        };
        last_generation = Some(generation);
        last_emitted_flushed = emitted.len();
    };

    let mut chunk = RecordChunk::with_capacity(chunk_records);
    let mut chaos_ticks = 0u64;
    while wm.day < days {
        let day = wm.day;
        for hour_idx in wm.hour..24 {
            let hour = DayBin(day)
                .hours()
                .nth(hour_idx as usize)
                .expect("a day has 24 hours");
            let mut stream = isp.stream_hour(&world, hour, chunk_records);
            // Resuming mid-hour: regenerate the hour and discard the
            // already-processed prefix (generation is deterministic).
            let mut chunk_no = if hour_idx == wm.hour && wm.chunk > 0 {
                skip_chunks(&mut *stream, wm.chunk)
            } else {
                0
            };
            while stream.next_chunk(&mut chunk) {
                records_this_day += chunk.records.len() as u64;
                pool_fatal(pool.observe_records(&chunk.records));
                chunk_no += 1;
                if chaos {
                    chaos_ticks += 1;
                    chaos_tick(pool.as_mut(), chaos_ticks);
                }
                if checkpoint_chunks > 0 && chunk_no % checkpoint_chunks == 0 {
                    save(
                        pool.as_mut(),
                        Watermark { day, hour: hour_idx, chunk: chunk_no },
                        records_this_day,
                        false,
                        false,
                        &emitted,
                    );
                }
                // SIGTERM drain: the in-flight chunk is finished (it was
                // observed above), the watermark checkpoint makes resume
                // land exactly here, and the exit is clean.
                if ckpt_dir.is_some() && sig::triggered() {
                    save(
                        pool.as_mut(),
                        Watermark { day, hour: hour_idx, chunk: chunk_no },
                        records_this_day,
                        false,
                        false,
                        &emitted,
                    );
                    note!(
                        "sigterm: checkpointed at day {day} hour {hour_idx} chunk {chunk_no}; exiting"
                    );
                    exit(0);
                }
            }
            wm = Watermark::hour_start(day, hour_idx).next_hour();
            // Hour-boundary cadence — but the day-roll checkpoint waits
            // for the day's summary rows below.
            if wm.day == day {
                save(pool.as_mut(), wm, records_this_day, false, false, &emitted);
            }
        }
        pool_fatal(pool.finish());
        note!("day {day}: {records_this_day} records streamed through {workers} workers");
        for rule in &rules.rules {
            let name = rules.class_name(rule.class);
            let n = pool_fatal(pool.detected_lines(name)).len();
            let row = format!("{day}\t{name}\t{n}");
            println!("{row}");
            emitted.push(row);
        }
        if let Some(f) = &mut events_file {
            use std::io::Write;
            let states = pool_fatal(pool.shard_states());
            for e in &haystack_core::events::events_from_states(&rules, &states) {
                let line = haystack_core::events::ndjson_line(&rules, e, Some(day));
                writeln!(f, "{line}").unwrap_or_else(|e| {
                    cli_error!("events write failed: {e}");
                    exit(1);
                });
            }
        }
        // Evidence resets at the day boundary; the day-roll checkpoint
        // captures the post-reset state so a resume lands exactly here.
        pool_fatal(pool.reset());
        records_this_day = 0;
        save(pool.as_mut(), wm, 0, false, true, &emitted);
    }
    save(pool.as_mut(), wm, 0, true, false, &emitted);
}

fn cmd_mitigate(flags: HashMap<String, String>) {
    let rules = load_rules(&flags);
    let class = flags.get("class").unwrap_or_else(|| usage());
    let class: &'static str = Box::leak(class.clone().into_boxed_str());
    let action = match flags.get("redirect") {
        Some(ip) => Action::Redirect(ip.parse().unwrap_or_else(|_| {
            cli_error!("--redirect needs an IPv4 address");
            exit(2);
        })),
        None => Action::Block,
    };
    // Collector-side mitigations work from the rules' IP unions when no
    // passive-DNS feed is wired in.
    match block_plan(&rules, &DnsDb::new(), class, DayBin(0), action) {
        Some(plan) => {
            println!("# {:?} plan for {class} ({} targets)", plan.action, plan.targets.len());
            for (ip, port) in &plan.targets {
                println!("{ip}\t{port}");
            }
        }
        None => {
            cli_error!("no rule for class {class:?} (try `haystack inspect`)");
            exit(1);
        }
    }
}

fn cmd_capture(flags: HashMap<String, String>) {
    use haystack_testbed::capture::write_trace;
    use haystack_testbed::ExperimentDriver;
    let out = flags.get("out").unwrap_or_else(|| usage());
    let hours: u32 = num(&flags, "hours", 6);
    let seed: u64 = num(&flags, "seed", 42);
    let driver = ExperimentDriver::new(standard_catalog(), seed);
    let world = materialize(driver.catalog());
    let mut packets = Vec::new();
    note!("capturing {hours} h of the idle experiment at the Home-VP ...");
    for hour in haystack_net::StudyWindow::IDLE_GT.hour_bins().take(hours as usize) {
        packets.extend(driver.generate_hour(&world, hour));
    }
    let file = std::fs::File::create(out).unwrap_or_else(|e| {
        cli_error!("cannot create {out}: {e}");
        exit(1);
    });
    write_trace(std::io::BufWriter::new(file), &packets).unwrap_or_else(|e| {
        cli_error!("write failed: {e}");
        exit(1);
    });
    note!("wrote {} packets to {out}", packets.len());
}

fn cmd_replay(flags: HashMap<String, String>) {
    use haystack_flow::sampling::{PacketSampler, SystematicSampler};
    use haystack_testbed::capture::read_trace;
    let rules = load_rules(&flags);
    let trace_path = flags.get("trace").unwrap_or_else(|| usage());
    let sampling: u64 = num(&flags, "sampling", 1_000);
    let threshold: f64 = num(&flags, "threshold", 0.4);
    let file = std::fs::File::open(trace_path).unwrap_or_else(|e| {
        cli_error!("cannot open {trace_path}: {e}");
        exit(1);
    });
    let packets = read_trace(std::io::BufReader::new(file)).unwrap_or_else(|e| {
        cli_error!("{trace_path}: {e}");
        exit(1);
    });
    let mut sampler = SystematicSampler::new(sampling, 3).unwrap_or_else(|e| {
        cli_error!("{e}");
        exit(1);
    });
    let mut det = Detector::new(
        &rules,
        HitList::whole_window(&rules),
        DetectorConfig { threshold, require_established: false },
    );
    let line = haystack_net::AnonId(1);
    let mut kept = 0u64;
    for g in &packets {
        if sampler.sample() {
            kept += 1;
            det.observe(
                line,
                g.packet.dst,
                g.packet.dport,
                g.packet.proto,
                g.packet.flags.is_established_evidence(),
                g.packet.ts.hour(),
            );
        }
    }
    note!("{} packets replayed, {kept} sampled (1/{sampling})", packets.len());
    println!("class\tdetected");
    for (ri, rule) in rules.rules.iter().enumerate() {
        println!(
            "{}\t{}",
            rules.class_name(rule.class),
            det.is_detected_rule(line, ri as u16)
        );
    }
}

/// Deterministic synthetic flow records shared by `chaos` and `metrics`.
fn synthetic_flow_records(n_records: usize, seed: u64) -> Vec<haystack_flow::FlowRecord> {
    use haystack_flow::{FlowKey, FlowRecord, TcpFlags};
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    (0..n_records)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            FlowRecord {
                key: FlowKey {
                    src: std::net::Ipv4Addr::new(100, 64, (x >> 8) as u8, x as u8),
                    dst: std::net::Ipv4Addr::new(198, 18, 0, (x >> 16) as u8),
                    sport: 40_000 + (i % 1_000) as u16,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 1 + (x % 5),
                bytes: 60 * (1 + (x % 5)),
                tcp_flags: TcpFlags::ACK,
                first: SimTime(i as u64),
                last: SimTime(i as u64 + 30),
            }
        })
        .collect()
}

/// Push one synthetic hour through Exporter → ChaosLink → Collector at
/// the given severity and print what survived — a quick operator-facing
/// smoke test of the collector's fault tolerance (DESIGN.md, "Fault
/// model"). `haystack chaos --severity 0` must report a lossless path.
fn cmd_chaos(flags: HashMap<String, String>) {
    use haystack_flow::export::{ExportProtocol, Exporter};
    use haystack_flow::{ChaosConfig, ChaosLink, Collector};

    let seed: u64 = num(&flags, "seed", 42);
    let n_records: usize = num(&flags, "records", 10_000);
    let severities: Vec<f64> = match flags.get("severity") {
        Some(v) => match v.parse::<f64>() {
            Ok(s) if (0.0..=1.0).contains(&s) => vec![s],
            _ => {
                cli_error!("--severity needs a number in [0, 1]");
                exit(2);
            }
        },
        None => vec![0.0, 0.25, 0.5, 0.75, 1.0],
    };
    let records = synthetic_flow_records(n_records, seed);
    println!(
        "severity\tsent\tdelivered\tdecoded\tdecode_rate\tmissed_dg\trestarts\tmalformed\tquarantined"
    );
    for &severity in &severities {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
        let mut link = ChaosLink::new(ChaosConfig::at_severity(severity, seed));
        let mut collector = Collector::new();
        let mut decoded = 0usize;
        for (hour, chunk) in records.chunks(512).enumerate() {
            let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
            for d in link.transmit_all(msgs) {
                decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
            }
        }
        for d in link.shutdown() {
            decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
        }
        let s = link.stats();
        println!(
            "{severity:.2}\t{}\t{}\t{decoded}\t{:.3}\t{}\t{}\t{}\t{}",
            s.sent,
            s.delivered,
            if records.is_empty() { 1.0 } else { decoded as f64 / records.len() as f64 },
            collector.missed_datagrams(),
            collector.restarts_detected(),
            collector.malformed_messages() + collector.malformed_sets(),
            collector.quarantined_sources().len(),
        );
        if severity == 0.0 && decoded != records.len() {
            cli_error!("clean link lost records ({decoded}/{})", records.len());
            exit(1);
        }
    }
}

/// Run an instrumented slice of the pipeline and print the telemetry
/// snapshot — Prometheus text exposition by default, the structured
/// JSON document with `--json` (DESIGN.md §11).
///
/// The wire stage (Exporter → ChaosLink → Collector) always runs; the
/// detect stage (simulated ISP hour → instrumented stream → sharded
/// detector pool) runs when `--rules` is given.
fn cmd_metrics(flags: HashMap<String, String>) {
    use haystack_core::telemetry::{observe_collector, observe_hitlist, InstrumentedStream};
    use haystack_flow::export::{ExportProtocol, Exporter};
    use haystack_flow::{ChaosConfig, ChaosLink, Collector};

    telemetry::set_enabled(true);
    let seed: u64 = num(&flags, "seed", 42);
    let severity: f64 = num(&flags, "severity", 0.25);
    let n_records: usize = num(&flags, "records", 10_000);
    if !(0.0..=1.0).contains(&severity) {
        cli_error!("--severity needs a number in [0, 1]");
        exit(2);
    }

    note!("wire stage: {n_records} records through a severity-{severity:.2} link ...");
    let records = synthetic_flow_records(n_records, seed);
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
    let mut link = ChaosLink::new(ChaosConfig::at_severity(severity, seed));
    let mut collector = Collector::new();
    let wire = telemetry::Scope::named("wire");
    let mut decoded = 0u64;
    for (hour, chunk) in records.chunks(512).enumerate() {
        let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
        for d in link.transmit_all(msgs) {
            decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len()) as u64;
        }
    }
    for d in link.shutdown() {
        decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len()) as u64;
    }
    let s = link.stats();
    wire.counter("records_sent").add(records.len() as u64);
    wire.counter("records_decoded").add(decoded);
    wire.gauge("datagrams_sent").set(s.sent);
    wire.gauge("datagrams_delivered").set(s.delivered);
    wire.gauge("datagrams_dropped").set(s.dropped);
    observe_collector(&telemetry::Scope::named("collector"), &collector);

    if flags.contains_key("rules") {
        let rules = load_rules(&flags);
        let lines: u32 = num(&flags, "lines", 2_000);
        let workers: usize = num(&flags, "workers", 2);
        if workers == 0 {
            cli_error!("--workers must be at least 1");
            exit(2);
        }
        note!("detect stage: simulated ISP hour over {lines} lines, {workers} workers ...");
        let catalog = standard_catalog();
        let world = materialize(&catalog);
        let isp = IspVantage::new(
            &catalog,
            IspConfig { lines, sampling: 1_000, seed, background: false },
        );
        let hitlist = HitList::whole_window(&rules);
        observe_hitlist(&telemetry::Scope::named("hitlist"), &hitlist);
        let mut pool = DetectorPool::new(
            &rules,
            &hitlist,
            DetectorConfig { threshold: 0.4, require_established: false },
            workers,
        );
        pool.attach_telemetry(&telemetry::Scope::named("pool"))
            .unwrap_or_else(|e| {
                cli_error!("{e}");
                exit(1);
            });
        // Supervision also publishes the `checkpoint.*` counters (shard
        // checkpoints, restarts, replays) into this snapshot.
        pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT)
            .unwrap_or_else(|e| {
                cli_error!("{e}");
                exit(1);
            });
        let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
        let hour = DayBin(0).hours().next().expect("a day has hours");
        let mut stream = InstrumentedStream::new(
            isp.stream_hour(&world, hour, DEFAULT_CHUNK_RECORDS),
            &telemetry::Scope::named("stream"),
        );
        pool_fatal(pool.observe_stream(&mut stream, &mut chunk));
        pool_fatal(pool.finish());
        // One durable checkpoint round-trip, so the snapshot also shows
        // the CheckpointDir side of DESIGN.md §12 (snapshots_written,
        // snapshot_bytes, restores) next to the pool-side counters.
        let ckpt_root =
            std::env::temp_dir().join(format!("haystack-metrics-ckpt-{}", std::process::id()));
        match CheckpointDir::open(&ckpt_root) {
            Ok(dir) => {
                let states = pool_fatal(pool.shard_states());
                let mut ok = true;
                for (i, s) in states.iter().enumerate() {
                    ok &= dir.write(&format!("shard{i}"), &s.encode()).is_ok();
                }
                if ok {
                    // The incremental side of §12: flush each shard's
                    // dirty set as a delta frame so the snapshot also
                    // carries checkpoint.dirty_entries / delta_bytes.
                    let frames = pool_fatal(pool.checkpoint_all_delta());
                    for (i, f) in frames.iter().enumerate() {
                        let _ = dir.write_delta(
                            &format!("shard{i}"),
                            &f.encode(),
                            f.entry_count() as u64,
                        );
                    }
                    for i in 0..states.len() {
                        let _ = dir.load_latest(
                            &format!("shard{i}"),
                            haystack_core::DetectorState::decode,
                        );
                    }
                } else {
                    note!("checkpoint slice skipped: checkpoint write failed");
                }
                let _ = std::fs::remove_dir_all(&ckpt_root);
            }
            Err(e) => note!("checkpoint slice skipped: {e}"),
        }
    }

    let snap = telemetry::global().snapshot();
    if flags.contains_key("json") {
        println!("{}", serde_json::to_string_pretty(&snap.to_json()).expect("serializable"));
    } else {
        print!("{}", snap.to_prometheus());
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        usage();
    };
    // The process-isolated shard entry point (DESIGN.md §15): parent
    // supervisors spawn `haystack shard-worker` and speak the HAYPROC
    // frame protocol over stdin/stdout. Dispatched before flag parsing —
    // its only interface is the pipe pair.
    if cmd == "shard-worker" {
        exit(haystack_core::procpool::worker_main());
    }
    // `rules` grew subcommands; a bare `haystack rules` still runs the
    // legacy JSON generator.
    if cmd == "rules" {
        if let Some((sub, sub_rest)) = rest.split_first() {
            if !sub.starts_with("--") {
                let flags = parse_flags(sub_rest);
                haystack_cli::log::set_quiet(flags.contains_key("quiet"));
                return match sub.as_str() {
                    "export" => cmd_rules_export(flags),
                    "show" => cmd_rules_show(flags),
                    "lint" => cmd_rules_lint(flags),
                    _ => usage(),
                };
            }
        }
    }
    let flags = parse_flags(rest);
    haystack_cli::log::set_quiet(flags.contains_key("quiet"));
    match cmd.as_str() {
        "rules" => cmd_rules(flags),
        "inspect" => cmd_inspect(flags),
        "detect" => cmd_detect(flags),
        "soak" => soak::cmd_soak(flags),
        "serve" => serve::cmd_serve(flags),
        "send" => serve::cmd_send(flags),
        "mitigate" => cmd_mitigate(flags),
        "capture" => cmd_capture(flags),
        "replay" => cmd_replay(flags),
        "chaos" => cmd_chaos(flags),
        "metrics" => cmd_metrics(flags),
        _ => usage(),
    }
}
