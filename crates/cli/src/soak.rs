//! `haystack soak` — the wild-scale soak harness (DESIGN.md §12).
//!
//! The paper's deployment regime is ~15 M subscriber lines where ~99%
//! of sampled flows miss the hitlist. `soak` reproduces that shape at
//! operator-chosen scale with the stateless [`SoakStream`] generator:
//! ≥10⁶ lines of streamed traffic over many simulated hours, pushed
//! through the supervised detector pool with **incremental dirty-only
//! checkpoints** — hourly delta frames chained onto periodic full
//! generations, exactly the `detect --resume` machinery.
//!
//! What it reports (stderr note, or `--report FILE` as JSON):
//!
//! * sustained records/s over the whole invocation;
//! * peak RSS (`VmHWM` from `/proc/self/status`) against the
//!   `--mem-ceiling-mb` budget — breach is exit 1;
//! * per-checkpoint pause times and full-vs-delta frame bytes.
//!
//! Like `detect`, a soak with `--checkpoint-dir` drains on SIGTERM,
//! survives SIGKILL, and `--resume` replays the full+delta chain and
//! regenerates byte-identical traffic from the watermark, so the final
//! detections (`--out`) and events (`--events`) match an uninterrupted
//! run exactly. The canonical `BENCH_wild.json` numbers come from the
//! in-process `soak` bench bin; this command is the operator-facing,
//! kill-able variant.

use crate::sig;
use crate::{build_backend, chaos_tick, load_rules_full, num, parse_isolate, pool_fatal,
    pool_fatal_ck, Isolate};
use haystack_cli::resume::{flag_conflicts, load_resume_checkpoint, RunCheckpoint, RunDelta};
use haystack_cli::{cli_error, note};
use haystack_core::detector::DetectorConfig;
use haystack_core::parallel::ShardBackend;
use haystack_core::rules::RuleSet;
use haystack_core::{CheckpointDir, DetectorSnapshot};
use haystack_wild::{
    skip_chunks, RecordChunk, RecordStream, SoakConfig, SoakStream, Watermark,
    DEFAULT_CHUNK_RECORDS,
};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::process::exit;
use std::time::Instant;

/// Full-frame cadence: every `FULL_EVERY`-th save anchors a new full
/// generation; saves in between write dirty-only [`RunDelta`] frames.
const FULL_EVERY: u64 = 8;

/// Peak resident set size in KiB, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// Every (service IP, port) pair the rule set can match — the soak
/// stream's hit targets. Deterministic order (BTreeSets underneath),
/// deduplicated across rules sharing infrastructure.
fn hit_targets(rules: &RuleSet) -> Vec<(Ipv4Addr, u16)> {
    let mut targets: Vec<(Ipv4Addr, u16)> = rules
        .rules
        .iter()
        .flat_map(|r| &r.domains)
        .flat_map(|d| d.ips.iter().flat_map(|&ip| d.ports.iter().map(move |&p| (ip, p))))
        .collect();
    targets.sort_unstable();
    targets.dedup();
    targets
}

/// The soak run's config row — first stdout line, checkpointed with the
/// rest of `emitted`. It carries the soak-only parameters a
/// [`RunCheckpoint`] has no fields for, so `--resume` can restore (and
/// conflict-check) the exact stream configuration.
fn config_row(cfg: &SoakConfig, hours: u32) -> String {
    format!(
        "# soak lines={} hours={hours} records_per_hour={} hit_rate_ppm={} seed={}",
        cfg.lines, cfg.records_per_hour, cfg.hit_rate_ppm, cfg.seed
    )
}

/// Parse `(records_per_hour, hit_rate_ppm)` back out of a [`config_row`]
/// line. `None` means the checkpoint was not written by `haystack soak`.
fn parse_config_row(line: &str) -> Option<(u64, u32)> {
    if !line.starts_with("# soak ") {
        return None;
    }
    let mut records_per_hour = None;
    let mut hit_rate_ppm = None;
    for token in line.split_whitespace() {
        if let Some(v) = token.strip_prefix("records_per_hour=") {
            records_per_hour = v.parse().ok();
        } else if let Some(v) = token.strip_prefix("hit_rate_ppm=") {
            hit_rate_ppm = v.parse().ok();
        }
    }
    Some((records_per_hour?, hit_rate_ppm?))
}

/// A resumed soak takes its stream config from the checkpoint; an
/// explicitly conflicting flag fails with the field at fault, like
/// `detect --resume`'s [`flag_conflicts`] (which covers the shared
/// fields — this covers the soak-only ones).
fn soak_flag_conflict(
    flags: &HashMap<String, String>,
    field: &'static str,
    checkpoint: u64,
) {
    if let Some(flag) = flags.get(field) {
        if flag.parse::<u64>().ok() != Some(checkpoint) {
            cli_error!(
                "resume: --{field} {flag} conflicts with the checkpointed run's {checkpoint}"
            );
            exit(1);
        }
    }
}

/// Incremental checkpoint writer: owns the full/delta cadence, the
/// chain head, and the pause/bytes accounting the report surfaces.
struct Saver<'a> {
    dir: Option<&'a CheckpointDir>,
    seed: u64,
    lines: u32,
    hours: u32,
    threshold: f64,
    workers: u32,
    chunk_records: u64,
    last_generation: Option<u64>,
    saves_since_full: u64,
    last_emitted_flushed: usize,
    pauses_ms: Vec<f64>,
    fulls: u64,
    deltas: u64,
    full_bytes: u64,
    delta_bytes: u64,
}

impl Saver<'_> {
    fn save(
        &mut self,
        pool: &mut dyn ShardBackend,
        wm: Watermark,
        records_this_hour: u64,
        done: bool,
        emitted: &[String],
    ) {
        let Some(dir) = self.dir else { return };
        let t0 = Instant::now();
        let full =
            done || self.last_generation.is_none() || self.saves_since_full + 1 >= FULL_EVERY;
        let generation = if full {
            // Fold outstanding dirty state into the supervisor's bases so
            // the full frame doubles as the next delta's clean anchor.
            pool_fatal(pool.checkpoint_all_delta());
            let ck = RunCheckpoint {
                seed: self.seed,
                lines: self.lines,
                days: self.hours, // soak time is hours; `days` stores the total
                threshold: self.threshold,
                workers: self.workers,
                chunk_records: self.chunk_records,
                watermark: wm,
                records_this_day: records_this_hour,
                done,
                emitted: emitted.to_vec(),
                shards: pool.supervised_shard_states(),
            };
            let frame = ck.encode();
            self.fulls += 1;
            self.full_bytes += frame.len() as u64;
            self.saves_since_full = 0;
            pool_fatal_ck(dir.write(RunCheckpoint::PREFIX, &frame))
        } else {
            let shards = pool_fatal(pool.checkpoint_all_delta());
            let dirty: usize = shards.iter().map(DetectorSnapshot::entry_count).sum();
            let delta = RunDelta {
                base_generation: self.last_generation.expect("delta saves follow a full"),
                watermark: wm,
                records_this_day: records_this_hour,
                done,
                emitted_new: emitted[self.last_emitted_flushed..].to_vec(),
                shards,
            };
            let frame = delta.encode();
            self.deltas += 1;
            self.delta_bytes += frame.len() as u64;
            self.saves_since_full += 1;
            pool_fatal_ck(dir.write_delta(RunCheckpoint::PREFIX, &frame, dirty as u64))
        };
        self.last_generation = Some(generation);
        self.last_emitted_flushed = emitted.len();
        self.pauses_ms.push(t0.elapsed().as_secs_f64() * 1e3);
    }
}

pub fn cmd_soak(flags: HashMap<String, String>) {
    let (rules, pack) = load_rules_full(&flags);
    let ckpt_dir = flags
        .get("checkpoint-dir")
        .map(|d| pool_fatal_ck(CheckpointDir::open(d)));
    let resume = flags.contains_key("resume");
    if resume && ckpt_dir.is_none() {
        cli_error!("--resume needs --checkpoint-dir");
        exit(2);
    }
    let checkpoint_chunks: u64 = num(&flags, "checkpoint-chunks", 0);
    let mem_ceiling_mb: u64 = num(&flags, "mem-ceiling-mb", 0);

    let loaded: Option<RunCheckpoint> = if resume {
        let dir = ckpt_dir.as_ref().expect("checked above");
        match load_resume_checkpoint(dir) {
            Ok(Some((generation, ck))) => {
                if let Err(e) = flag_conflicts(&ck, generation, &flags) {
                    cli_error!("resume: {e}");
                    exit(1);
                }
                note!(
                    "resuming from checkpoint generation {generation} at hour {} chunk {}",
                    ck.watermark.hour,
                    ck.watermark.chunk
                );
                Some(ck)
            }
            Ok(None) => {
                note!("no checkpoint found; starting fresh");
                None
            }
            Err(e) => {
                cli_error!("resume: {e}");
                exit(1);
            }
        }
    } else {
        None
    };

    // Fresh runs read the stream shape from flags; resumed runs from the
    // checkpoint (the shared fields) and its config row (the soak-only
    // ones), so flag drift cannot silently change the traffic.
    let (lines, hours, threshold, seed, workers, chunk_records, records_per_hour, hit_rate_ppm) =
        match &loaded {
            Some(ck) => {
                let Some((rph, ppm)) =
                    ck.emitted.first().and_then(|row| parse_config_row(row))
                else {
                    cli_error!("resume: checkpoint was not written by `haystack soak`");
                    exit(1);
                };
                soak_flag_conflict(&flags, "hours", u64::from(ck.days));
                soak_flag_conflict(&flags, "records-per-hour", rph);
                soak_flag_conflict(&flags, "hit-rate-ppm", u64::from(ppm));
                (
                    ck.lines,
                    ck.days,
                    ck.threshold,
                    ck.seed,
                    ck.workers as usize,
                    ck.chunk_records as usize,
                    rph,
                    ppm,
                )
            }
            None => {
                let workers: usize = num(&flags, "workers", 4);
                if workers == 0 {
                    cli_error!("--workers must be at least 1");
                    exit(2);
                }
                (
                    num(&flags, "lines", 1_000_000),
                    num(&flags, "hours", 6),
                    num(
                        &flags,
                        "threshold",
                        pack.as_ref().map(|p| p.threshold).unwrap_or(0.4),
                    ),
                    num(&flags, "seed", 42),
                    workers,
                    DEFAULT_CHUNK_RECORDS,
                    num(&flags, "records-per-hour", 1_000_000),
                    num(&flags, "hit-rate-ppm", 10_000),
                )
            }
        };

    let soak_cfg = SoakConfig { lines, seed, hit_rate_ppm, records_per_hour };
    let targets = hit_targets(&rules);
    if targets.is_empty() {
        cli_error!("the rule set has no service IPs — every record would miss");
        exit(1);
    }
    note!(
        "soaking {lines} lines for {hours} h at {records_per_hour} records/h (~{:.1}% hit rate, {} targets) ...",
        f64::from(hit_rate_ppm) / 10_000.0,
        targets.len()
    );

    let isolate = parse_isolate(&flags);
    let chaos = flags.contains_key("chaos");
    let mut pool = build_backend(
        &rules,
        DetectorConfig { threshold, require_established: false },
        workers,
        isolate,
    );
    if ckpt_dir.is_some() || isolate == Isolate::Process || chaos {
        // Process isolation and chaos both imply supervision — losing a
        // child (or killing one on purpose) must never lose evidence.
        pool_fatal(pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT));
    }
    if ckpt_dir.is_some() {
        sig::install();
    }

    let mut saver = Saver {
        dir: ckpt_dir.as_ref(),
        seed,
        lines,
        hours,
        threshold,
        workers: workers as u32,
        chunk_records: chunk_records as u64,
        last_generation: None,
        saves_since_full: 0,
        last_emitted_flushed: 0,
        pauses_ms: Vec::new(),
        fulls: 0,
        deltas: 0,
        full_bytes: 0,
        delta_bytes: 0,
    };

    // `emitted` is the replayable stdout, exactly as in `detect`: the
    // config row, the column header, then one row per completed hour.
    let mut emitted: Vec<String> = Vec::new();
    let mut wm = Watermark::start();
    let mut records_this_hour = 0u64;
    match &loaded {
        Some(ck) => {
            if ck.done {
                note!("checkpointed soak already complete; re-deriving its outputs");
            }
            for line in &ck.emitted {
                println!("{line}");
            }
            emitted = ck.emitted.clone();
            wm = ck.watermark;
            records_this_hour = ck.records_this_day;
            pool_fatal(pool.restore_shard_states(&ck.shards));
            saver.last_emitted_flushed = emitted.len();
        }
        None => {
            let cfg = config_row(&soak_cfg, hours);
            println!("{cfg}");
            emitted.push(cfg);
            let header = "hour\trecords".to_string();
            println!("{header}");
            emitted.push(header);
        }
    }

    let t0 = Instant::now();
    let mut streamed = 0u64;
    let mut chaos_ticks = 0u64;
    let mut chunk = RecordChunk::with_capacity(chunk_records);
    // Soak time is a flat hour index: no day rolls, no evidence resets —
    // the detector's state grows monotonically, which is exactly what
    // the memory-ceiling check is about.
    while wm.hour < hours {
        let g = wm.hour;
        let mut stream = SoakStream::hour(&targets, soak_cfg, 0, g, chunk_records);
        // Resuming mid-hour: regenerate the hour and discard the
        // already-processed prefix (generation is stateless).
        let mut chunk_no = if wm.chunk > 0 { skip_chunks(&mut stream, wm.chunk) } else { 0 };
        while stream.next_chunk(&mut chunk) {
            records_this_hour += chunk.records.len() as u64;
            streamed += chunk.records.len() as u64;
            pool_fatal(pool.observe_records(&chunk.records));
            chunk_no += 1;
            if chaos {
                chaos_ticks += 1;
                chaos_tick(pool.as_mut(), chaos_ticks);
            }
            if checkpoint_chunks > 0 && chunk_no % checkpoint_chunks == 0 {
                saver.save(
                    pool.as_mut(),
                    Watermark { day: 0, hour: g, chunk: chunk_no },
                    records_this_hour,
                    false,
                    &emitted,
                );
            }
            if ckpt_dir.is_some() && sig::triggered() {
                saver.save(
                    pool.as_mut(),
                    Watermark { day: 0, hour: g, chunk: chunk_no },
                    records_this_hour,
                    false,
                    &emitted,
                );
                note!("sigterm: checkpointed at hour {g} chunk {chunk_no}; exiting");
                exit(0);
            }
        }
        let row = format!("{g}\t{records_this_hour}");
        println!("{row}");
        emitted.push(row);
        wm = Watermark { day: 0, hour: g + 1, chunk: 0 };
        records_this_hour = 0;
        saver.save(pool.as_mut(), wm, 0, false, &emitted);
    }

    pool_fatal(pool.finish());
    saver.save(pool.as_mut(), wm, 0, true, &emitted);

    // Final detections: always to stdout (deterministically re-derived
    // from final state, so a resumed run's stdout is byte-identical to
    // an uninterrupted one), and to `--out` as a file for diffing.
    let mut out_rows = vec!["class\tdetected_lines".to_string()];
    for rule in &rules.rules {
        let name = rules.class_name(rule.class);
        let n = pool_fatal(pool.detected_lines(name)).len();
        out_rows.push(format!("{name}\t{n}"));
    }
    for row in &out_rows {
        println!("{row}");
    }
    if let Some(path) = flags.get("out") {
        let mut text = out_rows.join("\n");
        text.push('\n');
        std::fs::write(path, text).unwrap_or_else(|e| {
            cli_error!("cannot write {path}: {e}");
            exit(1);
        });
    }
    if let Some(path) = flags.get("events") {
        use std::io::Write;
        let states = pool_fatal(pool.shard_states());
        let mut f = std::io::BufWriter::new(std::fs::File::create(path).unwrap_or_else(|e| {
            cli_error!("cannot open {path}: {e}");
            exit(1);
        }));
        for e in &haystack_core::events::events_from_states(&rules, &states) {
            let line = haystack_core::events::ndjson_line(&rules, e, None);
            writeln!(f, "{line}").unwrap_or_else(|e| {
                cli_error!("events write failed: {e}");
                exit(1);
            });
        }
    }

    let elapsed = t0.elapsed().as_secs_f64();
    let records_per_sec = streamed as f64 / elapsed.max(1e-9);
    let peak_kb = peak_rss_kb().unwrap_or(0);
    let pause_max = saver.pauses_ms.iter().cloned().fold(0.0f64, f64::max);
    let pause_mean = if saver.pauses_ms.is_empty() {
        0.0
    } else {
        saver.pauses_ms.iter().sum::<f64>() / saver.pauses_ms.len() as f64
    };
    note!(
        "soak: {streamed} records in {elapsed:.2}s ({records_per_sec:.0} records/s), peak RSS {:.1} MiB, {} checkpoints (pause mean {pause_mean:.2} ms, max {pause_max:.2} ms)",
        peak_kb as f64 / 1024.0,
        saver.fulls + saver.deltas
    );

    if let Some(path) = flags.get("report") {
        let report = serde_json::json!({
            "bench": "haystack_soak",
            "lines": lines,
            "hours": hours,
            "records_per_hour": records_per_hour,
            "hit_rate_ppm": hit_rate_ppm,
            "seed": seed,
            "workers": workers,
            "records_streamed": streamed,
            "elapsed_secs": elapsed,
            "records_per_sec": records_per_sec,
            "peak_rss_kb": peak_kb,
            "mem_ceiling_mb": mem_ceiling_mb,
            "checkpoints": {
                "full_frames": saver.fulls,
                "delta_frames": saver.deltas,
                "full_bytes": saver.full_bytes,
                "delta_bytes": saver.delta_bytes,
                "pause_ms_mean": pause_mean,
                "pause_ms_max": pause_max,
            },
        });
        let text = serde_json::to_string_pretty(&report).expect("serializable");
        std::fs::write(path, text).unwrap_or_else(|e| {
            cli_error!("cannot write {path}: {e}");
            exit(1);
        });
    }

    // The memory ceiling is the soak's reason to exist: unbounded state
    // growth at wild scale must be caught, not graphed. Breach is a
    // hard failure (after the report is written, so the evidence lands).
    if mem_ceiling_mb > 0 && peak_kb > mem_ceiling_mb * 1024 {
        cli_error!(
            "peak RSS {:.1} MiB exceeded the {mem_ceiling_mb} MiB ceiling",
            peak_kb as f64 / 1024.0
        );
        exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_row_round_trips() {
        let cfg = SoakConfig {
            lines: 1_000_000,
            seed: 7,
            hit_rate_ppm: 12_345,
            records_per_hour: 250_000,
        };
        let row = config_row(&cfg, 12);
        assert_eq!(parse_config_row(&row), Some((250_000, 12_345)));
        // A detect checkpoint's header row is not a soak config row.
        assert_eq!(parse_config_row("day\tclass\tdetected_lines"), None);
    }
}
