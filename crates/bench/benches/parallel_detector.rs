//! Sharded-detector scaling: the multi-core configuration behind the
//! "ISP-hour in seconds" claim. Compares shard counts on the same record
//! stream (results are bit-identical to sequential; the equivalence is
//! unit-tested in `haystack-core`). On a single-core host this measures
//! sharding overhead rather than speedup — read it next to `nproc`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::{DetectorPool, ShardedDetector};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::{RecordChunk, VecStream, WildRecord, DEFAULT_CHUNK_RECORDS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

fn stream(n: usize) -> Vec<WildRecord> {
    let p = pipeline();
    let mut rule_ips: Vec<(Ipv4Addr, u16)> = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    rule_ips.push((*ip, *port));
                }
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(5);
    (0..n)
        .map(|i| {
            let (dst, dport) = if rng.gen_bool(0.3) {
                rule_ips[rng.gen_range(0..rule_ips.len())]
            } else {
                (Ipv4Addr::new(151, 64, (i % 200) as u8, 1), 443)
            };
            let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
            WildRecord {
                line: AnonId(rng.gen::<u64>()),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport,
                proto: Proto::Tcp,
                packets: 1,
                bytes: 400,
                established: true,
                hour: HourBin(0),
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let p = pipeline();
    let records = stream(150_000);
    let hl = HitList::whole_window(&p.rules);

    let mut g = c.benchmark_group("sharded_detector");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.sample_size(10);
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("workers_{workers}"), |b| {
            b.iter_batched(
                || ShardedDetector::new(&p.rules, &hl, DetectorConfig::default(), workers),
                |mut det| {
                    det.observe_batch(&records).unwrap();
                    det.state_size()
                },
                BatchSize::LargeInput,
            )
        });
    }
    // The streaming entry point: chunks through the persistent pool with
    // backpressure, the shape `haystack detect` and the studies now use.
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("pool_stream_workers_{workers}"), |b| {
            b.iter_batched(
                || {
                    (
                        DetectorPool::new(&p.rules, &hl, DetectorConfig::default(), workers),
                        VecStream::new(records.clone(), DEFAULT_CHUNK_RECORDS),
                    )
                },
                |(mut pool, mut stream)| {
                    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
                    pool.observe_stream(&mut stream, &mut chunk).unwrap();
                    pool.finish().unwrap();
                    pool.state_size().unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
