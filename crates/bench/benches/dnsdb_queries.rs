//! Passive-DNS query throughput — the §4.2.1 analysis and the daily
//! hitlist rebuild both hammer `ips_of` / `names_of_ip` / `slds_of_ip`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_net::StudyWindow;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

fn bench(c: &mut Criterion) {
    let p = pipeline();
    let names: Vec<_> = p.observations.domains().map(|(n, _)| n.clone()).collect();
    let window = StudyWindow::FULL;
    // Collect a set of service IPs to query the inverse index with.
    let ips: Vec<_> = names
        .iter()
        .flat_map(|n| p.dnsdb.ips_of(n, &window))
        .take(500)
        .collect();

    let mut g = c.benchmark_group("dnsdb");
    g.throughput(Throughput::Elements(names.len() as u64));
    g.sample_size(20);
    g.bench_function("ips_of_all_observed_domains", |b| {
        b.iter(|| {
            names
                .iter()
                .map(|n| p.dnsdb.ips_of(n, &window).len())
                .sum::<usize>()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("dnsdb_inverse");
    g.throughput(Throughput::Elements(ips.len() as u64));
    g.bench_function("slds_of_ip_500", |b| {
        b.iter(|| {
            ips.iter()
                .map(|ip| p.dnsdb.slds_of_ip(*ip, &window).len())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
