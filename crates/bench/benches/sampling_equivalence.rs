//! Ablation for DESIGN.md §5.1: the wild simulation thins flows with
//! `Binomial(n, 1/s)` instead of materializing and per-packet-sampling
//! every packet. This bench (a) measures the cost gap that justifies the
//! substitution and (b) prints a distributional comparison showing the
//! two paths agree (mean and the all-important `P[X ≥ 1]` visibility
//! probability).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use haystack_flow::sampling::{binomial_thin, PacketSampler, RandomSampler};
use rand::rngs::SmallRng;
use rand::SeedableRng;

const FLOW_PACKETS: u64 = 2_000; // one busy device-hour
const RATE: u64 = 1_000;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampling");
    g.throughput(Throughput::Elements(FLOW_PACKETS));
    g.bench_function("per_packet_2000pkts", |b| {
        let mut s = RandomSampler::new(RATE, SmallRng::seed_from_u64(1)).unwrap();
        b.iter(|| (0..FLOW_PACKETS).filter(|_| s.sample()).count())
    });
    g.bench_function("binomial_thin_2000pkts", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| binomial_thin(FLOW_PACKETS, 1.0 / RATE as f64, &mut rng))
    });
    g.finish();

    // Distributional agreement report.
    let trials = 200_000;
    let mut s = RandomSampler::new(RATE, SmallRng::seed_from_u64(2)).unwrap();
    let mut rng = SmallRng::seed_from_u64(3);
    let (mut sum_a, mut nz_a, mut sum_b, mut nz_b) = (0u64, 0u64, 0u64, 0u64);
    for _ in 0..trials {
        let a = (0..FLOW_PACKETS).filter(|_| s.sample()).count() as u64;
        let b = binomial_thin(FLOW_PACKETS, 1.0 / RATE as f64, &mut rng);
        sum_a += a;
        sum_b += b;
        nz_a += u64::from(a >= 1);
        nz_b += u64::from(b >= 1);
    }
    let t = trials as f64;
    eprintln!(
        "# equivalence over {trials} trials of a {FLOW_PACKETS}-packet flow @ 1/{RATE}: \
         per-packet mean {:.4} / P[>=1] {:.4}  vs  thinning mean {:.4} / P[>=1] {:.4}",
        sum_a as f64 / t,
        nz_a as f64 / t,
        sum_b as f64 / t,
        nz_b as f64 / t,
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
