//! NetFlow v9 / IPFIX codec throughput — the vantage-point export and
//! collection path the testbed pipeline exercises.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::{Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::net::Ipv4Addr;

fn records(n: usize) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::from(0x6440_0000 + i as u32),
                dst: Ipv4Addr::from(0xC612_0000 + (i % 4096) as u32),
                sport: 32_768 + (i % 28_000) as u16,
                dport: if i % 7 == 0 { 8883 } else { 443 },
                proto: Proto::Tcp,
            },
            packets: 1 + (i % 9) as u64,
            bytes: 40 + (i % 1400) as u64,
            tcp_flags: TcpFlags::ACK,
            first: SimTime(i as u64),
            last: SimTime(i as u64 + 30),
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let recs = records(10_000);

    for (label, proto) in [
        ("netflow_v9", ExportProtocol::NetflowV9),
        ("ipfix", ExportProtocol::Ipfix),
    ] {
        let mut g = c.benchmark_group(label);
        g.throughput(Throughput::Elements(recs.len() as u64));
        g.sample_size(30);
        g.bench_function("encode_10k", |b| {
            b.iter(|| {
                let mut e = Exporter::new(proto, 1);
                e.export(&recs, 100).unwrap().len()
            })
        });
        // Pre-encode once for the decode side.
        let mut e = Exporter::new(proto, 1);
        let msgs = e.export(&recs, 100).unwrap();
        g.bench_function("decode_10k", |b| {
            b.iter(|| {
                let mut coll = Collector::new();
                let mut total = 0usize;
                for m in &msgs {
                    total += match proto {
                        ExportProtocol::NetflowV9 => coll.feed_netflow_v9(m.clone()).unwrap().len(),
                        ExportProtocol::Ipfix => coll.feed_ipfix(m.clone()).unwrap().len(),
                    };
                }
                assert_eq!(total, recs.len());
                total
            })
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
