//! The paper's scalability claim (§1: "can identify millions of IoT
//! devices within minutes, in a non-intrusive way from passive, sampled
//! data"): measure detector throughput in flow records per second, for
//! the pre-optimization reference path and the flattened hot path, and
//! derive the wall-clock for an ISP-scale hour.
//!
//! Output:
//!
//! * criterion-style per-variant timings on stdout;
//! * `BENCH_detector.json` — one row per variant with records/sec and
//!   the compiled-vs-reference speedup, the PR-over-PR perf trajectory
//!   file CI archives;
//! * with `--check <baseline.json>`, exits non-zero if the compiled
//!   variant's records/sec regressed more than 20 % against the
//!   committed baseline snapshot (the CI gate).

use criterion::{BatchSize, Criterion, Throughput};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::{HitList, MapHitList};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::reference::ReferenceDetector;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;
use std::time::Instant;

/// Records per measured pass.
const RECORDS: usize = 100_000;
/// Timed passes per variant; the best is reported (minimum noise floor).
const PASSES: usize = 5;
/// CI gate: fail if compiled records/sec drops below this × baseline.
const REGRESSION_FLOOR: f64 = 0.8;

/// `cargo bench` runs with the package directory as cwd; anchor all
/// artifact paths at the workspace root so the trajectory file lands in
/// one place no matter how the bench is invoked.
fn root_path(name: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(name);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

/// A synthetic sampled-flow stream: 70 % background (non-rule) records,
/// 30 % rule-IP hits — roughly the wild mix after port filtering.
fn stream(n: usize, seed: u64) -> Vec<WildRecord> {
    let p = pipeline();
    let mut rule_ips: Vec<(Ipv4Addr, u16)> = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    rule_ips.push((*ip, *port));
                }
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (dst, dport) = if rng.gen_bool(0.3) {
                rule_ips[rng.gen_range(0..rule_ips.len())]
            } else {
                (Ipv4Addr::new(151, 64, (i % 250) as u8, (i % 200) as u8), 443)
            };
            let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
            WildRecord {
                line: AnonId(rng.gen_range(0..500_000)),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport,
                proto: Proto::Tcp,
                packets: 1 + rng.gen_range(0u64..4),
                bytes: 400,
                established: true,
                hour: HourBin(0),
            }
        })
        .collect()
}

/// Best-of-[`PASSES`] records/sec for one observe strategy.
fn measure<F: FnMut(&[WildRecord]) -> usize>(records: &[WildRecord], mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let states = pass(records);
        let dt = t0.elapsed().as_secs_f64();
        assert!(states > 0, "a pass must accumulate state");
        best = best.min(dt);
    }
    records.len() as f64 / best
}

fn criterion_comparison(records: &[WildRecord]) {
    let p = pipeline();
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.sample_size(10);
    g.bench_function("reference_observe_100k", |b| {
        b.iter_batched(
            || {
                ReferenceDetector::new(
                    &p.rules,
                    MapHitList::whole_window(&p.rules),
                    DetectorConfig::default(),
                )
            },
            |mut det| {
                for r in records {
                    det.observe_wild(r);
                }
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("compiled_observe_100k", |b| {
        b.iter_batched(
            || Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default()),
            |mut det| {
                for r in records {
                    det.observe_wild(r);
                }
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("compiled_observe_chunk_100k", |b| {
        b.iter_batched(
            || Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default()),
            |mut det| {
                det.observe_chunk(records);
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Load the compiled variant's records/sec from a baseline JSON file.
fn baseline_rps(path: &str) -> f64 {
    let text = std::fs::read_to_string(root_path(path)).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let doc = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: baseline {path} is not JSON: {e:?}");
        std::process::exit(1);
    });
    doc.as_array()
        .and_then(|rows| {
            rows.iter().find(|r| {
                r.get("variant").and_then(|v| v.as_str()) == Some("compiled")
            })
        })
        .and_then(|row| row.get("records_per_sec"))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| {
            eprintln!("error: baseline {path} has no compiled records_per_sec row");
            std::process::exit(1);
        })
}

fn main() {
    // Cargo invokes benches with `--bench` (and possibly a filter);
    // only `--check <file>` is meaningful here.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let check = argv
        .iter()
        .position(|a| a == "--check")
        .map(|i| argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --check needs a baseline path");
            std::process::exit(2);
        }));

    let p = pipeline();
    let records = stream(RECORDS, 7);
    criterion_comparison(&records);

    // Before/after measurement for the trajectory file. "reference" is
    // the pre-optimization implementation (SipHash tuple maps, per-match
    // entry clone over the HashMap hitlist); "compiled" is the flattened
    // hot path; "compiled_chunk" adds the batch entry point the pool
    // shards use.
    let reference_rps = measure(&records, |recs| {
        let mut det = ReferenceDetector::new(
            &p.rules,
            MapHitList::whole_window(&p.rules),
            DetectorConfig::default(),
        );
        for r in recs {
            det.observe_wild(r);
        }
        det.state_size()
    });
    let compiled_rps = measure(&records, |recs| {
        let mut det =
            Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
        for r in recs {
            det.observe_wild(r);
        }
        det.state_size()
    });
    let chunk_rps = measure(&records, |recs| {
        let mut det =
            Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
        det.observe_chunk(recs);
        det.state_size()
    });

    println!("variant\trecords\trecords_per_sec\tspeedup_vs_reference");
    let mut rows = Vec::new();
    for (variant, rps) in [
        ("reference", reference_rps),
        ("compiled", compiled_rps),
        ("compiled_chunk", chunk_rps),
    ] {
        let speedup = rps / reference_rps;
        println!("{variant}\t{RECORDS}\t{rps:.0}\t{speedup:.2}");
        rows.push(serde_json::json!({
            "bench": "detector_throughput",
            "variant": variant,
            "records": RECORDS,
            "passes": PASSES,
            "records_per_sec": rps,
            "speedup_vs_reference": speedup,
        }));
    }
    // The §1 derivation: a 15 M-line ISP hour is ~6 M sampled records
    // (≈ 2 records per IoT line-hour on ~20 % of lines).
    eprintln!(
        "# compiled ≈ {:.2} M records/s ({:.2}× reference) → a 15 M-line ISP hour (~6 M \
         records) in {:.1} s",
        compiled_rps / 1e6,
        compiled_rps / reference_rps,
        6e6 / compiled_rps
    );

    let doc = serde_json::Value::Array(rows);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(root_path("BENCH_detector.json"), &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_detector.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_detector.json");

    if let Some(path) = check {
        let base = baseline_rps(&path);
        let floor = REGRESSION_FLOOR * base;
        if compiled_rps < floor {
            eprintln!(
                "error: compiled {compiled_rps:.0} records/s regressed more than 20 % \
                 against baseline {base:.0} (floor {floor:.0})"
            );
            std::process::exit(1);
        }
        eprintln!("# regression gate OK: {compiled_rps:.0} >= {floor:.0} ({path})");
    }
}
