//! The paper's scalability claim (§1: "can identify millions of IoT
//! devices within minutes, in a non-intrusive way from passive, sampled
//! data"): measure detector throughput in flow records per second and
//! derive the wall-clock for an ISP-scale hour.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

/// A synthetic sampled-flow stream: 70 % background (non-rule) records,
/// 30 % rule-IP hits — roughly the wild mix after port filtering.
fn stream(n: usize, seed: u64) -> Vec<WildRecord> {
    let p = pipeline();
    let mut rule_ips: Vec<(Ipv4Addr, u16)> = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    rule_ips.push((*ip, *port));
                }
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (dst, dport) = if rng.gen_bool(0.3) {
                rule_ips[rng.gen_range(0..rule_ips.len())]
            } else {
                (Ipv4Addr::new(151, 64, (i % 250) as u8, (i % 200) as u8), 443)
            };
            let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
            WildRecord {
                line: AnonId(rng.gen_range(0..500_000)),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport,
                proto: Proto::Tcp,
                packets: 1 + rng.gen_range(0u64..4),
                bytes: 400,
                established: true,
                hour: HourBin(0),
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let p = pipeline();
    let records = stream(100_000, 7);

    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.sample_size(10);
    g.bench_function("observe_100k_records", |b| {
        b.iter_batched(
            || Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default()),
            |mut det| {
                for r in &records {
                    det.observe_wild(r);
                }
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();

    // One-shot derivation for the report: records/sec → minutes per
    // ISP-hour at 15 M lines (≈ 2 sampled records per IoT line-hour on
    // ~20 % of lines ⇒ ~6 M records/hour).
    let mut det = Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
    let t0 = std::time::Instant::now();
    for r in &records {
        det.observe_wild(r);
    }
    let rps = records.len() as f64 / t0.elapsed().as_secs_f64();
    eprintln!(
        "# detector throughput ≈ {:.2} M records/s → a 15 M-line ISP hour (~6 M records) \
         in {:.1} s",
        rps / 1e6,
        6e6 / rps
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
