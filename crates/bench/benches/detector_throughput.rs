//! The paper's scalability claim (§1: "can identify millions of IoT
//! devices within minutes, in a non-intrusive way from passive, sampled
//! data"): measure detector throughput in flow records per second, for
//! the pre-optimization reference path, the flattened hot path, and the
//! batched fingerprint-gated path at the miss rates a wild deployment
//! actually sees, and derive the wall-clock for an ISP-scale hour.
//!
//! The wild workload is *miss-dominated* — the overwhelming majority of
//! sampled records match no IoT rule — so the headline variants here are
//! the `compiled_chunk_missNN` rows: `observe_chunk` over streams where
//! 50 % / 90 % / 99 % of records miss every rule key. Every miss record
//! carries a *distinct* destination, because that is what makes the
//! workload honest: with only a handful of recycled miss keys the probe
//! table stays cache-resident and an ungated probe looks artificially
//! cheap; real traffic's key diversity is exactly what the fingerprint
//! front gate exists to absorb (one L1 byte per miss instead of a
//! cache-missing slot probe). The `ungated_probe_miss99` comparator
//! measures that pre-gate cost in the same run, so the gate's speedup is
//! recomputed — not trusted from a stale snapshot — every time the bench
//! runs.
//!
//! Output:
//!
//! * criterion-style per-variant timings on stdout;
//! * `BENCH_detector.json` — one row per variant with records/sec, the
//!   compiled-vs-reference speedup, and (miss variants) the gate-vs-
//!   ungated speedup: the PR-over-PR perf trajectory file CI archives;
//! * with `--check <baseline.json>`, exits non-zero if the `compiled`
//!   variant or the miss-dominated `compiled_chunk_miss99` variant
//!   regressed more than 20 % against the committed baseline snapshot
//!   (the CI gate).

use criterion::{BatchSize, Criterion, Throughput};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::{HitList, MapHitList};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::reference::ReferenceDetector;
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::WildRecord;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;
use std::time::Instant;

/// Records per measured pass.
const RECORDS: usize = 100_000;
/// Timed passes per variant; the best is reported (minimum noise floor).
const PASSES: usize = 5;
/// CI gate: fail if a gated variant's records/sec drops below this ×
/// its baseline row.
const REGRESSION_FLOOR: f64 = 0.8;
/// The gated variants `--check` holds against the committed baseline:
/// the legacy 30 %-hit compiled path and the miss-dominated headline.
const GATED_VARIANTS: [&str; 2] = ["compiled", "compiled_chunk_miss99"];

/// `cargo bench` runs with the package directory as cwd; anchor all
/// artifact paths at the workspace root so the trajectory file lands in
/// one place no matter how the bench is invoked.
fn root_path(name: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(name);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

/// Every (ip, port) combination any rule indexes — the hit vocabulary.
fn rule_keys() -> Vec<(Ipv4Addr, u16)> {
    let p = pipeline();
    let mut keys = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    keys.push((*ip, *port));
                }
            }
        }
    }
    keys
}

/// A synthetic sampled-flow stream with the given rule-hit rate. Hits
/// draw uniformly from the rule keys; every miss record gets a distinct
/// destination (see the module doc — recycled miss keys would let the
/// probe table hide in cache and understate the gate's value).
fn stream(n: usize, seed: u64, hit_rate: f64) -> Vec<WildRecord> {
    let keys = rule_keys();
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (dst, dport) = if rng.gen_bool(hit_rate) {
                keys[rng.gen_range(0..keys.len())]
            } else {
                (Ipv4Addr::new(30 + (i >> 16) as u8, (i >> 8) as u8, i as u8, 1), 443)
            };
            let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
            WildRecord {
                line: AnonId(rng.gen_range(0..500_000)),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport,
                proto: Proto::Tcp,
                packets: 1 + rng.gen_range(0u64..4),
                bytes: 400,
                established: true,
                hour: HourBin(0),
            }
        })
        .collect()
}

/// Best-of-[`PASSES`] records/sec for one observe strategy, fresh
/// detector per pass (state growth included in the timing — the
/// before/after comparison the legacy variants have always used).
fn measure<F: FnMut(&[WildRecord]) -> usize>(records: &[WildRecord], mut pass: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        let states = pass(records);
        let dt = t0.elapsed().as_secs_f64();
        assert!(states > 0, "a pass must accumulate state");
        best = best.min(dt);
    }
    records.len() as f64 / best
}

/// Best-of-[`PASSES`] records/sec for `observe_chunk` on a *warm*
/// detector: one untimed pass first, so the scratch columns are sized
/// and every (line, rule) state the stream can touch exists. This is
/// the steady state an ISP-scale deployment lives in (`alloc_free.rs`
/// pins it allocation-free) — first-touch state-map growth belongs to
/// the first hour, not to the per-record cost model. On a miss-heavy
/// stream a fresh-detector pass would spend a measurable share of its
/// time in exactly those one-time inserts.
fn measure_warm(records: &[WildRecord]) -> f64 {
    let p = pipeline();
    let mut det =
        Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
    det.observe_chunk(records);
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let t0 = Instant::now();
        det.observe_chunk(records);
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
    }
    // Miss-dominated passes may legitimately accumulate no detection
    // state; records observed is the liveness check instead.
    assert!(det.hot_stats().records > 0, "a pass must observe records");
    records.len() as f64 / best
}

/// Records/sec for the *ungated* probe path on a stream: what every
/// record cost before the fingerprint front gate existed — pack, hash,
/// full open-addressing probe — measured through the public
/// [`HitList::lookup_ungated`] bypass on the same compiled table.
fn measure_ungated(records: &[WildRecord]) -> f64 {
    let p = pipeline();
    let hl = HitList::whole_window(&p.rules);
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let mut matches = 0usize;
        let t0 = Instant::now();
        for r in records {
            matches += hl.lookup_ungated(r.dst, r.dport).len();
        }
        let dt = t0.elapsed().as_secs_f64();
        assert!(matches > 0, "the stream must contain rule hits");
        best = best.min(dt);
    }
    records.len() as f64 / best
}

fn criterion_comparison(records: &[WildRecord]) {
    let p = pipeline();
    let mut c = Criterion::default();
    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.sample_size(10);
    g.bench_function("reference_observe_100k", |b| {
        b.iter_batched(
            || {
                ReferenceDetector::new(
                    &p.rules,
                    MapHitList::whole_window(&p.rules),
                    DetectorConfig::default(),
                )
            },
            |mut det| {
                for r in records {
                    det.observe_wild(r);
                }
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("compiled_observe_100k", |b| {
        b.iter_batched(
            || Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default()),
            |mut det| {
                for r in records {
                    det.observe_wild(r);
                }
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.bench_function("compiled_observe_chunk_100k", |b| {
        b.iter_batched(
            || Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default()),
            |mut det| {
                det.observe_chunk(records);
                det.state_size()
            },
            BatchSize::LargeInput,
        )
    });
    g.finish();
}

/// Load a named variant's records/sec from a baseline JSON file.
fn baseline_rps(path: &str, variant: &str) -> f64 {
    let text = std::fs::read_to_string(root_path(path)).unwrap_or_else(|e| {
        eprintln!("error: cannot read baseline {path}: {e}");
        std::process::exit(1);
    });
    let doc: serde_json::Value = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("error: baseline {path} is not JSON: {e:?}");
        std::process::exit(1);
    });
    doc.as_array()
        .and_then(|rows| {
            rows.iter().find(|r| r.get("variant").and_then(|v| v.as_str()) == Some(variant))
        })
        .and_then(|row| row.get("records_per_sec"))
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| {
            eprintln!("error: baseline {path} has no {variant} records_per_sec row");
            std::process::exit(1);
        })
}

fn main() {
    // Cargo invokes benches with `--bench` (and possibly a filter);
    // only `--check <file>` is meaningful here.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let check = argv.iter().position(|a| a == "--check").map(|i| {
        argv.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("error: --check needs a baseline path");
            std::process::exit(2);
        })
    });

    let p = pipeline();
    let hit30 = stream(RECORDS, 7, 0.3);
    criterion_comparison(&hit30);

    // Before/after measurement for the trajectory file. "reference" is
    // the pre-optimization implementation (SipHash tuple maps, per-match
    // entry clone over the HashMap hitlist); "compiled" is the flattened
    // hot path; "compiled_chunk" adds the batched fingerprint-gated
    // entry point the pool shards use. All three keep the legacy 30 %-
    // hit mix and fresh-per-pass semantics for trajectory continuity.
    let reference_rps = measure(&hit30, |recs| {
        let mut det = ReferenceDetector::new(
            &p.rules,
            MapHitList::whole_window(&p.rules),
            DetectorConfig::default(),
        );
        for r in recs {
            det.observe_wild(r);
        }
        det.state_size()
    });
    let compiled_rps = measure(&hit30, |recs| {
        let mut det =
            Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
        for r in recs {
            det.observe_wild(r);
        }
        det.state_size()
    });
    let chunk_rps = measure(&hit30, |recs| {
        let mut det =
            Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
        det.observe_chunk(recs);
        det.state_size()
    });

    // The miss-dominated rows: steady-state `observe_chunk` at wild
    // miss rates, plus the ungated comparator that reconstructs the
    // pre-gate per-record probe cost on the 99 %-miss stream.
    let miss99 = stream(RECORDS, 7, 0.01);
    let miss_rows = [
        ("compiled_chunk_miss50", measure_warm(&stream(RECORDS, 7, 0.50))),
        ("compiled_chunk_miss90", measure_warm(&stream(RECORDS, 7, 0.10))),
        ("compiled_chunk_miss99", measure_warm(&miss99)),
    ];
    let ungated_rps = measure_ungated(&miss99);

    println!("variant\trecords\trecords_per_sec\tspeedup_vs_reference");
    let mut rows = Vec::new();
    for (variant, rps) in [
        ("reference", reference_rps),
        ("compiled", compiled_rps),
        ("compiled_chunk", chunk_rps),
    ] {
        let speedup = rps / reference_rps;
        println!("{variant}\t{RECORDS}\t{rps:.0}\t{speedup:.2}");
        rows.push(serde_json::json!({
            "bench": "detector_throughput",
            "variant": variant,
            "records": RECORDS,
            "passes": PASSES,
            "records_per_sec": rps,
            "speedup_vs_reference": speedup,
        }));
    }
    for (variant, rps) in miss_rows {
        let mut row = serde_json::json!({
            "bench": "detector_throughput",
            "variant": variant,
            "records": RECORDS,
            "passes": PASSES,
            "records_per_sec": rps,
        });
        // The ungated comparator runs on the 99 %-miss stream, so the
        // gate-vs-ungated ratio is only meaningful on that row.
        if variant == "compiled_chunk_miss99" {
            let vs_ungated = rps / ungated_rps;
            row["speedup_vs_ungated_probe"] = serde_json::json!(vs_ungated);
            println!("{variant}\t{RECORDS}\t{rps:.0}\t(×{vs_ungated:.2} vs ungated probe)");
        } else {
            println!("{variant}\t{RECORDS}\t{rps:.0}");
        }
        rows.push(row);
    }
    println!("ungated_probe_miss99\t{RECORDS}\t{ungated_rps:.0}\t1.00");
    rows.push(serde_json::json!({
        "bench": "detector_throughput",
        "variant": "ungated_probe_miss99",
        "records": RECORDS,
        "passes": PASSES,
        "records_per_sec": ungated_rps,
    }));

    // The §1 derivation: a 15 M-line ISP hour is ~6 M sampled records
    // (≈ 2 records per IoT line-hour on ~20 % of lines).
    let miss99_rps = miss_rows[2].1;
    eprintln!(
        "# compiled ≈ {:.2} M records/s ({:.2}× reference) → a 15 M-line ISP hour (~6 M \
         records) in {:.1} s",
        compiled_rps / 1e6,
        compiled_rps / reference_rps,
        6e6 / compiled_rps
    );
    eprintln!(
        "# miss-dominated steady state ≈ {:.1} M records/s ({:.2}× the ungated probe path \
         at {:.1} M)",
        miss99_rps / 1e6,
        miss99_rps / ungated_rps,
        ungated_rps / 1e6
    );

    let doc = serde_json::Value::Array(rows);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(root_path("BENCH_detector.json"), &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_detector.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_detector.json");

    if let Some(path) = check {
        let current = |variant: &str| match variant {
            "compiled" => compiled_rps,
            "compiled_chunk_miss99" => miss99_rps,
            _ => unreachable!("gated variant list out of sync"),
        };
        let mut failed = false;
        for variant in GATED_VARIANTS {
            let rps = current(variant);
            let base = baseline_rps(&path, variant);
            let floor = REGRESSION_FLOOR * base;
            if rps < floor {
                eprintln!(
                    "error: {variant} {rps:.0} records/s regressed more than 20 % against \
                     baseline {base:.0} (floor {floor:.0})"
                );
                failed = true;
            } else {
                eprintln!("# regression gate OK: {variant} {rps:.0} >= {floor:.0} ({path})");
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
