//! The §11 zero-overhead claim, measured: run the identical
//! instrumented pipeline shape — chunked stream wrapped in
//! [`InstrumentedStream`], detector batches flushed into
//! [`HotStatsCounters`] — once with telemetry runtime-disabled and once
//! enabled, and report the enabled/disabled time ratio.
//!
//! Both runs compile the `telemetry` feature in; the only difference is
//! the runtime flag, which is exactly the configuration the acceptance
//! gate cares about ("compiled in but disabled" must not tax the hot
//! path, "enabled" must stay under 2 %).
//!
//! Output:
//!
//! * a per-variant records/sec table on stdout;
//! * `BENCH_telemetry.json` — the trajectory row CI archives;
//! * with `--check`, exits non-zero if the enabled variant costs more
//!   than [`OVERHEAD_CEILING`] over the disabled one.

use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::hitlist::HitList;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::telemetry::{self, HotStats, HotStatsCounters, InstrumentedStream};
use haystack_net::ports::Proto;
use haystack_net::{AnonId, HourBin, Prefix4};
use haystack_wild::{RecordChunk, RecordStream, VecStream, WildRecord, DEFAULT_CHUNK_RECORDS};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;
use std::time::Instant;

/// Records per measured pass.
const RECORDS: usize = 200_000;
/// Timed passes per variant; the best is reported (minimum noise floor).
const PASSES: usize = 9;
/// CI gate: enabled telemetry may cost at most this fraction extra.
const OVERHEAD_CEILING: f64 = 0.02;

fn root_path(name: &str) -> std::path::PathBuf {
    let p = std::path::Path::new(name);
    if p.is_absolute() {
        return p.to_path_buf();
    }
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join(name)
}

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

/// The detector_throughput wild mix: 70 % background, 30 % rule hits.
fn stream(n: usize, seed: u64) -> Vec<WildRecord> {
    let p = pipeline();
    let mut rule_ips: Vec<(Ipv4Addr, u16)> = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    rule_ips.push((*ip, *port));
                }
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (dst, dport) = if rng.gen_bool(0.3) {
                rule_ips[rng.gen_range(0..rule_ips.len())]
            } else {
                (Ipv4Addr::new(151, 64, (i % 250) as u8, (i % 200) as u8), 443)
            };
            let src = Ipv4Addr::new(100, 64, rng.gen(), rng.gen());
            WildRecord {
                line: AnonId(rng.gen_range(0..500_000)),
                line_slash24: Prefix4::slash24_of(src),
                src_ip: src,
                dst,
                dport,
                proto: Proto::Tcp,
                packets: 1 + rng.gen_range(0u64..4),
                bytes: 400,
                established: true,
                hour: HourBin(0),
            }
        })
        .collect()
}

/// One timed pass of the instrumented shape. The stream wrapper and the
/// counter handles are (re)bound inside the pass *after* the runtime
/// flag is set, exactly as a real stage binds them at construction.
fn timed_pass(records: &[WildRecord], scope: &telemetry::Scope) -> (f64, usize) {
    let p = pipeline();
    let mut det =
        Detector::new(&p.rules, HitList::whole_window(&p.rules), DetectorConfig::default());
    let inner = VecStream::new(records.to_vec(), DEFAULT_CHUNK_RECORDS);
    let mut stream = InstrumentedStream::new(inner, scope);
    let hot = HotStatsCounters::new(&scope.sub("shard0"));
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut flushed = HotStats::default();
    let t0 = Instant::now();
    while stream.next_chunk(&mut chunk) {
        det.observe_chunk(&chunk.records);
        let now = det.hot_stats();
        hot.flush(now.since(&flushed));
        flushed = now;
    }
    (t0.elapsed().as_secs_f64(), det.state_size())
}

/// Best-of-[`PASSES`] records/sec with telemetry on or off.
fn measure(records: &[WildRecord], enabled: bool, scope_name: &str) -> f64 {
    telemetry::set_enabled(enabled);
    let scope = telemetry::Scope::named(scope_name);
    let mut best = f64::INFINITY;
    for _ in 0..PASSES {
        let (dt, states) = timed_pass(records, &scope);
        assert!(states > 0, "a pass must accumulate state");
        best = best.min(dt);
    }
    telemetry::set_enabled(false);
    records.len() as f64 / best
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let check = argv.iter().any(|a| a == "--check");

    let records = stream(RECORDS, 7);
    // Warm both variants once (page-in, hitlist build) before timing,
    // then interleave-fair: disabled first, enabled second.
    let _ = timed_pass(&records, &telemetry::Scope::named("overhead.warmup"));
    let off_rps = measure(&records, false, "overhead.off");
    let on_rps = measure(&records, true, "overhead.on");
    let overhead = off_rps / on_rps - 1.0;

    // Sanity: the enabled pass must actually have counted the workload.
    let snap = telemetry::global().snapshot();
    let counted = snap.counter("overhead.on.shard0.records_observed").unwrap_or(0);
    assert_eq!(
        counted as usize,
        RECORDS * PASSES,
        "enabled telemetry must count every record of every pass"
    );
    assert_eq!(
        snap.counter("overhead.off.shard0.records_observed").unwrap_or(0),
        0,
        "disabled telemetry must count nothing"
    );

    println!("variant\trecords\trecords_per_sec");
    println!("telemetry_off\t{RECORDS}\t{off_rps:.0}");
    println!("telemetry_on\t{RECORDS}\t{on_rps:.0}");
    println!("# enabled overhead: {:.2}% (ceiling {:.0}%)", overhead * 100.0, OVERHEAD_CEILING * 100.0);

    let doc = serde_json::Value::Array(vec![serde_json::json!({
        "bench": "telemetry_overhead",
        "records": RECORDS,
        "passes": PASSES,
        "off_records_per_sec": off_rps,
        "on_records_per_sec": on_rps,
        "overhead": overhead,
        "ceiling": OVERHEAD_CEILING,
    })]);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write(root_path("BENCH_telemetry.json"), &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_telemetry.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_telemetry.json");

    if check {
        if overhead > OVERHEAD_CEILING {
            eprintln!(
                "error: enabled telemetry costs {:.2}% (> {:.0}% ceiling)",
                overhead * 100.0,
                OVERHEAD_CEILING * 100.0
            );
            std::process::exit(1);
        }
        eprintln!(
            "# overhead gate OK: {:.2}% <= {:.0}%",
            overhead * 100.0,
            OVERHEAD_CEILING * 100.0
        );
    }
}
