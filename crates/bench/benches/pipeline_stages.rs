//! Cost of the offline pipeline stages (§4): domain classification,
//! DNSDB-based dedication, rule generation, and the daily hitlist
//! rebuild. These run once per day in a deployment — the bench documents
//! that they are negligible next to the streaming path.

use criterion::{criterion_group, criterion_main, Criterion};
use haystack_core::dedicated::{dnsdb_verdict, InfraKnowledge};
use haystack_core::domains::{classify, StaticWebIntelligence};
use haystack_core::hitlist::HitList;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::rules::{generate, RuleInputs};
use haystack_dns::DomainName;
use haystack_net::{DayBin, StudyWindow};
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

fn bench(c: &mut Criterion) {
    let p = pipeline();

    c.bench_function("classify_all_observed_domains", |b| {
        let intel = StaticWebIntelligence::for_catalog(&p.catalog);
        let majority = DomainName::parse("amazon-iot.com").unwrap();
        b.iter(|| {
            p.observations
                .domains()
                .map(|(name, usage)| classify(&p.catalog, &intel, name, usage, Some(&majority)))
                .filter(|c| matches!(c, haystack_core::domains::DomainClass::Primary))
                .count()
        })
    });

    c.bench_function("dnsdb_dedication_all_domains", |b| {
        let infra = InfraKnowledge::new([DomainName::parse("cloudnova.com").unwrap()]);
        let window = StudyWindow::FULL;
        b.iter(|| {
            p.observations
                .domains()
                .map(|(name, _)| dnsdb_verdict(&p.dnsdb, &infra, name, &window))
                .collect::<Vec<_>>()
        })
    });

    c.bench_function("rule_generation", |b| {
        b.iter(|| {
            let inputs = RuleInputs {
                catalog: &p.catalog,
                observations: &p.observations,
                classification: &p.classification,
                dedication: &p.dedication,
            };
            generate(&inputs).rules.len()
        })
    });

    c.bench_function("daily_hitlist_rebuild", |b| {
        b.iter(|| HitList::for_day(&p.rules, &p.dnsdb, DayBin(3)).len())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
