//! Ablation for DESIGN.md §5.2: the detector indexes rules by
//! (service IP, port) in a hash map. The alternative — scanning every
//! rule's domain IP sets per record — is what a naive implementation
//! does; this bench quantifies the gap that makes ISP-scale streaming
//! possible.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use haystack_core::hitlist::HitList;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;
use std::sync::OnceLock;

fn pipeline() -> &'static Pipeline {
    static P: OnceLock<Pipeline> = OnceLock::new();
    P.get_or_init(|| Pipeline::run(PipelineConfig::fast(42)))
}

fn lookups(n: usize) -> Vec<(Ipv4Addr, u16)> {
    let p = pipeline();
    let mut rule_ips: Vec<(Ipv4Addr, u16)> = Vec::new();
    for r in &p.rules.rules {
        for d in &r.domains {
            for ip in &d.ips {
                for port in &d.ports {
                    rule_ips.push((*ip, *port));
                }
            }
        }
    }
    let mut rng = SmallRng::seed_from_u64(11);
    (0..n)
        .map(|_| {
            if rng.gen_bool(0.3) {
                rule_ips[rng.gen_range(0..rule_ips.len())]
            } else {
                (Ipv4Addr::new(151, 64, rng.gen(), rng.gen()), 443)
            }
        })
        .collect()
}

fn bench(c: &mut Criterion) {
    let p = pipeline();
    let hl = HitList::whole_window(&p.rules);
    let queries = lookups(100_000);

    let mut g = c.benchmark_group("rule_matching");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.sample_size(10); // the linear scan is deliberately slow
    g.bench_function("hash_index", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (ip, port) in &queries {
                hits += hl.lookup(*ip, *port).len();
            }
            hits
        })
    });
    g.bench_function("linear_scan", |b| {
        b.iter(|| {
            let mut hits = 0usize;
            for (ip, port) in &queries {
                for r in &p.rules.rules {
                    for d in &r.domains {
                        if d.ports.contains(port) && d.ips.contains(ip) {
                            hits += 1;
                        }
                    }
                }
            }
            hits
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
