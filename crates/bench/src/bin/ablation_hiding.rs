//! Ablation: §7.4's evasion strategies, measured.
//!
//! For one camera class (Yi Camera), re-run the *entire* pipeline —
//! ground truth, classification, dedication, rules — after each vendor
//! countermeasure, then compare what the ISP can still see:
//!
//! * baseline            — detected quickly, usage inferable;
//! * move to CDN         — §4.2.3 removes the service: undetectable;
//! * rate-limit firmware — detectable, but detection time stretches;
//! * constant-rate shaping — *more* detectable, but usage inference dies.

use haystack_bench::Args;
use haystack_core::crosscheck::{detection_times, CrosscheckConfig};
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::countermeasures::{apply, Countermeasure};
use haystack_testbed::ExperimentKind;

const CLASS: &str = "Yi Camera";

fn run(label: &str, catalog: haystack_testbed::catalog::Catalog, args: &Args) {
    let config = if args.fast {
        PipelineConfig::fast(args.seed)
    } else {
        PipelineConfig { seed: args.seed, ..Default::default() }
    };
    eprintln!("# [{label}] rebuilding pipeline ...");
    let p = Pipeline::run_with_catalog(config, catalog);
    let rule = p.rules.rule(CLASS);
    let excluded = p
        .rules
        .undetectable
        .iter()
        .find(|(c, _)| p.rules.class_name(*c) == CLASS);
    let hours = if args.fast { Some(8) } else { None };
    let detect = |kind: ExperimentKind| -> String {
        let times = detection_times(
            &p,
            &CrosscheckConfig { sampling: 1_000, kind, hours },
            &[0.4],
        );
        match times.iter().find(|t| t.class == CLASS) {
            Some(t) => match t.hours_to_detect {
                Some(h) => format!("{h} h"),
                None => "never (window)".into(),
            },
            None => "no rule".into(),
        }
    };
    let usage_indicators = rule
        .map(|r| r.domains.iter().filter(|d| d.usage_indicator).count())
        .unwrap_or(0);
    println!(
        "{label}\t{}\t{}\t{}\t{}\t{}",
        rule.map(|r| r.domains.len().to_string()).unwrap_or_else(|| "-".into()),
        excluded.map(|(_, r)| format!("{r:?}")).unwrap_or_else(|| "detectable".into()),
        detect(ExperimentKind::Active),
        detect(ExperimentKind::Idle),
        if usage_indicators > 0 { "yes" } else { "no" },
    );
}

fn main() {
    let args = Args::parse();
    println!("# ablation_hiding: {CLASS} under §7.4 countermeasures (D=0.4, sampling 1/1000)");
    println!("variant\trule_domains\tstatus\tdetect_active\tdetect_idle\tusage_inferable");
    let base = standard_catalog();
    run("baseline", base.clone(), &args);
    run(
        "move_to_cdn",
        apply(&base, CLASS, Countermeasure::MoveToSharedInfrastructure),
        &args,
    );
    run(
        "rate_limit_5pph",
        apply(&base, CLASS, Countermeasure::RateLimit { max_idle_pph: 5.0 }),
        &args,
    );
    run(
        "constant_shaping_120pph",
        apply(&base, CLASS, Countermeasure::ConstantRateShaping { level_pph: 120.0 }),
        &args,
    );
    println!("# paper §7.4: shared infrastructure is 'a good way to hide IoT services';");
    println!("# shaping ([36]) kills usage inference but leaves — or strengthens — presence detection.");
}
