//! `haystack serve` ingest-path benchmark: the daemon's hot loop
//! (bounded admission queue → NetFlow collector → WildRecord conversion
//! → usage/staleness → sharded detector pool) measured in-process, plus
//! a controlled 2× overload burst against the shedding admission queue.
//!
//! Two phases, two claims:
//!
//! * **steady** — the lossless (TCP-replay) path: a producer thread
//!   `push`es datagrams through the bounded queue while the consumer
//!   runs the full serve ingest pipeline. Reports records/s and peak
//!   RSS (`VmHWM`).
//! * **overload** — a producer `offer`s datagrams at 2× the rate of a
//!   deliberately slowed consumer. The queue must shed (not block, not
//!   grow) and the accounting must balance *exactly*:
//!   `received == processed + shed`.
//!
//! Results go to stdout as TSV and to `BENCH_serve.json` (one row per
//! phase). `--check` turns the accounting balance and a nonzero shed
//! into a CI gate (exit 1 on violation).

use bytes::Bytes;
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::DetectorPool;
use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_core::usage::{UsageConfig, UsageTracker};
use haystack_core::staleness::StalenessMonitor;
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::listener::AdmissionQueue;
use haystack_flow::{Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::{Anonymizer, Prefix4, SimTime};
use haystack_wild::WildRecord;
use std::net::Ipv4Addr;
use std::time::{Duration, Instant};

/// Synthetic flow records across a /16 of lines (same shape as the
/// daemon's loopback exerciser).
fn synthetic_records(n: usize, seed: u64) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(seed);
            FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, (x >> 8) as u8, x as u8),
                    dst: Ipv4Addr::new(198, 18, 0, (x >> 16) as u8),
                    sport: 40_000 + (i % 1_000) as u16,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 1 + (x % 5),
                bytes: 60 * (1 + (x % 5)),
                tcp_flags: TcpFlags::ACK,
                first: SimTime(i as u64),
                last: SimTime(i as u64 + 30),
            }
        })
        .collect()
}

/// Export `records` as NetFlow v9 datagrams from one source.
fn datagrams(records: &[FlowRecord], source: u32) -> Vec<Bytes> {
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, source);
    let mut out = Vec::new();
    for chunk in records.chunks(512) {
        out.extend(exporter.export(chunk, 0).expect("export"));
    }
    out
}

/// Peak resident set size in KiB, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

/// The serve engine's per-datagram ingest work, minus the daemon shell.
struct Ingest {
    collector: Collector,
    pool: DetectorPool,
    usage: UsageTracker,
    staleness: StalenessMonitor,
    anon: Anonymizer,
    records: u64,
    decode_errors: u64,
}

impl Ingest {
    fn new(p: &Pipeline, workers: usize) -> Ingest {
        let hitlist = HitList::whole_window(&p.rules);
        let pool = DetectorPool::new(&p.rules, &hitlist, DetectorConfig::default(), workers);
        let usage =
            UsageTracker::new(std::sync::Arc::clone(&p.rules), hitlist.clone(), UsageConfig::default());
        let staleness = StalenessMonitor::new(hitlist);
        Ingest {
            collector: Collector::new(),
            pool,
            usage,
            staleness,
            anon: Anonymizer::new(11, 11 ^ 0x9E37_79B9_7F4A_7C15),
            records: 0,
            decode_errors: 0,
        }
    }

    fn feed(&mut self, datagram: Bytes) {
        match self.collector.feed(datagram) {
            Ok(records) => {
                self.records += records.len() as u64;
                let wild: Vec<WildRecord> = records
                    .iter()
                    .map(|r| {
                        let w = WildRecord {
                            line: self.anon.anonymize(r.key.src),
                            line_slash24: Prefix4::slash24_of(r.key.src),
                            src_ip: r.key.src,
                            dst: r.key.dst,
                            dport: r.key.dport,
                            proto: r.key.proto,
                            packets: r.packets,
                            bytes: r.bytes,
                            established: r.tcp_flags.is_established_evidence(),
                            hour: r.first.hour(),
                        };
                        self.usage.observe(&w);
                        self.staleness.observe(&w);
                        w
                    })
                    .collect();
                self.pool.observe_records(&wild).expect("pool");
            }
            Err(_) => self.decode_errors += 1,
        }
    }
}

fn main() {
    let mut fast = false;
    let mut check = false;
    let mut seed = 42u64;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--fast" => fast = true,
            "--check" => check = true,
            "--seed" => seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            other => {
                eprintln!("usage: serve_ingest [--fast] [--check] [--seed N] (got {other:?})");
                std::process::exit(2);
            }
        }
    }

    let p = Pipeline::run(if fast {
        PipelineConfig::fast(seed)
    } else {
        PipelineConfig { seed, ..Default::default() }
    });
    let n_records = if fast { 100_000 } else { 1_000_000 };
    let records = synthetic_records(n_records, seed);
    let wire = datagrams(&records, 7);
    println!("# serve_ingest: {n_records} records in {} datagrams", wire.len());
    println!("phase\tdatagrams\trecords\trecords_per_sec\tshed\tpeak_rss_kb");
    let mut rows = Vec::new();

    // ---- steady phase: lossless path at full speed -------------------
    let workers = 4;
    let mut ingest = Ingest::new(&p, workers);
    let (queue, rx, stats) = AdmissionQueue::bounded(1_024);
    let producer = {
        let queue = queue.clone();
        let wire = wire.clone();
        std::thread::spawn(move || {
            for d in wire {
                queue.push(d);
            }
        })
    };
    drop(queue);
    let t0 = Instant::now();
    while let Ok(d) = rx.recv() {
        ingest.feed(d);
    }
    producer.join().unwrap();
    ingest.pool.finish().expect("pool finish");
    let elapsed = t0.elapsed().as_secs_f64();
    let rps = ingest.records as f64 / elapsed.max(1e-9);
    let rss = peak_rss_kb();
    assert_eq!(stats.shed(), 0, "lossless path shed datagrams");
    assert_eq!(ingest.records as usize, n_records, "records lost on the lossless path");
    println!(
        "steady\t{}\t{}\t{rps:.0}\t0\t{}",
        stats.admitted(),
        ingest.records,
        rss.map_or_else(|| "-".into(), |k| k.to_string())
    );
    rows.push(serde_json::json!({
        "bench": "serve_ingest",
        "phase": "steady",
        "workers": workers,
        "datagrams": stats.admitted(),
        "records": ingest.records,
        "records_per_sec": rps,
        "elapsed_secs": elapsed,
        "peak_rss_kb": rss,
        "fast": fast,
        "seed": seed,
    }));

    // ---- overload phase: 2× the consumer's rate, bounded queue sheds -
    // The consumer simulates a saturated engine: a fixed service time
    // per datagram. The producer offers at twice that rate, so roughly
    // half the burst must shed — and the accounting must balance.
    let service = Duration::from_micros(200);
    let burst: Vec<Bytes> = wire.iter().take(4_000).cloned().collect();
    let n_burst = burst.len() as u64;
    let (queue, rx, stats) = AdmissionQueue::bounded(64);
    let consumer = std::thread::spawn(move || {
        let mut processed = 0u64;
        while let Ok(_d) = rx.recv() {
            std::thread::sleep(service);
            processed += 1;
        }
        processed
    });
    for d in burst {
        queue.offer(d);
        std::thread::sleep(service / 2);
    }
    drop(queue);
    let processed = consumer.join().unwrap();
    let (received, admitted, shed) = (stats.received(), stats.admitted(), stats.shed());
    let shed_rate = shed as f64 / received.max(1) as f64;
    println!("overload\t{received}\t-\t-\t{shed}\t-");
    println!(
        "# overload: received {received}, processed {processed}, shed {shed} \
         ({:.0}% of a 2x burst)",
        shed_rate * 100.0
    );
    rows.push(serde_json::json!({
        "bench": "serve_ingest",
        "phase": "overload",
        "queue_capacity": 64,
        "burst_datagrams": n_burst,
        "received": received,
        "admitted": admitted,
        "processed": processed,
        "shed": shed,
        "shed_rate": shed_rate,
        "fast": fast,
        "seed": seed,
    }));

    let doc = serde_json::Value::Array(rows);
    std::fs::write("BENCH_serve.json", format!("{doc:#}")).expect("write BENCH_serve.json");
    println!("# wrote BENCH_serve.json");

    if check {
        // The CI gate: every datagram is accounted for, exactly once.
        let balanced = received == processed + shed && admitted == processed;
        if !balanced {
            eprintln!(
                "serve_ingest --check FAILED: received {received} != processed {processed} \
                 + shed {shed}"
            );
            std::process::exit(1);
        }
        if shed == 0 {
            eprintln!("serve_ingest --check FAILED: a 2x overload burst shed nothing");
            std::process::exit(1);
        }
        if received != n_burst {
            eprintln!("serve_ingest --check FAILED: burst lost datagrams before admission");
            std::process::exit(1);
        }
        println!("# check passed: received == processed + shed, shed > 0");
    }
}
