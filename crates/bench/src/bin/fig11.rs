//! Figure 11: ISP subscriber lines with detected IoT activity, per hour
//! (a) and per day (b), for the three headline groups: Alexa Enabled,
//! Samsung IoT, and the other 32 device types.
//!
//! Paper reference points (15 M lines): ~20 % of lines show IoT activity
//! per day; Alexa-enabled penetration ~14 %; hour→day gain ≈ ×2 for
//! Alexa and ≈ ×6 for Samsung. Counts here scale with `--lines`; the
//! percentages are the comparable quantity.

use haystack_bench::{build_pipeline, pct, run_standard_isp_study, Args};
use haystack_core::report::DeviceGroup;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let (isp, study) = run_standard_isp_study(&p, &args);
    let lines = f64::from(isp.config().lines);

    println!("# fig11a: unique subscriber lines per hour");
    println!("hour\talexa\tsamsung\tother32");
    let hours: Vec<u32> = study
        .group_hourly
        .keys()
        .map(|(_, h)| *h)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for h in &hours {
        println!(
            "{h}\t{}\t{}\t{}",
            study.group_hourly.get(&(DeviceGroup::Alexa, *h)).copied().unwrap_or(0),
            study.group_hourly.get(&(DeviceGroup::Samsung, *h)).copied().unwrap_or(0),
            study.group_hourly.get(&(DeviceGroup::Other, *h)).copied().unwrap_or(0),
        );
    }

    println!("\n# fig11b: unique subscriber lines per day");
    println!("day\talexa\tsamsung\tother32\tany_iot\tany_iot_share");
    let days: Vec<u32> = study.any_iot_daily.keys().copied().collect();
    for d in &days {
        let any = study.any_iot_daily[d];
        println!(
            "{d}\t{}\t{}\t{}\t{any}\t{}",
            study.group_daily.get(&(DeviceGroup::Alexa, *d)).copied().unwrap_or(0),
            study.group_daily.get(&(DeviceGroup::Samsung, *d)).copied().unwrap_or(0),
            study.group_daily.get(&(DeviceGroup::Other, *d)).copied().unwrap_or(0),
            pct(any as f64 / lines)
        );
    }

    // Headline ratios.
    if let (Some(d0_alexa), Some(d0_sam)) = (
        study.group_daily.get(&(DeviceGroup::Alexa, days[0])),
        study.group_daily.get(&(DeviceGroup::Samsung, days[0])),
    ) {
        let peak_hour = |g: DeviceGroup| {
            hours
                .iter()
                .filter(|h| **h < 24)
                .filter_map(|h| study.group_hourly.get(&(g, *h)))
                .max()
                .copied()
                .unwrap_or(0)
        };
        let a_h = peak_hour(DeviceGroup::Alexa).max(1);
        let s_h = peak_hour(DeviceGroup::Samsung).max(1);
        println!("\n# summary (day 0):");
        println!(
            "alexa daily {} ({} of lines), day/peak-hour gain x{:.1} (paper ~x2, penetration ~14%)",
            d0_alexa,
            pct(*d0_alexa as f64 / lines),
            *d0_alexa as f64 / a_h as f64
        );
        println!(
            "samsung daily {} ({} of lines), day/peak-hour gain x{:.1} (paper ~x6)",
            d0_sam,
            pct(*d0_sam as f64 / lines),
            *d0_sam as f64 / s_h as f64
        );
        println!(
            "any-IoT daily share {} (paper ~20%)",
            pct(study.any_iot_daily[&days[0]] as f64 / lines)
        );
    }
}
