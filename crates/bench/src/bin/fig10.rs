//! Figure 10: time to detect each IoT device class at the Home-VP from
//! sampled ISP flows, across detection thresholds D ∈ {0.1 … 1.0}, for
//! the active and the idle experiments.
//!
//! Paper reference points (D = 0.4): 72 / 93 / 96 % of
//! manufacturer-or-product classes detected within 1 / 24 / 72 h active;
//! 40 / 73 / 76 % idle; a handful of low-rate devices never detected.

use haystack_bench::{build_pipeline, pct, Args};
use haystack_core::crosscheck::{detection_times, fraction_detected_within, CrosscheckConfig};
use haystack_testbed::catalog::DetectionLevel;
use haystack_testbed::ExperimentKind;
use std::collections::BTreeSet;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let thresholds: Vec<f64> = (1..=10).map(|i| i as f64 / 10.0).collect();
    let hours = if args.fast { Some(8) } else { None };

    for kind in [ExperimentKind::Active, ExperimentKind::Idle] {
        let label = if kind == ExperimentKind::Active { "active" } else { "idle" };
        eprintln!("# replaying {label} experiment through sampling + NetFlow ...");
        let times = detection_times(
            &p,
            &CrosscheckConfig { sampling: 1_000, kind, hours },
            &thresholds,
        );

        println!("\n# fig10 ({label}): hours-to-detect per class per threshold ('-' = not detected)");
        print!("class\t#domains");
        for t in &thresholds {
            print!("\tD={t:.1}");
        }
        println!();
        for rule in &p.rules.rules {
            print!("{}{}\t{}", p.rules.class_name(rule.class), rule.level.suffix(), rule.domains.len());
            for t in &thresholds {
                let row = times
                    .iter()
                    .find(|x| x.class == p.rules.class_name(rule.class) && (x.threshold - t).abs() < 1e-9)
                    .unwrap();
                match row.hours_to_detect {
                    Some(h) => print!("\t{h}"),
                    None => print!("\t-"),
                }
            }
            println!();
        }

        // Headline fractions at the conservative D = 0.4.
        let man_pr: BTreeSet<&str> = p
            .rules
            .rules
            .iter()
            .filter(|r| r.level != DetectionLevel::Platform)
            .map(|r| p.rules.class_name(r.class))
            .collect();
        let pr_only: BTreeSet<&str> = p
            .rules
            .rules
            .iter()
            .filter(|r| r.level == DetectionLevel::Product)
            .map(|r| p.rules.class_name(r.class))
            .collect();
        println!(
            "# {label} @ D=0.4, man+prod classes within 1/24/72h: {} / {} / {}  (paper active: 72/93/96%, idle: 40/73/76%)",
            pct(fraction_detected_within(&times, 0.4, 1, &man_pr)),
            pct(fraction_detected_within(&times, 0.4, 24, &man_pr)),
            pct(fraction_detected_within(&times, 0.4, 72, &man_pr)),
        );
        println!(
            "# {label} @ D=0.4, product-level classes within 1/24/72h: {} / {} / {}  (paper active: 63/81/90%)",
            pct(fraction_detected_within(&times, 0.4, 1, &pr_only)),
            pct(fraction_detected_within(&times, 0.4, 24, &pr_only)),
            pct(fraction_detected_within(&times, 0.4, 72, &pr_only)),
        );
    }
}
