//! Table 1: the IoT devices under test, by category — plus the §2.2
//! headline counts (96 instances, 56 products, ~40 manufacturers).

use haystack_testbed::catalog::data::standard_catalog;
use haystack_testbed::catalog::Category;

fn main() {
    let c = standard_catalog();
    println!("# Table 1: IoT devices under test ('idle' = experiments could not be automated)");
    for cat in [
        Category::Surveillance,
        Category::SmartHubs,
        Category::HomeAutomation,
        Category::Video,
        Category::Audio,
        Category::Appliances,
    ] {
        let names: Vec<String> = c
            .products
            .iter()
            .filter(|p| p.category == cat)
            .map(|p| {
                if p.idle_only {
                    format!("{} (idle)", p.name)
                } else {
                    p.name.to_string()
                }
            })
            .collect();
        println!("{:<16}\t{}", cat.label(), names.join(", "));
    }
    println!(
        "\n# totals: {} device instances across 2 testbeds, {} unique products, {} manufacturers",
        c.instance_count(),
        c.products.len(),
        c.manufacturers().len()
    );
    println!("# paper: 96 instances, 56 products, 40 vendors");
}
