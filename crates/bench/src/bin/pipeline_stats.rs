//! The §4 funnel, side by side with the paper's numbers:
//!
//! * §4.1 — 524 observed domains → 415 Primary, 19 Support, rest Generic;
//! * §4.2 — 217 dedicated / 202 shared / 15 without DNSDB records, of
//!   which Censys recovers 8 (for 5 devices);
//! * §4.3 — rules for ≥3 platforms, 20 manufacturers, 11 products — 77 %
//!   of the testbed's manufacturers detectable.

use haystack_bench::{build_pipeline, pct, Args};

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let s = &p.stats;

    println!("# §4 funnel\tours\tpaper");
    println!("observed domains\t{}\t524", s.observed_domains);
    println!("primary\t{}\t415", s.primary);
    println!("support\t{}\t19", s.support);
    println!("generic\t{}\t~90", s.generic);
    println!("dedicated (DNSDB)\t{}\t217", s.dedicated_dnsdb);
    println!("shared\t{}\t202", s.shared);
    println!(
        "no DNSDB record\t{}\t15 (7 unrecovered)",
        s.no_record + s.censys_recovered
    );
    println!("recovered via Censys\t{}\t8", s.censys_recovered);
    println!("platform rules\t{}\t3-6", s.platform_rules);
    println!("manufacturer rules\t{}\t20", s.manufacturer_rules);
    println!("product rules\t{}\t11", s.product_rules);

    let total = p.catalog.manufacturers().len();
    let detectable = p.catalog.detectable_manufacturers().len();
    println!(
        "detectable manufacturers\t{}/{} ({})\t31/40 (77%)",
        detectable,
        total,
        pct(detectable as f64 / total as f64)
    );

    println!("\n# undetectable classes (pipeline-derived, §4.2.3):");
    for (class, reason) in &p.rules.undetectable {
        println!("excluded\t{}\t{reason:?}", p.rules.class_name(*class));
    }

    println!("\n# generated rules:");
    println!("class\tlevel\tparent\t#domains\t#service IPs");
    for r in &p.rules.rules {
        let ips: usize = r.domains.iter().map(|d| d.ips.len()).sum();
        println!(
            "{}\t{:?}\t{}\t{}\t{}",
            p.rules.class_name(r.class),
            r.level,
            r.parent.map(|x| p.rules.class_name(x)).unwrap_or("-"),
            r.domains.len(),
            ips
        );
    }
}
