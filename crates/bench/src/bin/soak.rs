//! Wild-scale soak bench: ≥10⁶ subscriber lines of ~99%-miss traffic
//! streamed through the supervised detector pool for many simulated
//! hours, with **incremental dirty-only checkpoints** at every hour
//! boundary (DESIGN.md §12).
//!
//! Three numbers make or break the deployment story, and this binary
//! measures all of them:
//!
//! * **sustained records/s** over the whole soak, checkpoint pauses
//!   included — the paper's "minutes for millions of devices" claim;
//! * **peak RSS** (`VmHWM`) against a memory ceiling — detector state
//!   grows monotonically across soak hours (no day-roll resets), so
//!   unbounded growth shows up here, not in a unit test;
//! * **bytes per hourly checkpoint**, delta vs full — the incremental
//!   snapshot must be ≥4× smaller than writing a full frame every hour
//!   at the same scale, or the refactor didn't pay for itself.
//!
//! Results go to stdout as TSV and to `BENCH_wild.json`. Self-asserting
//! (`--assert-rss-mb`, `--assert-pause-ms`) so CI's `soak-smoke` job
//! fails loudly on a regression instead of archiving a bad artifact.
//!
//! Unlike the figure binaries this one parses its own flags: the soak
//! shape (`--hours`, `--records-per-hour`, `--hit-rate-ppm`) has no
//! analogue in the shared `Args`.

use haystack_bench::{build_pipeline, Args};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::{DetectorPool, DEFAULT_REPLAY_LIMIT};
use haystack_core::{CheckpointDir, DetectorSnapshot};
use haystack_wild::{RecordChunk, SoakConfig, SoakStream, DEFAULT_CHUNK_RECORDS};
use std::net::Ipv4Addr;
use std::time::Instant;

struct SoakArgs {
    fast: bool,
    lines: u32,
    hours: u32,
    records_per_hour: u64,
    hit_rate_ppm: u32,
    seed: u64,
    workers: usize,
    assert_rss_mb: u64,
    assert_pause_ms: f64,
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: soak [--fast] [--lines N] [--hours N] [--records-per-hour N] [--hit-rate-ppm N]\n            [--seed N] [--workers N] [--assert-rss-mb N] [--assert-pause-ms N]"
    );
    std::process::exit(2);
}

impl SoakArgs {
    /// `--fast` shrinks the soak to CI-smoke scale (10⁵ lines, 6 h);
    /// later flags still override its presets.
    fn parse() -> SoakArgs {
        let mut a = SoakArgs {
            fast: false,
            lines: 1_000_000,
            hours: 12,
            records_per_hour: 1_000_000,
            hit_rate_ppm: 10_000,
            seed: 42,
            workers: 4,
            assert_rss_mb: 2_048,
            assert_pause_ms: 1_000.0,
        };
        let mut it = std::env::args().skip(1);
        fn val<T: std::str::FromStr>(it: &mut impl Iterator<Item = String>, flag: &str) -> T {
            it.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage(&format!("{flag} needs a number")))
        }
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--fast" => {
                    a.fast = true;
                    a.lines = 100_000;
                    a.hours = 6;
                    a.records_per_hour = 100_000;
                }
                "--lines" => a.lines = val(&mut it, "--lines"),
                "--hours" => a.hours = val(&mut it, "--hours"),
                "--records-per-hour" => a.records_per_hour = val(&mut it, "--records-per-hour"),
                "--hit-rate-ppm" => a.hit_rate_ppm = val(&mut it, "--hit-rate-ppm"),
                "--seed" => a.seed = val(&mut it, "--seed"),
                "--workers" => a.workers = val(&mut it, "--workers"),
                "--assert-rss-mb" => a.assert_rss_mb = val(&mut it, "--assert-rss-mb"),
                "--assert-pause-ms" => a.assert_pause_ms = val(&mut it, "--assert-pause-ms"),
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        if a.hours == 0 || a.workers == 0 {
            usage("--hours and --workers must be at least 1");
        }
        a
    }
}

/// Peak resident set size in KiB, from `/proc/self/status` (`VmHWM`).
/// `None` off Linux or if the field is missing.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn main() {
    let a = SoakArgs::parse();
    // Rules always come from the fast pipeline: the soak measures the
    // detector under load, not ground-truth fidelity, and CI smoke and
    // the committed full run must agree on the rule set.
    let p = build_pipeline(&Args { fast: true, lines: a.lines, seed: 42 });
    let mut targets: Vec<(Ipv4Addr, u16)> = p
        .rules
        .rules
        .iter()
        .flat_map(|r| &r.domains)
        .flat_map(|d| d.ips.iter().flat_map(|&ip| d.ports.iter().map(move |&pt| (ip, pt))))
        .collect();
    targets.sort_unstable();
    targets.dedup();

    let cfg = SoakConfig {
        lines: a.lines,
        seed: a.seed,
        hit_rate_ppm: a.hit_rate_ppm,
        records_per_hour: a.records_per_hour,
    };
    let hitlist = HitList::whole_window(&p.rules);
    let mut pool =
        DetectorPool::new(&p.rules, &hitlist, DetectorConfig::default(), a.workers);
    pool.enable_supervision(DEFAULT_REPLAY_LIMIT).unwrap();
    let root = std::env::temp_dir().join(format!("haystack-soak-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = CheckpointDir::open(&root).unwrap();

    println!(
        "# soak: {} lines, {} h x {} records/h, {} ppm hit rate, {} workers, {} targets",
        a.lines, a.hours, a.records_per_hour, a.hit_rate_ppm, a.workers, targets.len()
    );
    println!("hour\trecords\tdirty_entries\tdelta_bytes\tfull_bytes\tpause_ms");

    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut per_hour = Vec::new();
    let mut records = 0u64;
    let t0 = Instant::now();
    for hour in 0..a.hours {
        let mut stream = SoakStream::hour(&targets, cfg, 0, hour, DEFAULT_CHUNK_RECORDS);
        let (r, _packets, _deg) = pool.observe_stream(&mut stream, &mut chunk).unwrap();
        records += r;
        // Hour boundary: the incremental checkpoint. The pause is what a
        // live feed would experience — dirty export, merge, durable
        // write — not the instrumentation below it.
        let pause_t0 = Instant::now();
        let frames = pool.checkpoint_all_delta().unwrap();
        let dirty: usize = frames.iter().map(DetectorSnapshot::entry_count).sum();
        let mut frame = Vec::new();
        for f in &frames {
            frame.extend_from_slice(&f.encode());
        }
        dir.write_delta("soak", &frame, dirty as u64).unwrap();
        let pause_ms = pause_t0.elapsed().as_secs_f64() * 1e3;
        // What a full-every-hour policy would have written at this same
        // point — the denominator of the ≥4× claim.
        let full_bytes: u64 = pool
            .supervised_shard_states()
            .iter()
            .map(|s| s.encode().len() as u64)
            .sum();
        println!("{hour}\t{r}\t{dirty}\t{}\t{full_bytes}\t{pause_ms:.2}", frame.len());
        per_hour.push((hour, r, dirty as u64, frame.len() as u64, full_bytes, pause_ms));
    }
    pool.finish().unwrap();
    let elapsed = t0.elapsed().as_secs_f64();
    let _ = std::fs::remove_dir_all(dir.root());

    let records_per_sec = records as f64 / elapsed.max(1e-9);
    let peak_kb = peak_rss_kb().unwrap_or(0);
    let pause_max = per_hour.iter().map(|h| h.5).fold(0.0f64, f64::max);
    let pause_mean = per_hour.iter().map(|h| h.5).sum::<f64>() / per_hour.len() as f64;
    // Hour 0's "delta" is the anchor (everything is dirty on a fresh
    // detector, so it is full-sized by construction); steady state is
    // hours 1.. — those are what an hourly cadence keeps writing.
    let steady: Vec<_> = per_hour.iter().skip(1).collect();
    let delta_bytes_steady_mean = if steady.is_empty() {
        per_hour.last().map(|h| h.3 as f64).unwrap_or(0.0)
    } else {
        steady.iter().map(|h| h.3 as f64).sum::<f64>() / steady.len() as f64
    };
    let full_bytes_mean =
        per_hour.iter().map(|h| h.4 as f64).sum::<f64>() / per_hour.len() as f64;
    let full_over_delta =
        if delta_bytes_steady_mean > 0.0 { full_bytes_mean / delta_bytes_steady_mean } else { 0.0 };

    println!(
        "# {records} records in {elapsed:.2}s = {records_per_sec:.0} records/s sustained; peak RSS {:.1} MiB; pause mean {pause_mean:.2} ms max {pause_max:.2} ms; full/delta {full_over_delta:.1}x",
        peak_kb as f64 / 1024.0
    );

    assert!(
        peak_kb <= a.assert_rss_mb * 1024,
        "peak RSS {:.1} MiB exceeded the {} MiB ceiling",
        peak_kb as f64 / 1024.0,
        a.assert_rss_mb
    );
    assert!(
        pause_max <= a.assert_pause_ms,
        "worst checkpoint pause {pause_max:.2} ms exceeded the {:.0} ms budget",
        a.assert_pause_ms
    );
    // The ≥4× compression claim needs enough hours for the full frame to
    // outgrow the hourly dirty set; the CI smoke run (--fast, 6 h) only
    // checks RSS and pause budgets.
    if !a.fast {
        assert!(
            full_over_delta >= 4.0,
            "incremental checkpoints are only {full_over_delta:.1}x smaller than hourly fulls (need >= 4x)"
        );
    }

    let doc = serde_json::json!({
        "bench": "wild_soak",
        "lines": a.lines,
        "hours": a.hours,
        "records_per_hour": a.records_per_hour,
        "hit_rate_ppm": a.hit_rate_ppm,
        "seed": a.seed,
        "workers": a.workers,
        "chunk_records": DEFAULT_CHUNK_RECORDS,
        "records": records,
        "elapsed_secs": elapsed,
        "records_per_sec_sustained": records_per_sec,
        "peak_rss_kb": peak_kb,
        "rss_ceiling_mb": a.assert_rss_mb,
        "checkpoints": {
            "count": per_hour.len(),
            "pause_ms_mean": pause_mean,
            "pause_ms_max": pause_max,
            "pause_budget_ms": a.assert_pause_ms,
            "delta_bytes_steady_mean": delta_bytes_steady_mean,
            "full_bytes_mean": full_bytes_mean,
            "full_over_delta_ratio": full_over_delta,
        },
        "per_hour": per_hour.iter().map(|&(hour, r, dirty, delta_b, full_b, pause)| {
            serde_json::json!({
                "hour": hour,
                "records": r,
                "dirty_entries": dirty,
                "delta_bytes": delta_b,
                "full_bytes": full_b,
                "pause_ms": pause,
            })
        }).collect::<Vec<_>>(),
        "fast": a.fast,
    });
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write("BENCH_wild.json", &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_wild.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_wild.json");
}
