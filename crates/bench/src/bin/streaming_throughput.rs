//! Streaming-pipeline throughput: an ISP hour streamed chunk-by-chunk
//! into the persistent sharded-detector pool, never materialized.
//!
//! The paper's deployment argument is that sampled flows for "millions
//! of devices" are processed "within minutes" (§1, §6); the streaming
//! refactor's claim is that this works in bounded memory. This binary
//! measures both:
//!
//! * **records/sec** through `IspVantage::stream_hour` →
//!   `DetectorPool::observe_stream` at the default chunk size;
//! * **peak resident batch buffers** (`DetectorPool::buffers_created`),
//!   which must stay below the backpressure bound
//!   `workers × (POOL_CHANNEL_BATCHES + 3)` — set by channel capacity,
//!   independent of how many records the hour contains.
//!
//! Results go to stdout as TSV and to `BENCH_streaming.json` as one JSON
//! row per worker count, so CI can archive the numbers per PR.

use haystack_bench::{build_pipeline, Args};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::{DetectorPool, POOL_CHANNEL_BATCHES};
use haystack_net::DayBin;
use haystack_wild::{
    FeedDegradation, IspConfig, IspVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS,
};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    // Unlike the figure binaries, `--lines` is honored even with
    // `--fast`: the whole point is streaming a 10⁵-line hour, and the
    // vantage point's cost doesn't depend on pipeline fidelity.
    let isp = IspVantage::new(
        &p.catalog,
        IspConfig { lines: args.lines, sampling: 1_000, seed: args.seed ^ 0x15B, background: false },
    );
    let hours = if args.fast { 2usize } else { 6 };
    let hitlist = HitList::for_day(&p.rules, &p.dnsdb, DayBin(0));

    println!(
        "# streaming_throughput: {} lines, sampling 1/1000, {hours} h, chunk {} records",
        isp.config().lines,
        DEFAULT_CHUNK_RECORDS
    );
    println!("workers\trecords\trecords_per_sec\tpeak_buffers\tbuffer_bound\telapsed_s");

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut pool = DetectorPool::new(&p.rules, &hitlist, DetectorConfig::default(), workers);
        let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
        let mut records = 0u64;
        let mut packets = 0u64;
        let mut degradation = FeedDegradation::default();
        let t0 = Instant::now();
        for hour in DayBin(0).hours().take(hours) {
            let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
            let (r, pk, deg) = pool.observe_stream(&mut *stream, &mut chunk).unwrap();
            records += r;
            packets += pk;
            degradation.absorb(deg);
        }
        pool.finish().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        let peak = pool.buffers_created();
        // The acceptance claim: resident chunk count is set by channel
        // capacity (workers × depth, plus one staging buffer per shard
        // and a couple in transit), never by the size of the hour.
        let bound = workers * (POOL_CHANNEL_BATCHES + 3);
        assert!(
            peak <= bound,
            "peak resident buffers {peak} exceeded the backpressure bound {bound}"
        );
        let rps = records as f64 / elapsed.max(1e-9);
        println!("{workers}\t{records}\t{rps:.0}\t{peak}\t{bound}\t{elapsed:.3}");
        rows.push(serde_json::json!({
            "bench": "streaming_throughput",
            "lines": isp.config().lines,
            "hours": hours,
            "workers": workers,
            "chunk_records": DEFAULT_CHUNK_RECORDS,
            "records": records,
            "sampled_packets": packets,
            "records_per_sec": rps,
            "peak_resident_buffers": peak,
            "buffer_bound": bound,
            "elapsed_secs": elapsed,
            "fast": args.fast,
            "seed": args.seed,
        }));
    }

    // ------------------------------------------------------------------
    // Checkpoint overhead gate (DESIGN.md §12): hourly durable
    // *incremental* checkpoints must cost ≤ 5% of streamed time — a
    // purely relative gate, no absolute-floor escape hatch. Two things
    // make that honest at soak scale:
    //
    // * The gate runs on the wild-scale soak feed (10⁶ lines, ~99%
    //   miss — the paper's deployment regime), not the dense testbed
    //   hour above, so the hourly dirty set is mutation-proportional —
    //   which is the whole point of delta frames.
    // * What blocks the stream at each boundary is only the
    //   consistency point (`checkpoint_all_delta`: flush + dirty-only
    //   export + handoff); sealing and the fsync'd durable write run
    //   on a write-behind thread, exactly like `serve`'s checkpoint
    //   thread. The gate therefore measures the blocking pauses
    //   directly against the streamed hours they interrupt, instead of
    //   differencing two end-to-end wall times — the pauses are
    //   milliseconds against hundreds, so the difference of totals
    //   drowns in scheduler noise long before it resolves 5%. Writer
    //   contention is not hidden: the writer shares the machine with
    //   the stream, so its cost lands in the streamed time (the
    //   denominator), and its busy time is reported alongside. The
    //   writer is joined after the last hour and must have made every
    //   generation durable.
    // ------------------------------------------------------------------
    let workers = 4usize;
    let gate_hours = if args.fast { 3u32 } else { 6 };
    let gate_cfg = haystack_wild::SoakConfig {
        lines: if args.fast { 100_000 } else { 1_000_000 },
        seed: args.seed ^ 0x50AC,
        hit_rate_ppm: 10_000,
        records_per_hour: if args.fast { 1_000_000 } else { 4_000_000 },
    };
    let mut gate_targets: Vec<(std::net::Ipv4Addr, u16)> = p
        .rules
        .rules
        .iter()
        .flat_map(|r| &r.domains)
        .flat_map(|d| d.ips.iter().flat_map(|&ip| d.ports.iter().map(move |&pt| (ip, pt))))
        .collect();
    gate_targets.sort_unstable();
    gate_targets.dedup();
    let gate_hitlist = HitList::whole_window(&p.rules);
    let mut pool = DetectorPool::new(&p.rules, &gate_hitlist, DetectorConfig::default(), workers);
    pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT).unwrap();
    let root =
        std::env::temp_dir().join(format!("haystack-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let dir = haystack_core::CheckpointDir::open(&root).unwrap();
    let (tx, rx) = std::sync::mpsc::channel::<Vec<haystack_core::DetectorSnapshot>>();
    let writer = std::thread::spawn(move || {
        let mut written = 0u64;
        let mut busy = 0.0f64;
        for frames in rx {
            let t0 = Instant::now();
            let dirty: usize = frames
                .iter()
                .map(haystack_core::DetectorSnapshot::entry_count)
                .sum();
            let mut frame = Vec::new();
            for f in &frames {
                frame.extend_from_slice(&f.encode());
            }
            dir.write_delta("bench", &frame, dirty as u64).unwrap();
            written += 1;
            busy += t0.elapsed().as_secs_f64();
        }
        let _ = std::fs::remove_dir_all(dir.root());
        (written, busy)
    });
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut gate_records = 0u64;
    let mut stream_s = 0.0f64;
    let mut pauses_ms = Vec::new();
    for hour in 0..gate_hours {
        let mut stream = haystack_wild::SoakStream::hour(
            &gate_targets,
            gate_cfg,
            0,
            hour,
            DEFAULT_CHUNK_RECORDS,
        );
        let t0 = Instant::now();
        let (r, _pk, _deg) = pool.observe_stream(&mut stream, &mut chunk).unwrap();
        stream_s += t0.elapsed().as_secs_f64();
        gate_records += r;
        // Hour boundary: the stream-blocking consistency point — each
        // worker exports only the entries mutated since the previous
        // hour (the first hour anchors with fulls) — then the frames
        // are handed to the writer and the stream resumes.
        let t1 = Instant::now();
        let frames = pool.checkpoint_all_delta().unwrap();
        tx.send(frames).expect("writer thread alive");
        pauses_ms.push(t1.elapsed().as_secs_f64() * 1e3);
    }
    pool.finish().unwrap();
    drop(tx);
    let (written, writer_busy_s) = writer.join().expect("writer thread");
    assert_eq!(written, u64::from(gate_hours), "one durable generation per hour");
    let pause_sum_ms: f64 = pauses_ms.iter().sum();
    let pause_max_ms = pauses_ms.iter().copied().fold(0.0f64, f64::max);
    let overhead = pause_sum_ms / 1e3 / stream_s.max(1e-9);
    println!(
        "# checkpoint overhead gate: soak feed, {} lines, {gate_hours} h x {} records/h, {} ppm",
        gate_cfg.lines, gate_cfg.records_per_hour, gate_cfg.hit_rate_ppm
    );
    println!(
        "# checkpoint overhead: {stream_s:.3}s streamed, {pause_sum_ms:.2}ms paused \
(max {pause_max_ms:.2}ms/boundary, writer busy {:.2}ms behind the stream): {:+.2}%",
        writer_busy_s * 1e3,
        overhead * 100.0
    );
    assert!(
        overhead <= 0.05,
        "hourly incremental checkpointing costs {:.2}% of streamed time (> 5% relative gate)",
        overhead * 100.0
    );
    rows.push(serde_json::json!({
        "bench": "streaming_throughput_checkpoint_overhead",
        "feed": "soak",
        "lines": gate_cfg.lines,
        "hours": gate_hours,
        "records_per_hour": gate_cfg.records_per_hour,
        "hit_rate_ppm": gate_cfg.hit_rate_ppm,
        "workers": workers,
        "records": gate_records,
        "records_per_sec": gate_records as f64 / stream_s.max(1e-9),
        "streamed_secs": stream_s,
        "pause_ms": pauses_ms,
        "pause_sum_ms": pause_sum_ms,
        "pause_max_ms": pause_max_ms,
        "writer_busy_ms": writer_busy_s * 1e3,
        "overhead_fraction": overhead,
        "fast": args.fast,
        "seed": args.seed,
    }));

    let doc = serde_json::Value::Array(rows);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write("BENCH_streaming.json", &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_streaming.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_streaming.json");
}
