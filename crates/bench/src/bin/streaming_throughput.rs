//! Streaming-pipeline throughput: an ISP hour streamed chunk-by-chunk
//! into the persistent sharded-detector pool, never materialized.
//!
//! The paper's deployment argument is that sampled flows for "millions
//! of devices" are processed "within minutes" (§1, §6); the streaming
//! refactor's claim is that this works in bounded memory. This binary
//! measures both:
//!
//! * **records/sec** through `IspVantage::stream_hour` →
//!   `DetectorPool::observe_stream` at the default chunk size;
//! * **peak resident batch buffers** (`DetectorPool::buffers_created`),
//!   which must stay below the backpressure bound
//!   `workers × (POOL_CHANNEL_BATCHES + 3)` — set by channel capacity,
//!   independent of how many records the hour contains.
//!
//! Results go to stdout as TSV and to `BENCH_streaming.json` as one JSON
//! row per worker count, so CI can archive the numbers per PR.

use haystack_bench::{build_pipeline, Args};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::{DetectorPool, POOL_CHANNEL_BATCHES};
use haystack_net::DayBin;
use haystack_wild::{
    FeedDegradation, IspConfig, IspVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS,
};
use std::time::Instant;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    // Unlike the figure binaries, `--lines` is honored even with
    // `--fast`: the whole point is streaming a 10⁵-line hour, and the
    // vantage point's cost doesn't depend on pipeline fidelity.
    let isp = IspVantage::new(
        &p.catalog,
        IspConfig { lines: args.lines, sampling: 1_000, seed: args.seed ^ 0x15B, background: false },
    );
    let hours = if args.fast { 2usize } else { 6 };
    let hitlist = HitList::for_day(&p.rules, &p.dnsdb, DayBin(0));

    println!(
        "# streaming_throughput: {} lines, sampling 1/1000, {hours} h, chunk {} records",
        isp.config().lines,
        DEFAULT_CHUNK_RECORDS
    );
    println!("workers\trecords\trecords_per_sec\tpeak_buffers\tbuffer_bound\telapsed_s");

    let mut rows = Vec::new();
    for workers in [1usize, 2, 4] {
        let mut pool = DetectorPool::new(&p.rules, &hitlist, DetectorConfig::default(), workers);
        let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
        let mut records = 0u64;
        let mut packets = 0u64;
        let mut degradation = FeedDegradation::default();
        let t0 = Instant::now();
        for hour in DayBin(0).hours().take(hours) {
            let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
            let (r, pk, deg) = pool.observe_stream(&mut *stream, &mut chunk).unwrap();
            records += r;
            packets += pk;
            degradation.absorb(deg);
        }
        pool.finish().unwrap();
        let elapsed = t0.elapsed().as_secs_f64();
        let peak = pool.buffers_created();
        // The acceptance claim: resident chunk count is set by channel
        // capacity (workers × depth, plus one staging buffer per shard
        // and a couple in transit), never by the size of the hour.
        let bound = workers * (POOL_CHANNEL_BATCHES + 3);
        assert!(
            peak <= bound,
            "peak resident buffers {peak} exceeded the backpressure bound {bound}"
        );
        let rps = records as f64 / elapsed.max(1e-9);
        println!("{workers}\t{records}\t{rps:.0}\t{peak}\t{bound}\t{elapsed:.3}");
        rows.push(serde_json::json!({
            "bench": "streaming_throughput",
            "lines": isp.config().lines,
            "hours": hours,
            "workers": workers,
            "chunk_records": DEFAULT_CHUNK_RECORDS,
            "records": records,
            "sampled_packets": packets,
            "records_per_sec": rps,
            "peak_resident_buffers": peak,
            "buffer_bound": bound,
            "elapsed_secs": elapsed,
            "fast": args.fast,
            "seed": args.seed,
        }));
    }

    // ------------------------------------------------------------------
    // Checkpoint overhead gate (DESIGN.md §12): the same feed with
    // supervision + hourly durable checkpoints must cost ≤ 2% over the
    // unsupervised baseline. Best-of-3 per variant damps scheduler
    // noise; a small absolute floor keeps the gate meaningful (not
    // flaky) at `--fast` scale where an hour is milliseconds.
    // ------------------------------------------------------------------
    let workers = 4usize;
    let run = |checkpointed: bool| -> (f64, u64) {
        let mut best = f64::INFINITY;
        let mut records = 0u64;
        for _ in 0..3 {
            let mut pool =
                DetectorPool::new(&p.rules, &hitlist, DetectorConfig::default(), workers);
            let ckpt_dir = checkpointed.then(|| {
                let dir = std::env::temp_dir()
                    .join(format!("haystack-bench-ckpt-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&dir);
                pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT)
                    .unwrap();
                haystack_core::CheckpointDir::open(dir).unwrap()
            });
            let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
            let mut recs = 0u64;
            let t0 = Instant::now();
            for hour in DayBin(0).hours().take(hours) {
                let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
                let (r, _pk, _deg) = pool.observe_stream(&mut *stream, &mut chunk).unwrap();
                recs += r;
                if let Some(dir) = &ckpt_dir {
                    // Hour boundary: in-pool shard checkpoint + one
                    // durable frame, the deployment cadence.
                    let states = pool.shard_states().unwrap();
                    let mut frame = Vec::new();
                    for s in &states {
                        frame.extend_from_slice(&s.encode());
                    }
                    dir.write("bench", &frame).unwrap();
                }
            }
            pool.finish().unwrap();
            let elapsed = t0.elapsed().as_secs_f64();
            if let Some(dir) = &ckpt_dir {
                let _ = std::fs::remove_dir_all(dir.root());
            }
            best = best.min(elapsed);
            records = recs;
        }
        (best, records)
    };
    let (base_s, base_records) = run(false);
    let (ckpt_s, _) = run(true);
    let overhead = (ckpt_s - base_s) / base_s.max(1e-9);
    println!(
        "# checkpoint overhead: baseline {base_s:.3}s, hourly-checkpointed {ckpt_s:.3}s ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        overhead <= 0.02 || ckpt_s - base_s < 0.050,
        "hourly checkpointing costs {:.2}% (> 2% gate)",
        overhead * 100.0
    );
    rows.push(serde_json::json!({
        "bench": "streaming_throughput_checkpoint_overhead",
        "lines": isp.config().lines,
        "hours": hours,
        "workers": workers,
        "records": base_records,
        "baseline_secs": base_s,
        "checkpointed_secs": ckpt_s,
        "overhead_fraction": overhead,
        "fast": args.fast,
        "seed": args.seed,
    }));

    let doc = serde_json::Value::Array(rows);
    let text = serde_json::to_string_pretty(&doc).expect("serializable");
    std::fs::write("BENCH_streaming.json", &text).unwrap_or_else(|e| {
        eprintln!("error: cannot write BENCH_streaming.json: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote BENCH_streaming.json");
}
