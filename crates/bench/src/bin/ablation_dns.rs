//! Ablation: §7.4's DNS-assisted variant vs the paper's flow-based
//! methodology, on the same simulated ISP day.
//!
//! Expected picture, quantified:
//! * DNS rules detect the shared-infrastructure classes (Google Home,
//!   Apple TV, Lefun) that flows can never attribute;
//! * DNS coverage degrades linearly with the DoT/DoH exodus
//!   (`resolver share`), flows don't care;
//! * a public-resolver operator sees the same thing at share 1.0 across
//!   *every* ISP — the privacy warning at the end of §7.4.

use haystack_bench::{build_isp, build_pipeline, Args};
use haystack_core::detector::{Detector, DetectorConfig};
use haystack_core::dns_assisted::{dns_rules, DnsDetector};
use haystack_core::hitlist::HitList;
use haystack_net::DayBin;
use haystack_wild::gen::generate_dns_hour;
use haystack_wild::{RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let isp = build_isp(&p, &args);
    let day = DayBin(0);

    // Flow-based detection, one day.
    eprintln!("# flow-based detection ...");
    let mut flow_det = Detector::new(
        &p.rules,
        HitList::for_day(&p.rules, &p.dnsdb, day),
        DetectorConfig::default(),
    );
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    for hour in day.hours() {
        let mut stream = isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS);
        while stream.next_chunk(&mut chunk) {
            for r in &chunk.records {
                flow_det.observe_wild(r);
            }
        }
    }

    // DNS-based detection at several resolver shares.
    let rules = dns_rules(&p.catalog, &p.observations, &p.classification);
    let shares = [1.0f64, 0.7, 0.4];
    let mut dns_dets: Vec<DnsDetector<'_>> =
        shares.iter().map(|_| DnsDetector::new(&rules, 0.4)).collect();
    eprintln!("# resolver-log detection at shares {shares:?} ...");
    for hour in day.hours() {
        for (si, &share) in shares.iter().enumerate() {
            let events = generate_dns_hour(
                isp.population(),
                isp.plan(),
                hour,
                share,
                isp.config().seed,
                isp.anonymizer(),
            );
            for e in &events {
                dns_dets[si].observe_event(e, &isp.plan().domains);
            }
        }
    }

    println!("# ablation_dns: detected lines per class, day 0 (D=0.4)");
    println!("class\tflow\tdns@100%\tdns@70%\tdns@40%");
    let mut classes: Vec<&'static str> = rules.rules.keys().copied().collect();
    classes.sort();
    for class in classes {
        let flow = p
            .rules
            .rule(class)
            .map(|_| flow_det.detected_lines(class).len())
            .map(|n| n.to_string())
            .unwrap_or_else(|| "excluded".into());
        println!(
            "{class}\t{flow}\t{}\t{}\t{}",
            dns_dets[0].detected_lines(class).len(),
            dns_dets[1].detected_lines(class).len(),
            dns_dets[2].detected_lines(class).len(),
        );
    }
    println!(
        "\n# §7.4: DNS sees through CDNs (the 'excluded' rows get counts) but loses \
         households that left the ISP resolver; a public-resolver operator runs this \
         at 100% share across every ISP at once — the privacy concern."
    );
}
