//! Precision / recall / F1 per detection class against the simulation's
//! ownership oracle — the quantified version of §5's crosschecks and
//! §7.3's limitations discussion.
//!
//! Expected picture: precision near 1.0 everywhere (the §4 filters keep
//! shared and generic IPs out of the rules); recall tracks each class's
//! traffic intensity — hot platforms are near-complete within a day,
//! laconic plugs take the multi-day window the paper reports.

use haystack_bench::{build_isp, build_pipeline, Args};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::DetectorPool;
use haystack_core::quality::evaluate;
use haystack_core::telemetry::{self, InstrumentedStream};
use haystack_net::DayBin;
use haystack_wild::{RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};

fn main() {
    let args = Args::parse();
    telemetry::set_enabled(true);
    let p = build_pipeline(&args);
    let isp = build_isp(&p, &args);
    let days = if args.fast { 1u32 } else { 3 };

    let mut pool = DetectorPool::new(&p.rules, &HitList::default(), DetectorConfig::default(), 4);
    pool.attach_telemetry(&telemetry::Scope::named("pool")).unwrap();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let stream_scope = telemetry::Scope::named("stream");
    println!("# accuracy over {days} day(s), {} lines, sampling 1/1000, D=0.4", isp.config().lines);
    println!("day\tclass\ttp\tfp\tfn\tprecision\trecall\tf1");
    for day in 0..days {
        pool.set_hitlist(&HitList::for_day(&p.rules, &p.dnsdb, DayBin(day))).unwrap();
        // Evidence accumulates across days (the detector is cumulative
        // here, matching Figure 13's multi-day view).
        for hour in DayBin(day).hours() {
            let mut stream = InstrumentedStream::new(
                isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS),
                &stream_scope,
            );
            pool.observe_stream(&mut stream, &mut chunk).unwrap();
        }
        let mut rows: Vec<(&str, haystack_core::quality::Confusion)> = p
            .rules
            .rules
            .iter()
            .map(|r| {
                let class = p.rules.class_name(r.class);
                (class, evaluate(&p, &isp, &mut pool, class, day))
            })
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1.true_pos));
        for (class, c) in rows {
            println!(
                "{day}\t{class}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}",
                c.true_pos,
                c.false_pos,
                c.false_neg,
                c.precision(),
                c.recall(),
                c.f1()
            );
        }
    }
    println!("# note: owner identities churn with daily IP reassignment; the oracle tracks it.");
    println!("# telemetry");
    let snap = telemetry::global().snapshot();
    println!("{}", serde_json::to_string_pretty(&snap.to_json()).expect("serializable"));
}
