//! How detection quality degrades when the flow feed is impaired — the
//! robustness companion to `accuracy_report` (DESIGN.md, "Fault model").
//!
//! Two sections, both swept over a chaos severity in `[0, 1]`:
//!
//! 1. **Wire**: a real `Exporter → ChaosLink → Collector` path over
//!    synthetic flow records, reporting delivery and decode rates plus
//!    the collector's survival counters (sequence gaps, restarts,
//!    quarantines). Severity 0 must decode *exactly* what was exported.
//! 2. **Detection**: the §6.2 ISP study with the vantage point's feed
//!    degraded at the same severity, reporting micro-averaged
//!    precision/recall/F1 against the clean baseline. Recall should fall
//!    smoothly with severity — partial evidence, not a cliff to zero.
//!
//! The paper's wild results implicitly assume a healthy feed; this sweep
//! quantifies how far that assumption can erode before the §6 numbers
//! move.

use haystack_bench::{build_isp, build_pipeline, pct, Args};
use haystack_core::detector::DetectorConfig;
use haystack_core::hitlist::HitList;
use haystack_core::parallel::DetectorPool;
use haystack_core::quality::{evaluate, Confusion};
use haystack_core::pipeline::Pipeline;
use haystack_core::telemetry::{self, InstrumentedStream};
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::key::FlowKey;
use haystack_flow::tcp_flags::TcpFlags;
use haystack_flow::{ChaosConfig, ChaosLink, Collector, FlowRecord};
use haystack_net::ports::Proto;
use haystack_net::{DayBin, SimTime};
use haystack_wild::{IspVantage, RecordChunk, VantagePoint, DEFAULT_CHUNK_RECORDS};
use std::net::Ipv4Addr;

fn synthetic_records(n: usize, salt: u64) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E37_79B9).wrapping_add(salt);
            FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, (x >> 8) as u8, x as u8),
                    dst: Ipv4Addr::new(198, 18, 0, (x >> 16) as u8),
                    sport: 40_000 + (i % 1_000) as u16,
                    dport: if i % 3 == 0 { 8_883 } else { 443 },
                    proto: Proto::Tcp,
                },
                packets: 1 + (x % 7),
                bytes: 40 * (1 + (x % 7)),
                tcp_flags: TcpFlags::ACK,
                first: SimTime(i as u64),
                last: SimTime(i as u64 + 30),
            }
        })
        .collect()
}

/// One severity step of the wire sweep.
fn wire_step(severity: f64, seed: u64, records: &[FlowRecord]) -> (u64, u64, usize) {
    let chaos = ChaosConfig::at_severity(severity, seed);
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
    let mut link = ChaosLink::new(chaos);
    let mut collector = Collector::new();
    let mut decoded = 0usize;
    for (hour, chunk) in records.chunks(256).enumerate() {
        let msgs = exporter.export(chunk, 3_600 * hour as u32).expect("export");
        for d in link.transmit_all(msgs) {
            // Malformed datagrams are counted, never fatal.
            if let Ok(rs) = collector.feed_netflow_v9(d) {
                decoded += rs.len();
            }
        }
    }
    for d in link.shutdown() {
        if let Ok(rs) = collector.feed_netflow_v9(d) {
            decoded += rs.len();
        }
    }
    let s = link.stats();
    println!(
        "{severity:.1}\t{}\t{}\t{}\t{}\t{decoded}\t{}\t{}\t{}\t{}\t{}\t{}",
        s.sent,
        s.delivered,
        s.dropped,
        records.len(),
        collector.missed_datagrams(),
        collector.missed_records(),
        collector.restarts_detected(),
        collector.malformed_messages(),
        collector.malformed_sets(),
        collector.dropped_unknown_template(),
    );
    (s.delivered, collector.missed_datagrams(), decoded)
}

/// Run the ISP study at one severity; `None` severity = clean vantage.
fn detection_step(p: &Pipeline, args: &Args, severity: Option<f64>, days: u32) -> Confusion {
    let label = severity.map_or("clean".to_string(), |s| format!("{s:.1}"));
    let scope = telemetry::Scope::named(&format!("detect.{label}"));
    let mut isp = build_isp(p, args);
    if let Some(s) = severity {
        isp = IspVantage::with_chaos(isp, ChaosConfig::at_severity(s, args.seed ^ 0xC4A0));
    }
    // The degraded feed streams chunk-by-chunk into the persistent
    // worker pool; degradation accounting rides along on the chunks.
    let mut pool = DetectorPool::new(&p.rules, &HitList::default(), DetectorConfig::default(), 4);
    pool.attach_telemetry(&scope.sub("pool")).unwrap();
    // Supervised like the deployment shape — the hitlist swaps below
    // double as shard checkpoints, so the `# telemetry` section carries
    // the checkpoint.* recovery counters.
    pool.enable_supervision(haystack_core::parallel::DEFAULT_REPLAY_LIMIT).unwrap();
    let mut chunk = RecordChunk::with_capacity(DEFAULT_CHUNK_RECORDS);
    let mut degradation = haystack_wild::FeedDegradation::default();
    for day in 0..days {
        pool.set_hitlist(&HitList::for_day(&p.rules, &p.dnsdb, DayBin(day))).unwrap();
        for hour in DayBin(day).hours() {
            let mut stream = InstrumentedStream::new(
                isp.stream_hour(&p.world, hour, DEFAULT_CHUNK_RECORDS),
                &scope.sub("stream"),
            );
            let (_records, _packets, deg) = pool.observe_stream(&mut stream, &mut chunk).unwrap();
            degradation.absorb(deg);
        }
    }
    pool.finish().unwrap();
    let mut total = Confusion::default();
    let last_day = days - 1;
    for r in &p.rules.rules {
        let c = evaluate(p, &isp, &mut pool, p.rules.class_name(r.class), last_day);
        total.true_pos += c.true_pos;
        total.false_pos += c.false_pos;
        total.false_neg += c.false_neg;
    }
    println!(
        "{label}\t{}\t{}\t{}\t{:.3}\t{:.3}\t{:.3}\t{}",
        total.true_pos,
        total.false_pos,
        total.false_neg,
        total.precision(),
        total.recall(),
        total.f1(),
        pct(degradation.delivery_ratio()),
    );
    total
}

fn main() {
    let args = Args::parse();
    // The report doubles as the telemetry showcase: every stage below
    // feeds the global registry, dumped as JSON at the end (§11).
    telemetry::set_enabled(true);

    // ---- Section 1: the wire path under chaos -------------------------
    let records = synthetic_records(if args.fast { 4_000 } else { 20_000 }, args.seed);
    println!("# wire sweep: Exporter -> ChaosLink -> Collector, NetFlow v9, batch 30");
    println!(
        "severity\tsent\tdelivered\tdropped\texported\tdecoded\tmissed_dg\tmissed_rec\trestarts\tmalformed_msg\tmalformed_set\tunknown_tmpl"
    );
    let severities: &[f64] = if args.fast {
        &[0.0, 0.3, 0.6, 1.0]
    } else {
        &[0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    };
    for &s in severities {
        let (_, _, decoded) = wire_step(s, args.seed, &records);
        if s == 0.0 {
            assert_eq!(
                decoded,
                records.len(),
                "severity 0 must decode exactly the exported records"
            );
        }
    }

    // The acceptance scenario: 10 % datagram loss plus one exporter
    // restart mid-stream. The collector must come through with gap and
    // restart counters set, never a panic.
    let chaos = ChaosConfig {
        drop_probability: 0.1,
        restart_after: Some(40),
        seed: args.seed,
        ..ChaosConfig::off()
    };
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
    let mut link = ChaosLink::new(chaos);
    let mut collector = Collector::new();
    let mut decoded = 0usize;
    for (hour, chunk) in records.chunks(256).enumerate() {
        for d in link.transmit_all(exporter.export(chunk, 3_600 * hour as u32).expect("export")) {
            decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
        }
    }
    for d in link.shutdown() {
        decoded += collector.feed_netflow_v9(d).map_or(0, |rs| rs.len());
    }
    assert!(collector.missed_datagrams() > 0, "10% loss must register sequence gaps");
    assert!(collector.restarts_detected() >= 1, "the restart must be detected");
    assert!(decoded > 0, "most records still decode");
    telemetry::observe_collector(&telemetry::Scope::named("wire.collector"), &collector);
    println!(
        "# acceptance: 10% loss + restart -> decoded {}/{} ({}), missed_dg {}, restarts {}",
        decoded,
        records.len(),
        pct(decoded as f64 / records.len() as f64),
        collector.missed_datagrams(),
        collector.restarts_detected(),
    );

    // ---- Section 2: detection quality under a degraded feed -----------
    let p = build_pipeline(&args);
    let days = if args.fast { 1u32 } else { 2 };
    println!("# detection sweep: ISP study over {days} day(s), micro-averaged across classes");
    println!("severity\ttp\tfp\tfn\tprecision\trecall\tf1\tdelivery");
    let clean = detection_step(&p, &args, None, days);
    let zero = detection_step(&p, &args, Some(0.0), days);
    assert_eq!(
        (clean.true_pos, clean.false_pos, clean.false_neg),
        (zero.true_pos, zero.false_pos, zero.false_neg),
        "severity 0 must reproduce the clean study exactly"
    );
    let det_severities: &[f64] = if args.fast { &[0.3, 0.6] } else { &[0.2, 0.4, 0.6, 0.8] };
    let mut last_recall = zero.recall();
    for &s in det_severities {
        let c = detection_step(&p, &args, Some(s), days);
        if s <= 0.6 && clean.recall() > 0.0 {
            assert!(
                c.recall() > 0.0,
                "recall must degrade smoothly, not cliff to zero (severity {s})"
            );
        }
        last_recall = c.recall();
    }
    println!(
        "# recall: clean {} -> severity {:.1} {} (evidence thins; verdicts don't flip to noise)",
        pct(clean.recall()),
        det_severities.last().copied().unwrap_or(0.0),
        pct(last_recall),
    );

    // ---- Section 3: pipeline telemetry --------------------------------
    println!("# telemetry");
    let snap = telemetry::global().snapshot();
    println!("{}", serde_json::to_string_pretty(&snap.to_json()).expect("serializable"));
}
