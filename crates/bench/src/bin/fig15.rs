//! Figure 15: IoT activity at the IXP — unique client IPs per day for
//! Samsung IoT, Alexa Enabled, and the other 32 device types, from IPFIX
//! sampled an order of magnitude lower than the ISP, after the §6.3
//! established-TCP filter.
//!
//! Paper reference (absolute, at full scale): ~90 k Samsung, ~200 k
//! Alexa, >100 k other per day, flat across the two weeks. Counts here
//! scale with the configured member populations; flatness and ordering
//! are the comparable properties.

use haystack_bench::{build_ixp, build_pipeline, study_window, Args};
use haystack_core::report::{run_ixp_study, DeviceGroup, IxpStudyConfig};

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let ixp = build_ixp(&p, &args);
    let total_lines: u32 = ixp.members().iter().map(|m| m.lines).sum();
    eprintln!(
        "# running IXP study: {} members, {} lines total, sampling 1/10000 ...",
        ixp.members().len(),
        total_lines
    );
    let study = run_ixp_study(
        &p,
        &p.world,
        &ixp,
        &IxpStudyConfig { window: study_window(&args), ..Default::default() },
    );

    println!("# fig15: unique detected client IPs per day (established-TCP filtered)");
    println!("day\tsamsung\talexa\tother32");
    let days: std::collections::BTreeSet<u32> =
        study.daily_ips.keys().map(|(_, d)| *d).collect();
    for d in &days {
        println!(
            "{d}\t{}\t{}\t{}",
            study.daily_ips.get(&(DeviceGroup::Samsung, *d)).copied().unwrap_or(0),
            study.daily_ips.get(&(DeviceGroup::Alexa, *d)).copied().unwrap_or(0),
            study.daily_ips.get(&(DeviceGroup::Other, *d)).copied().unwrap_or(0),
        );
    }
    println!(
        "\n# spoofing filter: {} records observed, {} kept",
        study.records_before_filter, study.records_after_filter
    );
    println!("# paper ordering: Alexa > other-32 > Samsung, flat across days");
}
