//! Figure 6: fraction of the most popular service IPs (heavy hitters by
//! byte count at the Home-VP) that remain visible at the sampled ISP-VP,
//! per hour, for the top 10 % / 20 % / 30 %.
//!
//! Paper reference points: top-10 % visibility > 75 % (up to 90 %);
//! top-20 % ≈ 70 %, top-30 % ≈ 60 % in the active experiment.

use haystack_bench::{build_pipeline, pct, Args};
use haystack_core::visibility::{heavy_hitter_visibility, sample_stream, HourVisibility};
use haystack_flow::SystematicSampler;
use haystack_net::StudyWindow;
use haystack_testbed::ExperimentKind;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let mut sampler = SystematicSampler::new(1_000, args.seed % 1_000).unwrap();

    let take = if args.fast { 6 } else { usize::MAX };
    let hours: Vec<_> = StudyWindow::ACTIVE_GT
        .hour_bins()
        .take(take)
        .chain(StudyWindow::IDLE_GT.hour_bins().take(take))
        .collect();

    println!("# hour kind top10 top20 top30 observed_overall");
    let mut acc = [[0f64; 5]; 2];
    for hour in hours {
        let kind = haystack_testbed::ExperimentDriver::kind_of_hour(hour).expect("GT hour");
        let pkts = p.driver.generate_hour(&p.world, hour);
        let home = HourVisibility::summarize(&pkts);
        let isp = HourVisibility::summarize(&sample_stream(&pkts, &mut sampler));
        let t10 = heavy_hitter_visibility(&home, &isp, 0.10).unwrap_or(0.0);
        let t20 = heavy_hitter_visibility(&home, &isp, 0.20).unwrap_or(0.0);
        let t30 = heavy_hitter_visibility(&home, &isp, 0.30).unwrap_or(0.0);
        let all = heavy_hitter_visibility(&home, &isp, 1.0).unwrap_or(0.0);
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}",
            hour,
            if kind == ExperimentKind::Active { "active" } else { "idle" },
            pct(t10),
            pct(t20),
            pct(t30),
            pct(all)
        );
        let idx = usize::from(kind == ExperimentKind::Idle);
        acc[idx][0] += t10;
        acc[idx][1] += t20;
        acc[idx][2] += t30;
        acc[idx][3] += all;
        acc[idx][4] += 1.0;
    }

    println!("\n# averages (paper: top-10% >75%, top-20% ~70%, top-30% ~60% active)");
    for (idx, label) in [(0usize, "active"), (1, "idle")] {
        let n = acc[idx][4].max(1.0);
        println!(
            "{label}: top10 {} top20 {} top30 {} overall {}",
            pct(acc[idx][0] / n),
            pct(acc[idx][1] / n),
            pct(acc[idx][2] / n),
            pct(acc[idx][3] / n)
        );
    }
}
