//! Baseline comparison (§8): the traffic-feature classifier of [34] vs
//! the paper's destination-signature method, on identical data.
//!
//! Protocol: train the feature baseline per device class on Home-VP idle
//! captures (full packets — [34]'s setting), then evaluate per
//! (device, hour) classification on (a) held-out full captures and
//! (b) the ISP's 1/1000-sampled view of the same hours. The signature
//! method's numbers come from the §5 crosscheck on the same sampled
//! stream. Expected: the baseline is respectable on full captures and
//! collapses under sampling, while signatures keep working — §8's
//! argument, measured.

use haystack_bench::{build_pipeline, pct, Args};
use haystack_core::baseline::{accuracy, extract, CentroidClassifier, FeatureVector, FlowObs};
use haystack_core::crosscheck::{detection_times, CrosscheckConfig};
use haystack_flow::sampling::PacketSampler;
use haystack_flow::SystematicSampler;
use haystack_net::StudyWindow;
use haystack_testbed::{ExperimentKind, GroundTruthPacket};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Group one instance-hour's packets into flow observations.
fn to_flows(packets: &[&GroundTruthPacket]) -> Vec<FlowObs> {
    let mut agg: HashMap<(Ipv4Addr, u16), (u64, u64)> = HashMap::new();
    for g in packets {
        let e = agg.entry((g.packet.dst, g.packet.dport)).or_default();
        e.0 += 1;
        e.1 += u64::from(g.packet.bytes);
    }
    agg.into_iter()
        .map(|((dst, dport), (packets, bytes))| FlowObs { dst, dport, packets, bytes })
        .collect()
}

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let take = if args.fast { 6 } else { 48 };
    let hours: Vec<_> = StudyWindow::IDLE_GT.hour_bins().take(take).collect();
    let split = hours.len() / 2;

    // Collect per-(instance, hour) packet groups, full and sampled.
    let mut sampler = SystematicSampler::new(1_000, 7).unwrap();
    let mut train: Vec<(&'static str, FeatureVector)> = Vec::new();
    let mut eval_full: Vec<(&'static str, Option<FeatureVector>)> = Vec::new();
    let mut eval_sampled: Vec<(&'static str, Option<FeatureVector>)> = Vec::new();
    for (hi, hour) in hours.iter().enumerate() {
        let packets = p.driver.generate_hour(&p.world, *hour);
        let sampled: Vec<bool> = packets.iter().map(|_| sampler.sample()).collect();
        let mut per_instance: HashMap<u32, Vec<&GroundTruthPacket>> = HashMap::new();
        let mut per_instance_sampled: HashMap<u32, Vec<&GroundTruthPacket>> = HashMap::new();
        for (g, keep) in packets.iter().zip(&sampled) {
            per_instance.entry(g.instance).or_default().push(g);
            if *keep {
                per_instance_sampled.entry(g.instance).or_default().push(g);
            }
        }
        for inst in p.driver.instances() {
            let class = p.catalog.products[inst.product].class;
            let full_flows =
                per_instance.get(&inst.id).map(|v| to_flows(v)).unwrap_or_default();
            let sampled_flows = per_instance_sampled
                .get(&inst.id)
                .map(|v| to_flows(v))
                .unwrap_or_default();
            if hi < split {
                if let Some(fv) = extract(&full_flows) {
                    train.push((class, fv));
                }
            } else {
                eval_full.push((class, extract(&full_flows)));
                eval_sampled.push((class, extract(&sampled_flows)));
            }
        }
    }

    let clf = CentroidClassifier::fit(&train);
    let a_full = accuracy(&clf, &eval_full);
    let a_sampled = accuracy(&clf, &eval_sampled);

    // The signature method on the same sampled stream: fraction of rule
    // classes detected at all within the idle window (D = 0.4).
    let times = detection_times(
        &p,
        &CrosscheckConfig {
            sampling: 1_000,
            kind: ExperimentKind::Idle,
            hours: if args.fast { Some(6) } else { None },
        },
        &[0.4],
    );
    let detected = times.iter().filter(|t| t.hours_to_detect.is_some()).count();
    let sig_coverage = detected as f64 / times.len().max(1) as f64;

    println!("# baseline_compare: feature classifier [34] vs destination signatures");
    println!("metric\tvalue");
    println!("baseline classes trained\t{}", clf.num_classes());
    println!("baseline accuracy, full capture (device-hour)\t{}", pct(a_full));
    println!("baseline accuracy, 1/1000 sampled (device-hour)\t{}", pct(a_sampled));
    println!("signature coverage, same sampled stream (classes detected, idle window)\t{}", pct(sig_coverage));
    println!(
        "\n# §8: feature approaches need full captures ({} here); under ISP sampling they\n\
         # collapse ({}), while destination signatures still cover {} of rule classes.",
        pct(a_full),
        pct(a_sampled),
        pct(sig_coverage)
    );
}
