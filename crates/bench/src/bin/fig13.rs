//! Figure 13: cumulative subscriber lines (upper panel) and /24 prefixes
//! (lower panel) with detected IoT activity across the study window —
//! the churn analysis of §6.2.
//!
//! Paper reference: the per-line cumulative counts keep growing (double
//! counting under identifier rotation) while the /24 curves stabilize
//! smoothly at class-dependent levels.

use haystack_bench::{build_pipeline, run_standard_isp_study, Args};

const CLASSES: &[&str] =
    &["Alexa Enabled", "Amazon Product", "Fire TV", "Samsung IoT", "Samsung TV"];

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let (_isp, study) = run_standard_isp_study(&p, &args);
    let days: Vec<u32> = study.any_iot_daily.keys().copied().collect();

    println!("# fig13 upper: cumulative unique subscriber lines per day");
    print!("day");
    for c in CLASSES {
        print!("\t{c}");
    }
    println!();
    for d in &days {
        print!("{d}");
        for c in CLASSES {
            print!("\t{}", study.cumulative_lines.get(&((*c).to_string(), *d)).copied().unwrap_or(0));
        }
        println!();
    }

    println!("\n# fig13 lower: cumulative unique /24s per day");
    print!("day");
    for c in CLASSES {
        print!("\t{c}");
    }
    println!();
    for d in &days {
        print!("{d}");
        for c in CLASSES {
            print!("\t{}", study.cumulative_slash24.get(&((*c).to_string(), *d)).copied().unwrap_or(0));
        }
        println!();
    }

    // Growth factors: lines should grow faster than /24s.
    if days.len() >= 2 {
        let first = days[0];
        let last = *days.last().unwrap();
        println!("\n# growth (last/first day) — lines should outgrow /24s:");
        for c in CLASSES {
            let l0 = study.cumulative_lines.get(&((*c).to_string(), first)).copied().unwrap_or(0) as f64;
            let l1 = study.cumulative_lines.get(&((*c).to_string(), last)).copied().unwrap_or(0) as f64;
            let p0 = study.cumulative_slash24.get(&((*c).to_string(), first)).copied().unwrap_or(0) as f64;
            let p1 = study.cumulative_slash24.get(&((*c).to_string(), last)).copied().unwrap_or(0) as f64;
            println!(
                "{c}\tlines x{:.2}\t/24s x{:.2}",
                l1 / l0.max(1.0),
                p1 / p0.max(1.0)
            );
        }
    }
}
