//! Figure 5: Home-VP vs ISP-VP visibility of the ground-truth traffic.
//!
//! (a) unique service IPs per hour, (b) unique domains per hour,
//! (c) cumulative service IPs per port class, (d) unique devices per
//! hour — each at the Home-VP (full capture) and the ISP-VP (NetFlow
//! packet sampling, 1/1000).
//!
//! Paper reference points: ISP-VP sees ~16 % of hourly service IPs and
//! 67 %/64 % of devices per hour (active/idle).

use haystack_bench::{build_pipeline, pct, Args};
use haystack_core::visibility::{sample_stream, HourVisibility};
use haystack_flow::SystematicSampler;
use haystack_net::ports::PortClass;
use haystack_net::StudyWindow;
use haystack_testbed::ExperimentKind;
use std::collections::BTreeSet;
use std::net::Ipv4Addr;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let mut sampler = SystematicSampler::new(1_000, args.seed % 1_000).unwrap();

    let take = if args.fast { 6 } else { usize::MAX };
    let hours: Vec<_> = StudyWindow::ACTIVE_GT
        .hour_bins()
        .take(take)
        .chain(StudyWindow::IDLE_GT.hour_bins().take(take))
        .collect();

    let mut cum_home: std::collections::BTreeMap<PortClass, BTreeSet<Ipv4Addr>> = Default::default();
    let mut cum_isp: std::collections::BTreeMap<PortClass, BTreeSet<Ipv4Addr>> = Default::default();
    let mut sums = [[0f64; 4]; 2]; // [active|idle][ip_frac, dom_frac, dev_frac, count]

    println!("# fig5a/b/d rows: hour kind home_ips isp_ips home_domains isp_domains home_devices isp_devices");
    for hour in hours {
        let kind = haystack_testbed::ExperimentDriver::kind_of_hour(hour).expect("GT hour");
        let pkts = p.driver.generate_hour(&p.world, hour);
        let home = HourVisibility::summarize(&pkts);
        let isp = HourVisibility::summarize(&sample_stream(&pkts, &mut sampler));
        println!(
            "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}",
            hour,
            match kind {
                ExperimentKind::Active => "active",
                ExperimentKind::Idle => "idle",
            },
            home.service_ips.len(),
            isp.service_ips.len(),
            home.domains.len(),
            isp.domains.len(),
            home.devices.len(),
            isp.devices.len(),
        );
        for (cls, set) in &home.ips_by_class {
            cum_home.entry(*cls).or_default().extend(set.iter().copied());
        }
        for (cls, set) in &isp.ips_by_class {
            cum_isp.entry(*cls).or_default().extend(set.iter().copied());
        }
        let idx = usize::from(kind == ExperimentKind::Idle);
        if !home.service_ips.is_empty() {
            sums[idx][0] += isp.service_ips.len() as f64 / home.service_ips.len() as f64;
            sums[idx][1] += isp.domains.len() as f64 / home.domains.len().max(1) as f64;
            sums[idx][2] += isp.devices.len() as f64 / home.devices.len().max(1) as f64;
            sums[idx][3] += 1.0;
        }
    }

    println!("\n# fig5c: cumulative service IPs per port class (whole GT period)");
    println!("class\thome_vp\tisp_vp");
    for cls in [PortClass::Web, PortClass::Ntp, PortClass::Other] {
        println!(
            "{}\t{}\t{}",
            cls.label(),
            cum_home.get(&cls).map(BTreeSet::len).unwrap_or(0),
            cum_isp.get(&cls).map(BTreeSet::len).unwrap_or(0)
        );
    }

    println!("\n# summary (paper: ~16% hourly service-IP visibility; devices 67% active / 64% idle)");
    for (idx, label) in [(0usize, "active"), (1, "idle")] {
        let n = sums[idx][3].max(1.0);
        println!(
            "{label}: avg hourly visibility — service IPs {}, domains {}, devices {}",
            pct(sums[idx][0] / n),
            pct(sums[idx][1] / n),
            pct(sums[idx][2] / n)
        );
    }
}
