//! Figure 12: drill-down within the two big hierarchies, per day —
//! Alexa Enabled ⊃ Amazon Product ⊃ Fire TV, and Samsung IoT ⊃ Samsung
//! TV, at the conservative threshold D = 0.4.
//!
//! Paper reference: the specialized classes account for a stable
//! fraction of their superclass across days.

use haystack_bench::{build_pipeline, pct, run_standard_isp_study, Args};

const CLASSES: &[&str] =
    &["Alexa Enabled", "Amazon Product", "Fire TV", "Samsung IoT", "Samsung TV"];

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let (_isp, study) = run_standard_isp_study(&p, &args);

    println!("# fig12: unique subscriber lines per day (D=0.4)");
    print!("day");
    for c in CLASSES {
        print!("\t{c}");
    }
    println!();
    let days: Vec<u32> = study.any_iot_daily.keys().copied().collect();
    for d in &days {
        print!("{d}");
        for c in CLASSES {
            print!("\t{}", study.daily.get(&((*c).to_string(), *d)).copied().unwrap_or(0));
        }
        println!();
    }

    let at = |c: &str, d: u32| study.daily.get(&(c.to_string(), d)).copied().unwrap_or(0) as f64;
    let d0 = days[0];
    println!("\n# day-0 hierarchy shares:");
    println!(
        "amazon products are {} of alexa-enabled; fire tv is {} of amazon products",
        pct(at("Amazon Product", d0) / at("Alexa Enabled", d0).max(1.0)),
        pct(at("Fire TV", d0) / at("Amazon Product", d0).max(1.0)),
    );
    println!(
        "samsung tvs are {} of samsung iot",
        pct(at("Samsung TV", d0) / at("Samsung IoT", d0).max(1.0)),
    );
}
