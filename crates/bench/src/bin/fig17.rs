//! Figure 17: one Alexa-enabled device (an Echo Dot instance), packets
//! per hour at the Home-VP and at the sampled ISP-VP, active vs idle.
//!
//! Paper reference points: interactions push the Home-VP count above 1 k
//! and the ISP-VP count above 10 sampled packets; idle hours never reach
//! those levels — the basis of §7.1's usage threshold.

use haystack_bench::{build_pipeline, Args};
use haystack_flow::sampling::PacketSampler;
use haystack_flow::SystematicSampler;
use haystack_net::StudyWindow;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);

    // Pick the US-testbed Echo Dot (live from day 0).
    let echo = p
        .driver
        .instances()
        .iter()
        .find(|i| {
            p.catalog.products[i.product].name == "Echo Dot"
                && i.testbed == haystack_testbed::TestbedId::Us
        })
        .expect("Echo Dot instance")
        .id;

    let take = if args.fast { 8 } else { usize::MAX };
    let hours: Vec<_> = StudyWindow::ACTIVE_GT
        .hour_bins()
        .take(take)
        .chain(StudyWindow::IDLE_GT.hour_bins().take(take))
        .collect();
    let mut sampler = SystematicSampler::new(1_000, 7).unwrap();

    println!("# hour kind home_pkts isp_sampled_pkts interactions");
    let mut peaks = [(0u64, 0u64); 2]; // [active|idle] (home, isp)
    for hour in hours {
        let kind = haystack_testbed::ExperimentDriver::kind_of_hour(hour).expect("GT hour");
        let idx = usize::from(kind == haystack_testbed::ExperimentKind::Idle);
        let pkts = p.driver.generate_hour(&p.world, hour);
        let mine: Vec<_> = pkts.iter().filter(|g| g.instance == echo).collect();
        let sampled = mine.iter().filter(|_| sampler.sample()).count() as u64;
        let home = mine.len() as u64;
        println!(
            "{}\t{}\t{}\t{}\t{}",
            hour,
            if idx == 0 { "active" } else { "idle" },
            home,
            sampled,
            p.driver.interactions(echo, hour)
        );
        peaks[idx].0 = peaks[idx].0.max(home);
        peaks[idx].1 = peaks[idx].1.max(sampled);
    }
    println!(
        "\n# peaks: active home {} / isp {}; idle home {} / isp {}",
        peaks[0].0, peaks[0].1, peaks[1].0, peaks[1].1
    );
    println!(
        "# paper: activity spikes >1k at home and >10 at the ISP; idle never reaches either."
    );
}
