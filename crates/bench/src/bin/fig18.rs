//! Figure 18: subscriber lines with *actively used* Alexa-enabled
//! devices per hour (§7.1's 10-sampled-packets threshold), against the
//! hourly and daily presence counts.
//!
//! Paper reference (15 M lines): presence ~1 M+/hour and ~2 M/day;
//! active use peaks ~27 k during daytime/weekend hours, following the
//! diurnal human-activity curve.

use haystack_bench::{build_pipeline, run_standard_isp_study, Args};
use haystack_core::report::DeviceGroup;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let (_isp, study) = run_standard_isp_study(&p, &args);

    println!("# fig18: Alexa Enabled — presence vs active use");
    println!("hour\tdetected_lines\tactively_used_lines");
    let hours: std::collections::BTreeSet<u32> =
        study.group_hourly.keys().map(|(_, h)| *h).collect();
    for h in &hours {
        println!(
            "{h}\t{}\t{}",
            study.group_hourly.get(&(DeviceGroup::Alexa, *h)).copied().unwrap_or(0),
            study.active_hourly.get(&("Alexa Enabled".to_string(), *h)).copied().unwrap_or(0),
        );
    }

    let peak_hour = hours
        .iter()
        .max_by_key(|h| study.active_hourly.get(&("Alexa Enabled".to_string(), **h)).copied().unwrap_or(0));
    if let Some(h) = peak_hour {
        let peak = study.active_hourly.get(&("Alexa Enabled".to_string(), *h)).copied().unwrap_or(0);
        let night = study
            .active_hourly
            .get(&("Alexa Enabled".to_string(), (h / 24) * 24 + 3))
            .copied()
            .unwrap_or(0);
        println!(
            "\n# peak active use {peak} lines at hour {} ({}:00); at 03:00 same day: {night}",
            h,
            h % 24
        );
        println!("# paper: active use follows the diurnal pattern, peaking during day/evening.");
    }
    println!("\n# daily presence for scale:");
    for (k, v) in study.group_daily.iter().filter(|((g, _), _)| *g == DeviceGroup::Alexa) {
        println!("day {}\t{}", k.1, v);
    }
}
