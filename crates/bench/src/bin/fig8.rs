//! Figure 8: average packets/hour per domain for 13 devices in idle mode
//! — the laconic vs gossiping split. The paper's circular bar plot
//! becomes a per-device table sorted by rate.

use haystack_bench::{build_pipeline, Args};
use haystack_net::StudyWindow;
use std::collections::{BTreeMap, HashMap};

/// The 13 devices Figure 8 plots (mapped to our class/product names).
const FIG8_CLASSES: &[&str] = &[
    "Apple TV",
    "Blink Hub & Cam.",
    "Amazon Product", // Echo Dot
    "Meross Dooropener",
    "Netatmo Weather St.",
    "Philips Dev.",
    "Smarter Coffee", // Smarter Brewer
    "Smartlife",
    "Smartthings Dev.",
    "Anova Sousvide", // Sous vide
    "TP-link Dev.",
    "Xiaomi Dev.",
    "Yi Camera",
];

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);

    let take = if args.fast { 6 } else { usize::MAX };
    let hours: Vec<_> = StudyWindow::IDLE_GT.hour_bins().take(take).collect();
    let n_hours = hours.len() as f64;

    // packets per (class, domain) at the Home-VP, idle mode.
    let mut counts: HashMap<(&'static str, u32), u64> = HashMap::new();
    for hour in &hours {
        for g in p.driver.generate_hour(&p.world, *hour) {
            let inst = &p.driver.instances()[g.instance as usize];
            let class = p.catalog.products[inst.product].class;
            *counts.entry((class, g.domain_id)).or_default() += 1;
        }
    }

    println!("# class domain avg_pkts_per_hour (idle, Home-VP)");
    for class in FIG8_CLASSES {
        let mut rows: BTreeMap<&str, f64> = BTreeMap::new();
        for ((c, did), n) in &counts {
            if c == class {
                let name = p.driver.domain_table()[*did as usize].name.as_str();
                rows.insert(name, *n as f64 / n_hours);
            }
        }
        let mut sorted: Vec<_> = rows.into_iter().collect();
        sorted.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        let total: f64 = sorted.iter().map(|(_, v)| v).sum();
        let verdict = if sorted.len() >= 15 || total > 5_000.0 { "gossiping" } else { "laconic" };
        println!("\n{class}  [{} domains, {:.0} pkts/h total → {verdict}]", sorted.len(), total);
        for (name, rate) in sorted.iter().take(12) {
            println!("  {name}\t{rate:.1}");
        }
        if sorted.len() > 12 {
            println!("  ... {} more domains", sorted.len() - 12);
        }
    }
    println!(
        "\n# paper: most devices have <10 domains (laconic); Apple TV and Echo Dot \
         are gossiping, with Apple TV's domains CNAMEd into a CDN."
    );
}
