//! Figure 16: the per-member-AS distribution of IXP-detected IoT client
//! IPs on the first study day — an ECDF showing extreme skew: a few
//! eyeball members hold most of the detected IPs; the tail is long but
//! thin.

use haystack_bench::{build_ixp, build_pipeline, pct, Args};
use haystack_core::report::{run_ixp_study, DeviceGroup, IxpStudyConfig};
use haystack_net::StudyWindow;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let ixp = build_ixp(&p, &args);
    eprintln!("# running IXP study (day 0 only) ...");
    let study = run_ixp_study(
        &p,
        &p.world,
        &ixp,
        &IxpStudyConfig { window: StudyWindow::days(0, 1), ..Default::default() },
    );

    for group in [DeviceGroup::Samsung, DeviceGroup::Alexa, DeviceGroup::Other] {
        let mut counts: Vec<(String, &'static str, u64)> = ixp
            .members()
            .iter()
            .map(|m| {
                (
                    format!("{} ({})", m.asn, m.name),
                    m.category.label(),
                    study.per_as_day0.get(&(m.asn, group)).copied().unwrap_or(0),
                )
            })
            .collect();
        counts.sort_by_key(|row| std::cmp::Reverse(row.2));
        let total: u64 = counts.iter().map(|(_, _, n)| n).sum();
        println!("\n# fig16 [{}]: per-AS share of unique detected IPs, day 0", group.label());
        println!("member\tcategory\tips\tshare");
        for (name, cat, n) in &counts {
            println!("{name}\t{cat}\t{n}\t{}", pct(*n as f64 / total.max(1) as f64));
        }
        // ECDF summary: share held by the top 10 % of members.
        let members_with_any = counts.iter().filter(|(_, _, n)| *n > 0).count();
        let top = counts.len().div_ceil(10);
        let top_share: u64 = counts.iter().take(top).map(|(_, _, n)| n).sum();
        println!(
            "# top {top} of {} members hold {} of detected IPs; {members_with_any} members have any",
            counts.len(),
            pct(top_share as f64 / total.max(1) as f64)
        );
    }
    println!("\n# paper: distributions are skewed — a few eyeball ASes carry most IoT activity, with a long tail.");
}
