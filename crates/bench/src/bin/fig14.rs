//! Figure 14: the "other 32" device types in the wild — unique
//! subscriber lines per day for every non-Alexa, non-Samsung detection
//! class, annotated with the class's market-rank band in the ISP's
//! country.
//!
//! Paper reference: counts are very stable across days; popular device
//! types (Philips: >100 k lines/day at 15 M lines) dominate, but even
//! no-market devices (Microseven) show a trickle.

use haystack_bench::{build_pipeline, run_standard_isp_study, Args};
use haystack_core::report::DeviceGroup;
use haystack_testbed::catalog::MarketRank;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let (_isp, study) = run_standard_isp_study(&p, &args);
    let days: Vec<u32> = study.any_iot_daily.keys().copied().collect();

    // Market band per class: the best rank among its products.
    let band = |class: &str| -> MarketRank {
        p.catalog
            .products
            .iter()
            .filter(|pr| p.catalog.ancestry(pr.class).iter().any(|c| c.name == class))
            .map(|pr| pr.market_rank)
            .min()
            .unwrap_or(MarketRank::Other)
    };

    println!("# fig14: unique subscriber lines per day, other-32 classes (rows sorted by day-0 count)");
    print!("class\tmarket");
    for d in &days {
        print!("\tday{d}");
    }
    println!();
    let mut rows: Vec<(&str, MarketRank, Vec<u64>)> = p
        .rules
        .rules
        .iter()
        .filter(|r| DeviceGroup::of(&p, p.rules.class_name(r.class)) == DeviceGroup::Other)
        .map(|r| {
            let class = p.rules.class_name(r.class);
            let counts: Vec<u64> = days
                .iter()
                .map(|d| study.daily.get(&(class.to_string(), *d)).copied().unwrap_or(0))
                .collect();
            (class, band(class), counts)
        })
        .collect();
    rows.sort_by(|a, b| b.2[0].cmp(&a.2[0]));
    for (class, rank, counts) in &rows {
        print!("{class}\t{}", rank.label());
        for c in counts {
            print!("\t{c}");
        }
        println!();
    }
    println!("\n# {} other-32 classes reported (paper plots 32)", rows.len());
    // Stability check: max day-to-day swing per class.
    let mut max_swing = 0.0f64;
    for (_, _, counts) in &rows {
        let lo = *counts.iter().min().unwrap() as f64;
        let hi = *counts.iter().max().unwrap() as f64;
        if lo > 20.0 {
            max_swing = max_swing.max(hi / lo);
        }
    }
    println!("# largest day-to-day ratio among well-populated classes: x{max_swing:.2} (paper: 'very stable')");
}
