//! Figure 9: ECDF of the average packets/hour per (device, IoT-specific
//! domain), for the idle and the active experiments.
//!
//! Paper reference points: most device-domain pairs exchange ≤100
//! packets/hour; active experiments push some domains past 10 k.

use haystack_bench::{build_pipeline, Args};
use haystack_core::visibility::{ecdf, ecdf_at};
use haystack_net::StudyWindow;
use std::collections::HashMap;

fn main() {
    let args = Args::parse();
    let p = build_pipeline(&args);
    let take = if args.fast { 6 } else { usize::MAX };

    let mut curves: Vec<(&str, Vec<(f64, f64)>)> = Vec::new();
    for (label, window) in [("active", StudyWindow::ACTIVE_GT), ("idle", StudyWindow::IDLE_GT)] {
        let hours: Vec<_> = window.hour_bins().take(take).collect();
        let mut counts: HashMap<(u32, u32), u64> = HashMap::new();
        for hour in &hours {
            for g in p.driver.generate_hour(&p.world, *hour) {
                let spec = &p.driver.domain_table()[g.domain_id as usize];
                if p.world.is_generic(&spec.name) {
                    continue; // IoT-specific domains only (§4.1)
                }
                *counts.entry((g.instance, g.domain_id)).or_default() += 1;
            }
        }
        let n_hours = hours.len() as f64;
        let rates: Vec<f64> = counts.values().map(|n| *n as f64 / n_hours).collect();
        curves.push((label, ecdf(&rates)));
    }

    println!("# ECDF of avg packets/hour per (device, IoT-specific domain)");
    println!("pkts_per_hour\tactive_F\tidle_F");
    for x in [1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1_000.0, 3_000.0, 10_000.0] {
        let a = ecdf_at(&curves[0].1, x);
        let i = ecdf_at(&curves[1].1, x);
        println!("{x}\t{a:.3}\t{i:.3}");
    }
    for (label, curve) in &curves {
        let max = curve.last().map(|(v, _)| *v).unwrap_or(0.0);
        println!("# {label}: {} pairs, max rate {max:.0} pkts/h", curve.len());
    }
    println!(
        "# paper: 'almost all devices and domains are exchanging at least 100 packets \
         per hour' is the upper tail here; active interactions push past 10k."
    );
}
