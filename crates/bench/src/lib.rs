//! Shared scaffolding for the reproduction binaries and benches.
//!
//! Every paper table/figure has a binary under `src/bin/` (see DESIGN.md's
//! per-experiment index); they share the argument conventions and builders
//! here. All binaries accept:
//!
//! * `--fast` — shrink ground-truth windows and populations for a smoke
//!   run (minutes → seconds);
//! * `--lines N` — ISP population size (default 100 000);
//! * `--seed N` — RNG seed (default 42).
//!
//! Output is TSV on stdout with `#`-prefixed commentary, so results can
//! be diffed into EXPERIMENTS.md or piped into a plotter.

use haystack_core::pipeline::{Pipeline, PipelineConfig};
use haystack_wild::{IspConfig, IspVantage, IxpConfig, IxpVantage};

/// Parsed common CLI arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Smoke-run mode.
    pub fast: bool,
    /// ISP subscriber lines.
    pub lines: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Args {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn parse() -> Args {
        let mut args = Args { fast: false, lines: 100_000, seed: 42 };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--fast" => args.fast = true,
                "--lines" => {
                    args.lines = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--lines needs a number"));
                }
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage("--seed needs a number"));
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        args
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: <bin> [--fast] [--lines N] [--seed N]");
    std::process::exit(2);
}

/// Build the §2–§4 pipeline at the requested fidelity.
pub fn build_pipeline(args: &Args) -> Pipeline {
    let config = if args.fast {
        PipelineConfig::fast(args.seed)
    } else {
        PipelineConfig { seed: args.seed, ..Default::default() }
    };
    eprintln!(
        "# building pipeline (ground truth {} h active / {} h idle) ...",
        config.active_hours, config.idle_hours
    );
    Pipeline::run(config)
}

/// Standard ISP vantage point for the wild figures.
pub fn build_isp(pipeline: &Pipeline, args: &Args) -> IspVantage {
    IspVantage::new(
        &pipeline.catalog,
        IspConfig {
            lines: if args.fast { args.lines.min(10_000) } else { args.lines },
            sampling: 1_000,
            seed: args.seed ^ 0x15B,
            background: false,
        },
    )
}

/// Standard IXP vantage point for Figures 15/16.
pub fn build_ixp(pipeline: &Pipeline, args: &Args) -> IxpVantage {
    let scale = if args.fast { 4 } else { 1 };
    IxpVantage::new(
        &pipeline.catalog,
        IxpConfig {
            sampling: 10_000,
            seed: args.seed ^ 0x1C9,
            big_eyeballs: 6,
            big_lines: (args.lines / 8 / scale).max(500),
            tail_members: 34 / scale,
            tail_lines: 400 / scale,
            route_visibility: 0.5,
            spoofed_per_hour: 2_000 / scale,
        },
    )
}

/// The study window figures use: the paper's full two weeks, or three
/// days in `--fast` mode.
pub fn study_window(args: &Args) -> haystack_net::StudyWindow {
    if args.fast {
        haystack_net::StudyWindow::days(0, 3)
    } else {
        haystack_net::StudyWindow::FULL
    }
}

/// Run the standard §6.2 ISP study (shared by Figures 11–14 and 18).
pub fn run_standard_isp_study(
    pipeline: &Pipeline,
    args: &Args,
) -> (IspVantage, haystack_core::report::IspStudyResult) {
    let isp = build_isp(pipeline, args);
    eprintln!(
        "# running ISP study: {} lines, sampling 1/1000, {} days ...",
        isp.config().lines,
        study_window(args).num_days()
    );
    let result = haystack_core::report::run_isp_study(
        pipeline,
        &pipeline.world,
        &isp,
        &haystack_core::report::IspStudyConfig { window: study_window(args), ..Default::default() },
    );
    (isp, result)
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.166), "16.6%");
        assert_eq!(pct(1.0), "100.0%");
    }
}
