//! Property tests for the NetFlow v5 codec: arbitrary record batches
//! round-trip; arbitrary bytes never panic the decoder.

use haystack_flow::netflow_v5 as v5;
use haystack_flow::{FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Proto::Tcp), Just(Proto::Udp)],
        1u32..=1_000_000, // v5 counters are 32-bit on the wire
        0u32..=100_000_000,
        any::<u8>(),
        0u32..=2_000_000,
        0u32..=10_000,
    )
        .prop_map(|(src, dst, sport, dport, proto, packets, bytes, flags, first, dur)| {
            FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::from(src),
                    dst: Ipv4Addr::from(dst),
                    sport,
                    dport,
                    proto,
                },
                packets: u64::from(packets),
                bytes: u64::from(bytes),
                tcp_flags: TcpFlags(flags),
                first: SimTime(u64::from(first)),
                last: SimTime(u64::from(first) + u64::from(dur)),
            }
        })
}

proptest! {
    #[test]
    fn v5_round_trips(records in prop::collection::vec(arb_record(), 0..=30), seq in any::<u32>(), engine in any::<u16>()) {
        let header = v5::V5Header {
            sys_uptime_ms: 1,
            unix_secs: 2,
            sequence: seq,
            engine,
            sampling: 0,
        }
        .with_sampling_interval(1_000);
        let wire = v5::encode(&header, &records).unwrap();
        let msg = v5::decode(wire).unwrap();
        prop_assert_eq!(msg.records, records);
        prop_assert_eq!(msg.header.sequence, seq);
        prop_assert_eq!(msg.header.engine, engine);
        prop_assert_eq!(msg.header.sampling_interval(), Some(1_000 & 0x3FFF));
        prop_assert_eq!(msg.skipped, 0);
    }

    #[test]
    fn v5_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = v5::decode(bytes::Bytes::from(bytes));
    }

    #[test]
    fn v5_truncation_always_detected(
        records in prop::collection::vec(arb_record(), 1..=10),
        cut_frac in 0.0f64..1.0,
    ) {
        let wire = v5::encode(&v5::V5Header::default(), &records).unwrap();
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        // Any strict prefix must fail cleanly (header or record truncation).
        if cut < wire.len() {
            prop_assert!(v5::decode(wire.slice(0..cut)).is_err());
        }
    }
}
