//! Property-based chaos tests: under *arbitrary* impairment
//! configurations and interleavings, the hardened collector must
//!
//! 1. never panic,
//! 2. decode only records the exporter actually exported (no
//!    fabrication, even from corrupted bytes),
//! 3. keep its bookkeeping consistent (link delivery accounting adds
//!    up; collector counters stay sane),
//! 4. detect a configured exporter restart when the restart datagram
//!    gets through.

use haystack_flow::chaos::records_subset;
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::{ChaosConfig, ChaosLink, Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Proto::Tcp), Just(Proto::Udp)],
        1u64..=100_000,
        0u64..=u64::from(u32::MAX),
        any::<u8>(),
        0u32..=2_000_000,
        0u32..=1_000,
    )
        .prop_map(|(src, dst, sport, dport, proto, packets, bytes, flags, first, dur)| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                sport,
                dport,
                proto,
            },
            packets,
            bytes,
            tcp_flags: TcpFlags(flags),
            first: SimTime(u64::from(first)),
            last: SimTime(u64::from(first) + u64::from(dur)),
        })
}

/// Arbitrary-but-bounded chaos: probabilities in [0, 0.5] keep runs
/// informative (probability-1 corruption is covered by unit tests).
fn arb_chaos() -> impl Strategy<Value = ChaosConfig> {
    (
        0.0f64..=0.5,
        0.0f64..=0.5,
        0.0f64..=0.5,
        0.0f64..=0.3,
        0.0f64..=0.3,
        0.0f64..=0.5,
        prop_oneof![Just(None), (0u64..12).prop_map(Some)],
        any::<u64>(),
    )
        .prop_map(|(drop, reorder, dup, trunc, corrupt, withhold, restart, seed)| ChaosConfig {
            drop_probability: drop,
            reorder_probability: reorder,
            duplicate_probability: dup,
            truncate_probability: trunc,
            corrupt_probability: corrupt,
            template_withhold_probability: withhold,
            restart_after: restart,
            misannounce_sampling: None,
            seed,
            ..ChaosConfig::off()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn collector_survives_arbitrary_chaos(
        records in prop::collection::vec(arb_record(), 0..120),
        chaos in arb_chaos(),
        protocol in prop_oneof![Just(ExportProtocol::NetflowV9), Just(ExportProtocol::Ipfix)],
        batch in 1usize..40,
    ) {
        let mut exporter = Exporter::new(protocol, 7).with_batch_size(batch);
        let mut link = ChaosLink::new(chaos.clone());
        let mut collector = Collector::new();
        let mut decoded = Vec::new();
        let mut sent_expected = 0u64;
        // Interleave: export in hour-sized chunks so restarts and
        // withholding hit mid-stream, not only at the boundary.
        for (hour, chunk) in records.chunks(37.max(batch)).enumerate() {
            let msgs = exporter.export(chunk, 100 + hour as u32).unwrap();
            sent_expected += msgs.len() as u64;
            for d in link.transmit_all(msgs) {
                // Errors are fine (malformed datagrams are counted);
                // panics are not.
                if let Ok(rs) = match protocol {
                    ExportProtocol::NetflowV9 => collector.feed_netflow_v9(d),
                    ExportProtocol::Ipfix => collector.feed_ipfix(d),
                } {
                    decoded.extend(rs);
                }
            }
        }
        for d in link.shutdown() {
            if let Ok(rs) = match protocol {
                ExportProtocol::NetflowV9 => collector.feed_netflow_v9(d),
                ExportProtocol::Ipfix => collector.feed_ipfix(d),
            } {
                decoded.extend(rs);
            }
        }

        // (2) No fabricated records: when nothing corrupts record bytes,
        // every decoded record was exported. (Bit corruption may alter
        // field values without breaking framing, so the subset property
        // is only guaranteed corruption-free.)
        if chaos.corrupt_probability == 0.0 {
            prop_assert!(records_subset(&decoded, &records));
        }

        // (3) Link accounting adds up: every sent datagram was withheld,
        // dropped, or delivered exactly once; duplicates add one more.
        let s = *link.stats();
        prop_assert_eq!(s.sent, sent_expected);
        prop_assert_eq!(s.delivered + s.dropped + s.templates_withheld, s.sent + s.duplicated);

        // Collector counters are consistent with what the link did: only
        // byte-level damage can malform, and only stream perturbation can
        // register as loss.
        if s.truncated == 0 && s.corrupted == 0 {
            prop_assert_eq!(collector.malformed_messages() + collector.malformed_sets(), 0);
        }
        if s.dropped == 0
            && s.reordered == 0
            && s.templates_withheld == 0
            && s.truncated == 0
            && s.corrupted == 0
            && chaos.restart_after.is_none()
        {
            prop_assert_eq!(collector.missed_datagrams(), 0);
        }
    }

    #[test]
    fn restart_is_detected_when_its_datagram_arrives(
        records in prop::collection::vec(arb_record(), 60..120),
        restart_after in 1u64..8,
        seed in any::<u64>(),
    ) {
        // Loss-free link so the restart datagram always arrives.
        let chaos = ChaosConfig { restart_after: Some(restart_after), seed, ..ChaosConfig::off() };
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 9).with_batch_size(8);
        let mut link = ChaosLink::new(chaos);
        let mut collector = Collector::new();
        let mut decoded = Vec::new();
        for (hour, chunk) in records.chunks(16).enumerate() {
            for d in link.transmit_all(exporter.export(chunk, 100 + hour as u32).unwrap()) {
                if let Ok(rs) = collector.feed_netflow_v9(d) {
                    decoded.extend(rs);
                }
            }
        }
        prop_assert_eq!(link.stats().restarts, 1);
        prop_assert_eq!(collector.restarts_detected(), 1);
        // A restart rebases sequence numbers but loses no datagrams:
        // everything still decodes (templates ride in every message here
        // or are re-learnt from the periodic refresh).
        prop_assert!(records_subset(&decoded, &records));
    }

    #[test]
    fn quarantine_never_leaks_across_sources(
        garbage in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..30),
        records in prop::collection::vec(arb_record(), 1..40),
    ) {
        let mut collector = Collector::new();
        // Hostile source 666 feeds arbitrary bytes dressed as v9 from a
        // fixed source id; decode failures may quarantine it.
        for g in &garbage {
            let mut d = Vec::new();
            d.extend_from_slice(&9u16.to_be_bytes());
            d.extend_from_slice(&1u16.to_be_bytes());
            d.extend_from_slice(&[0u8; 12]);
            d.extend_from_slice(&666u32.to_be_bytes());
            d.extend_from_slice(g);
            let _ = collector.feed_netflow_v9(bytes::Bytes::from(d));
        }
        // A well-behaved source is never affected.
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 5).with_batch_size(16);
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 100).unwrap() {
            decoded.extend(collector.feed_netflow_v9(msg).unwrap());
        }
        prop_assert_eq!(decoded, records.clone());
        prop_assert!(!collector.quarantined_sources().contains(&5));
    }
}
