//! Property-based round-trip tests for the NetFlow v9 / IPFIX codecs and
//! the samplers. These complement the unit tests with arbitrary inputs:
//! any record the exporter can emit must survive the wire unchanged, and
//! malformed bytes must never panic the decoders.

use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::sampling::{binomial_thin, PacketSampler, SystematicSampler};
use haystack_flow::wire::Template;
use haystack_flow::{Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use proptest::prelude::*;
use std::net::Ipv4Addr;

fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        any::<u32>(),
        any::<u32>(),
        any::<u16>(),
        any::<u16>(),
        prop_oneof![Just(Proto::Tcp), Just(Proto::Udp)],
        1u64..=100_000,
        0u64..=u64::from(u32::MAX),
        any::<u8>(),
        0u32..=2_000_000,
        0u32..=1_000,
    )
        .prop_map(|(src, dst, sport, dport, proto, packets, bytes, flags, first, dur)| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::from(src),
                dst: Ipv4Addr::from(dst),
                sport,
                dport,
                proto,
            },
            packets,
            bytes,
            tcp_flags: TcpFlags(flags),
            first: SimTime(u64::from(first)),
            last: SimTime(u64::from(first) + u64::from(dur)),
        })
}

proptest! {
    #[test]
    fn netflow_v9_round_trips(records in prop::collection::vec(arb_record(), 0..80)) {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 5);
        let mut collector = Collector::new();
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 1234).unwrap() {
            decoded.extend(collector.feed_netflow_v9(msg).unwrap());
        }
        prop_assert_eq!(decoded, records);
        prop_assert_eq!(collector.dropped_unknown_template(), 0);
    }

    #[test]
    fn ipfix_round_trips(records in prop::collection::vec(arb_record(), 0..80)) {
        let mut exporter = Exporter::new(ExportProtocol::Ipfix, 5);
        let mut collector = Collector::new();
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 1234).unwrap() {
            decoded.extend(collector.feed_ipfix(msg).unwrap());
        }
        prop_assert_eq!(decoded, records);
    }

    #[test]
    fn decoders_never_panic_on_garbage(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        let mut collector = Collector::new();
        let _ = collector.feed_netflow_v9(bytes::Bytes::from(bytes.clone()));
        let _ = collector.feed_ipfix(bytes::Bytes::from(bytes));
    }

    #[test]
    fn decoders_never_panic_on_truncated_valid_messages(
        records in prop::collection::vec(arb_record(), 1..40),
        cut in 0usize..200,
    ) {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 5);
        let msgs = exporter.export(&records, 0).unwrap();
        let msg = &msgs[0];
        let cut = cut.min(msg.len());
        let mut collector = Collector::new();
        let _ = collector.feed_netflow_v9(msg.slice(0..cut));
    }

    #[test]
    fn systematic_sampler_exact_rate(n in 1u64..500, total in 1u64..5_000) {
        let mut s = SystematicSampler::new(n, 0).unwrap();
        let kept = (0..total).filter(|_| s.sample()).count() as u64;
        prop_assert_eq!(kept, total / n);
    }

    #[test]
    fn binomial_thin_bounded(n in 0u64..200_000, p in 0.0f64..=1.0, seed in any::<u64>()) {
        use rand::{rngs::SmallRng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(seed);
        let k = binomial_thin(n, p, &mut rng);
        prop_assert!(k <= n);
    }

    #[test]
    fn template_body_round_trips(id in 256u16..1000) {
        use bytes::BytesMut;
        let t = Template::standard(id);
        let mut buf = BytesMut::new();
        t.encode_body(&mut buf);
        let parsed = Template::parse_body(&mut buf.freeze()).unwrap();
        prop_assert_eq!(parsed, t);
    }
}
