//! Options-template tests: the sampling-rate announcement path
//! (exporter → wire → collector) for both protocols, plus wire-level
//! round trips and failure injection.

use bytes::BytesMut;
use haystack_flow::export::{ExportProtocol, Exporter};
use haystack_flow::wire::{OptionsTemplate, SamplingOptions};
use haystack_flow::{Collector, FlowKey, FlowRecord, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::net::Ipv4Addr;

fn recs(n: usize) -> Vec<FlowRecord> {
    (0..n)
        .map(|i| FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(100, 64, 0, i as u8),
                dst: Ipv4Addr::new(198, 18, 0, 1),
                sport: 40_000,
                dport: 443,
                proto: Proto::Tcp,
            },
            packets: 1,
            bytes: 100,
            tcp_flags: TcpFlags::ACK,
            first: SimTime(0),
            last: SimTime(0),
        })
        .collect()
}

#[test]
fn v9_options_body_round_trips() {
    let ot = OptionsTemplate::sampling(512);
    let mut buf = BytesMut::new();
    ot.encode_body_v9(&mut buf);
    let parsed = OptionsTemplate::parse_body_v9(&mut buf.freeze()).unwrap();
    assert_eq!(parsed, ot);
}

#[test]
fn ipfix_options_body_round_trips() {
    let ot = OptionsTemplate::sampling(513);
    let mut buf = BytesMut::new();
    ot.encode_body_ipfix(&mut buf);
    let parsed = OptionsTemplate::parse_body_ipfix(&mut buf.freeze()).unwrap();
    assert_eq!(parsed, ot);
}

#[test]
fn sampling_record_round_trips() {
    let ot = OptionsTemplate::sampling(512);
    let opts = SamplingOptions { interval: 1_000, algorithm: 1 };
    let mut buf = BytesMut::new();
    ot.encode_sampling(77, &opts, &mut buf);
    assert_eq!(buf.len(), ot.record_len());
    let decoded = ot.decode_sampling(&mut buf.freeze()).unwrap();
    assert_eq!(decoded, opts);
}

#[test]
fn collector_learns_sampling_rate_netflow() {
    let mut exporter =
        Exporter::new(ExportProtocol::NetflowV9, 7).with_sampling(1_000, false);
    let mut collector = Collector::new();
    for msg in exporter.export(&recs(3), 100).unwrap() {
        collector.feed_netflow_v9(msg).unwrap();
    }
    let s = collector.sampling_of(7).expect("sampling learned");
    assert_eq!(s.interval, 1_000);
    assert_eq!(s.algorithm, 1);
    assert!(collector.sampling_of(8).is_none(), "per-source isolation");
}

#[test]
fn collector_learns_sampling_rate_ipfix() {
    let mut exporter = Exporter::new(ExportProtocol::Ipfix, 9).with_sampling(10_000, true);
    let mut collector = Collector::new();
    for msg in exporter.export(&recs(3), 100).unwrap() {
        collector.feed_ipfix(msg).unwrap();
    }
    let s = collector.sampling_of(9).expect("sampling learned");
    assert_eq!(s.interval, 10_000);
    assert_eq!(s.algorithm, 2);
}

#[test]
fn data_records_still_decode_alongside_options() {
    let mut exporter =
        Exporter::new(ExportProtocol::NetflowV9, 7).with_sampling(1_000, false);
    let mut collector = Collector::new();
    let records = recs(5);
    let mut decoded = Vec::new();
    for msg in exporter.export(&records, 100).unwrap() {
        decoded.extend(collector.feed_netflow_v9(msg).unwrap());
    }
    assert_eq!(decoded, records, "options sets must not disturb data decoding");
}

#[test]
fn exporter_without_sampling_announces_nothing() {
    let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7);
    let mut collector = Collector::new();
    for msg in exporter.export(&recs(2), 100).unwrap() {
        collector.feed_netflow_v9(msg).unwrap();
    }
    assert!(collector.sampling_of(7).is_none());
}

#[test]
fn truncated_options_template_is_an_error() {
    let ot = OptionsTemplate::sampling(512);
    let mut buf = BytesMut::new();
    ot.encode_body_v9(&mut buf);
    let full = buf.freeze();
    for cut in [0usize, 3, 5, 8] {
        let mut short = full.slice(0..cut.min(full.len()));
        assert!(
            OptionsTemplate::parse_body_v9(&mut short).is_err(),
            "cut at {cut} must fail"
        );
    }
}

#[test]
fn rate_update_overwrites_previous_announcement() {
    // A reconfigured router announces a new rate; the collector follows.
    let mut collector = Collector::new();
    let mut e1 = Exporter::new(ExportProtocol::NetflowV9, 7).with_sampling(1_000, false);
    for msg in e1.export(&recs(1), 100).unwrap() {
        collector.feed_netflow_v9(msg).unwrap();
    }
    let mut e2 = Exporter::new(ExportProtocol::NetflowV9, 7).with_sampling(2_000, false);
    for msg in e2.export(&recs(1), 200).unwrap() {
        collector.feed_netflow_v9(msg).unwrap();
    }
    assert_eq!(collector.sampling_of(7).unwrap().interval, 2_000);
}
