//! Property tests for the flow cache: whatever packet stream arrives, the
//! emitted records must conserve packets/bytes and respect the timeouts.

use haystack_flow::cache::{FlowCache, FlowCacheConfig};
use haystack_flow::{Packet, TcpFlags};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use proptest::prelude::*;
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn arb_packet() -> impl Strategy<Value = (u64, u8, u16, u32)> {
    // (timestamp, flow-selector, dport, bytes)
    (0u64..600, 0u8..6, prop_oneof![Just(443u16), Just(123)], 40u32..1500)
}

proptest! {
    #[test]
    fn packets_and_bytes_are_conserved(
        mut pkts in prop::collection::vec(arb_packet(), 1..300),
        inactive in 5u64..60,
        active in 20u64..120,
    ) {
        pkts.sort_by_key(|(t, ..)| *t);
        let mut cache = FlowCache::new(FlowCacheConfig {
            inactive_timeout_secs: inactive,
            active_timeout_secs: active,
        });
        let mut sent: HashMap<(u8, u16), (u64, u64)> = HashMap::new();
        let mut last_ts = 0;
        for (t, sel, dport, bytes) in &pkts {
            let p = Packet {
                ts: SimTime(*t),
                src: Ipv4Addr::new(100, 64, 0, 1),
                dst: Ipv4Addr::new(198, 18, 0, *sel),
                sport: 40_000,
                dport: *dport,
                proto: Proto::Tcp,
                bytes: *bytes,
                flags: TcpFlags::ACK,
            };
            cache.advance(SimTime(*t));
            cache.on_packet(&p);
            let e = sent.entry((*sel, *dport)).or_default();
            e.0 += 1;
            e.1 += u64::from(*bytes);
            last_ts = *t;
        }
        cache.advance(SimTime(last_ts + active + inactive + 1));
        cache.flush();
        let records = cache.drain_expired();
        prop_assert_eq!(cache.active_flows(), 0);

        let mut got: HashMap<(u8, u16), (u64, u64)> = HashMap::new();
        for r in &records {
            let key = (r.key.dst.octets()[3], r.key.dport);
            let e = got.entry(key).or_default();
            e.0 += r.packets;
            e.1 += r.bytes;
            // Record time bounds are sane.
            prop_assert!(r.first <= r.last);
            // No record spans longer than the active timeout window plus
            // the final second (splits happen at absorb time).
            prop_assert!(r.last.0 - r.first.0 <= active);
        }
        prop_assert_eq!(got, sent, "per-flow conservation");
    }

    #[test]
    fn drain_twice_is_empty(pkts in prop::collection::vec(arb_packet(), 1..50)) {
        let mut cache = FlowCache::new(FlowCacheConfig::default());
        for (t, sel, dport, bytes) in &pkts {
            cache.on_packet(&Packet {
                ts: SimTime(*t),
                src: Ipv4Addr::new(100, 64, 0, 1),
                dst: Ipv4Addr::new(198, 18, 0, *sel),
                sport: 40_000,
                dport: *dport,
                proto: Proto::Tcp,
                bytes: *bytes,
                flags: TcpFlags::ACK,
            });
        }
        cache.flush();
        let first = cache.drain_expired();
        prop_assert!(!first.is_empty());
        prop_assert!(cache.drain_expired().is_empty());
    }
}
