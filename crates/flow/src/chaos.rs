//! Fault injection between exporter and collector.
//!
//! Flow export rides unreliable UDP across congested links: datagrams are
//! lost, reordered, duplicated, truncated by broken middleboxes, and
//! corrupted in flight. Exporters crash and come back with their sequence
//! numbers reset but the same source id, withhold template refreshes for
//! minutes, and misannounce their sampling rate after config pushes. The
//! paper's wild deployments (§6) inherit every one of these; a collector
//! that assumes a clean feed silently produces wrong populations.
//!
//! [`ChaosLink`] sits between an [`Exporter`](crate::export::Exporter)
//! and a [`Collector`](crate::Collector) and applies those impairments
//! deterministically from a seed, so every failure a test observes is
//! replayable. Impairments operate on the wire bytes — the link knows the
//! NetFlow v9 / IPFIX framing (headers, set boundaries) but never decodes
//! records, exactly like a faulty network path plus a faulty exporter
//! process would.

use crate::record::FlowRecord;
use bytes::Bytes;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Wire offsets the link needs: enough framing to find sequence numbers,
/// set boundaries and template sets, for both protocols.
mod offsets {
    /// NetFlow v9 header length; sets start here.
    pub const V9_HEADER: usize = 20;
    /// Byte offset of the v9 sequence field.
    pub const V9_SEQ: usize = 12;
    /// IPFIX header length; sets start here.
    pub const IPFIX_HEADER: usize = 16;
    /// Byte offset of the IPFIX sequence field.
    pub const IPFIX_SEQ: usize = 8;
}

/// Impairment configuration. All probabilities are per datagram in
/// `[0, 1]`; everything defaults to off, so `ChaosConfig::default()` is a
/// transparent link.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Drop the datagram entirely.
    pub drop_probability: f64,
    /// Hold the datagram back and emit it after its successor (one-slot
    /// reorder, the common UDP case).
    pub reorder_probability: f64,
    /// Deliver the datagram twice.
    pub duplicate_probability: f64,
    /// Cut the datagram short at a random byte.
    pub truncate_probability: f64,
    /// Flip a few random bits.
    pub corrupt_probability: f64,
    /// Drop template-bearing datagrams with this probability (an exporter
    /// whose template refreshes go missing).
    pub template_withhold_probability: f64,
    /// After this many datagrams, simulate an exporter crash + restart:
    /// the same source id continues with sequence numbers reset to zero.
    pub restart_after: Option<u64>,
    /// Rewrite every announced sampling interval to this value (a
    /// misconfigured exporter lying about its rate).
    pub misannounce_sampling: Option<u32>,
    /// Set id carrying sampling options data (the workspace-standard
    /// exporter uses 512).
    pub options_data_set_id: u16,
    /// Seed for the link's deterministic RNG.
    pub seed: u64,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            drop_probability: 0.0,
            reorder_probability: 0.0,
            duplicate_probability: 0.0,
            truncate_probability: 0.0,
            corrupt_probability: 0.0,
            template_withhold_probability: 0.0,
            restart_after: None,
            misannounce_sampling: None,
            options_data_set_id: 512,
            seed: 0,
        }
    }
}

impl ChaosConfig {
    /// A transparent link (every impairment off).
    pub fn off() -> Self {
        Self::default()
    }

    /// Whether this configuration changes the stream at all.
    pub fn is_noop(&self) -> bool {
        self.drop_probability == 0.0
            && self.reorder_probability == 0.0
            && self.duplicate_probability == 0.0
            && self.truncate_probability == 0.0
            && self.corrupt_probability == 0.0
            && self.template_withhold_probability == 0.0
            && self.restart_after.is_none()
            && self.misannounce_sampling.is_none()
    }

    /// A graded impairment mix for degradation sweeps. `severity` 0.0 is
    /// a clean link; 1.0 loses a quarter of all datagrams, reorders and
    /// duplicates aggressively, mangles a few percent, drops half the
    /// template refreshes, and restarts the exporter once. Loss dominates
    /// by design — it is the impairment wild feeds actually exhibit at
    /// scale — and nothing reaches certainty, so recall must degrade
    /// smoothly rather than cliff to zero.
    pub fn at_severity(severity: f64, seed: u64) -> Self {
        let s = severity.clamp(0.0, 1.0);
        ChaosConfig {
            drop_probability: 0.25 * s,
            reorder_probability: 0.15 * s,
            duplicate_probability: 0.10 * s,
            truncate_probability: 0.04 * s,
            corrupt_probability: 0.04 * s,
            template_withhold_probability: 0.5 * s,
            restart_after: if s >= 0.5 { Some(40) } else { None },
            misannounce_sampling: None,
            options_data_set_id: 512,
            seed,
        }
    }
}

/// What the link did to the stream so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Datagrams offered by the exporter.
    pub sent: u64,
    /// Datagrams delivered to the collector (duplicates count twice).
    pub delivered: u64,
    /// Dropped by random loss.
    pub dropped: u64,
    /// Delivered out of order.
    pub reordered: u64,
    /// Delivered twice.
    pub duplicated: u64,
    /// Cut short.
    pub truncated: u64,
    /// Bit-flipped.
    pub corrupted: u64,
    /// Template-bearing datagrams withheld.
    pub templates_withheld: u64,
    /// Exporter restarts simulated.
    pub restarts: u64,
    /// Sampling announcements rewritten.
    pub sampling_rewritten: u64,
}

/// A deterministic, impaired path from exporter to collector.
///
/// ```
/// use haystack_flow::chaos::{ChaosConfig, ChaosLink};
/// use haystack_flow::export::{ExportProtocol, Exporter};
/// use haystack_flow::Collector;
///
/// let mut link = ChaosLink::new(ChaosConfig { drop_probability: 1.0, seed: 7, ..ChaosConfig::off() });
/// let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1);
/// let mut collector = Collector::new();
/// for datagram in exporter.export(&[], 100).unwrap() {
///     for impaired in link.transmit(datagram) {
///         let _ = collector.feed_netflow_v9(impaired);
///     }
/// }
/// for held in link.shutdown() {
///     let _ = collector.feed_netflow_v9(held);
/// }
/// assert_eq!(link.stats().dropped, 1);
/// assert_eq!(collector.template_count(), 0);
/// ```
#[derive(Debug)]
pub struct ChaosLink {
    config: ChaosConfig,
    rng: SmallRng,
    /// One-slot holdback buffer for reordering.
    held: Option<Bytes>,
    /// Original sequence value at the moment of restart, per protocol
    /// framing (`None` until the restart fires).
    restart_base: Option<u32>,
    stats: ChaosStats,
}

impl ChaosLink {
    /// A link with the given impairments.
    pub fn new(config: ChaosConfig) -> Self {
        let rng = SmallRng::seed_from_u64(config.seed ^ 0x5EED_C4A0_5C4A_05C4);
        ChaosLink { config, rng, held: None, restart_base: None, stats: ChaosStats::default() }
    }

    /// Cumulative impairment counts.
    pub fn stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Pass one datagram through the link; returns zero, one, or two
    /// datagrams for the collector (loss, delivery, duplication /
    /// released reordering).
    pub fn transmit(&mut self, datagram: Bytes) -> Vec<Bytes> {
        self.stats.sent += 1;

        // Exporter-side faults first: they originate before the network.
        if let Some(after) = self.config.restart_after {
            if self.stats.sent > after && self.restart_base.is_none() {
                self.restart_base = read_sequence(&datagram);
                if self.restart_base.is_some() {
                    self.stats.restarts += 1;
                }
            }
        }
        let mut datagram = match self.restart_base {
            Some(base) => rewrite_sequence(datagram, base),
            None => datagram,
        };
        if let Some(interval) = self.config.misannounce_sampling {
            let patched = patch_sampling(datagram, self.config.options_data_set_id, interval);
            self.stats.sampling_rewritten += patched.1;
            datagram = patched.0;
        }
        if self.config.template_withhold_probability > 0.0
            && carries_templates(&datagram)
            && self.rng.gen_bool(self.config.template_withhold_probability)
        {
            self.stats.templates_withheld += 1;
            return Vec::new();
        }

        // Network faults.
        if self.config.drop_probability > 0.0 && self.rng.gen_bool(self.config.drop_probability) {
            self.stats.dropped += 1;
            return Vec::new();
        }
        if self.config.truncate_probability > 0.0
            && datagram.len() > 4
            && self.rng.gen_bool(self.config.truncate_probability)
        {
            let keep = self.rng.gen_range(4..datagram.len());
            datagram = datagram.slice(..keep);
            self.stats.truncated += 1;
        }
        if self.config.corrupt_probability > 0.0
            && !datagram.is_empty()
            && self.rng.gen_bool(self.config.corrupt_probability)
        {
            let mut raw = datagram.to_vec();
            for _ in 0..self.rng.gen_range(1usize..=3) {
                let byte = self.rng.gen_range(0..raw.len());
                let bit = self.rng.gen_range(0u8..8);
                raw[byte] ^= 1 << bit;
            }
            datagram = Bytes::from(raw);
            self.stats.corrupted += 1;
        }

        let mut out = Vec::with_capacity(2);
        if self.config.reorder_probability > 0.0
            && self.held.is_none()
            && self.rng.gen_bool(self.config.reorder_probability)
        {
            // Hold this one back; it rides behind the next datagram.
            self.held = Some(datagram);
            return out;
        }
        out.push(datagram.clone());
        if let Some(late) = self.held.take() {
            self.stats.reordered += 1;
            self.stats.delivered += 1;
            out.push(late);
        }
        if self.config.duplicate_probability > 0.0
            && self.rng.gen_bool(self.config.duplicate_probability)
        {
            self.stats.duplicated += 1;
            self.stats.delivered += 1;
            out.push(datagram);
        }
        self.stats.delivered += 1;
        out
    }

    /// Release anything still held back (end of stream). Call once after
    /// the last `transmit`.
    pub fn shutdown(&mut self) -> Vec<Bytes> {
        match self.held.take() {
            Some(d) => {
                self.stats.delivered += 1;
                vec![d]
            }
            None => Vec::new(),
        }
    }

    /// Convenience: pass a whole batch of datagrams and flush the
    /// holdback, preserving the link's impairment decisions per datagram.
    pub fn transmit_all(&mut self, datagrams: Vec<Bytes>) -> Vec<Bytes> {
        let mut out = Vec::with_capacity(datagrams.len());
        for d in datagrams {
            out.extend(self.transmit(d));
        }
        out.extend(self.shutdown());
        out
    }
}

/// Records equality helper used by chaos tests: `sub` must only contain
/// records that appear in `sup` (decoding never invents records).
pub fn records_subset(sub: &[FlowRecord], sup: &[FlowRecord]) -> bool {
    sub.iter().all(|r| sup.contains(r))
}

fn read_u16(d: &[u8], at: usize) -> Option<u16> {
    d.get(at..at + 2).map(|b| u16::from_be_bytes([b[0], b[1]]))
}

fn read_u32(d: &[u8], at: usize) -> Option<u32> {
    d.get(at..at + 4).map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Protocol-aware location of the sequence field.
fn seq_offset(datagram: &[u8]) -> Option<usize> {
    match read_u16(datagram, 0)? {
        9 if datagram.len() >= offsets::V9_HEADER => Some(offsets::V9_SEQ),
        10 if datagram.len() >= offsets::IPFIX_HEADER => Some(offsets::IPFIX_SEQ),
        _ => None,
    }
}

fn read_sequence(datagram: &[u8]) -> Option<u32> {
    seq_offset(datagram).and_then(|at| read_u32(datagram, at))
}

/// Rebase the sequence field so the stream looks like a fresh process
/// that started counting at zero (same source id).
fn rewrite_sequence(datagram: Bytes, base: u32) -> Bytes {
    let Some(at) = seq_offset(&datagram) else {
        return datagram;
    };
    let Some(seq) = read_u32(&datagram, at) else {
        return datagram;
    };
    let mut raw = datagram.to_vec();
    raw[at..at + 4].copy_from_slice(&seq.wrapping_sub(base).to_be_bytes());
    Bytes::from(raw)
}

/// Iterate `(set_id, body_start, body_end)` over a datagram's sets
/// without decoding them. Stops at the first malformed length.
fn walk_sets(datagram: &[u8]) -> Vec<(u16, usize, usize)> {
    let start = match read_u16(datagram, 0) {
        Some(9) => offsets::V9_HEADER,
        Some(10) => offsets::IPFIX_HEADER,
        _ => return Vec::new(),
    };
    let mut out = Vec::new();
    let mut at = start;
    while at + 4 <= datagram.len() {
        let (Some(id), Some(len)) = (read_u16(datagram, at), read_u16(datagram, at + 2)) else {
            break;
        };
        let len = len as usize;
        if len < 4 || at + len > datagram.len() {
            break;
        }
        out.push((id, at + 4, at + len));
        at += len;
    }
    out
}

/// Whether the datagram carries any template or options-template set
/// (v9 flowset ids 0/1, IPFIX set ids 2/3).
fn carries_templates(datagram: &[u8]) -> bool {
    let template_ids: [u16; 2] = match read_u16(datagram, 0) {
        Some(9) => [0, 1],
        Some(10) => [2, 3],
        _ => return false,
    };
    walk_sets(datagram).iter().any(|(id, _, _)| template_ids.contains(id))
}

/// Rewrite every sampling interval announced in options data sets to
/// `interval`; returns the (possibly untouched) datagram and how many
/// records were rewritten. Options records are laid out as
/// `scope(4) | interval(4) | algorithm(1)` by the workspace exporter.
fn patch_sampling(datagram: Bytes, options_set_id: u16, interval: u32) -> (Bytes, u64) {
    const RECORD_LEN: usize = 9;
    let spans: Vec<(usize, usize)> = walk_sets(&datagram)
        .into_iter()
        .filter(|(id, _, _)| *id == options_set_id)
        .map(|(_, lo, hi)| (lo, hi))
        .collect();
    if spans.is_empty() {
        return (datagram, 0);
    }
    let mut raw = datagram.to_vec();
    let mut patched = 0u64;
    for (lo, hi) in spans {
        let mut at = lo;
        while at + RECORD_LEN <= hi {
            raw[at + 4..at + 8].copy_from_slice(&interval.to_be_bytes());
            patched += 1;
            at += RECORD_LEN;
        }
    }
    if patched == 0 {
        (datagram, 0)
    } else {
        (Bytes::from(raw), patched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{ExportProtocol, Exporter};
    use crate::Collector;

    fn records(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                key: crate::FlowKey {
                    src: std::net::Ipv4Addr::from(0x6440_0000 + i as u32),
                    dst: std::net::Ipv4Addr::new(198, 18, 0, 1),
                    sport: 40_000,
                    dport: 443,
                    proto: haystack_net::ports::Proto::Tcp,
                },
                packets: 2,
                bytes: 200,
                tcp_flags: crate::TcpFlags::ACK,
                first: haystack_net::SimTime(1),
                last: haystack_net::SimTime(2),
            })
            .collect()
    }

    fn wire(n: usize, batch: usize) -> Vec<Bytes> {
        Exporter::new(ExportProtocol::NetflowV9, 9)
            .with_batch_size(batch)
            .export(&records(n), 100)
            .unwrap()
    }

    #[test]
    fn noop_link_is_transparent() {
        let mut link = ChaosLink::new(ChaosConfig::off());
        let msgs = wire(50, 5);
        let out = link.transmit_all(msgs.clone());
        assert_eq!(out, msgs);
        assert_eq!(link.stats().sent, 10);
        assert_eq!(link.stats().delivered, 10);
    }

    #[test]
    fn same_seed_same_impairments() {
        let cfg = ChaosConfig::at_severity(0.7, 42);
        let msgs = wire(200, 5);
        let a = ChaosLink::new(cfg.clone()).transmit_all(msgs.clone());
        let b = ChaosLink::new(cfg).transmit_all(msgs);
        assert_eq!(a, b);
    }

    #[test]
    fn loss_drops_datagrams() {
        let cfg = ChaosConfig { drop_probability: 0.5, seed: 3, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let out = link.transmit_all(wire(300, 5));
        assert!(link.stats().dropped > 10, "dropped {}", link.stats().dropped);
        assert_eq!(out.len() as u64, link.stats().delivered);
        assert_eq!(link.stats().sent, link.stats().dropped + link.stats().delivered);
    }

    #[test]
    fn reorder_swaps_neighbours() {
        let cfg = ChaosConfig { reorder_probability: 1.0, seed: 1, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let msgs = wire(20, 5);
        let out = link.transmit_all(msgs.clone());
        assert_eq!(out.len(), msgs.len(), "reordering never loses datagrams");
        assert_ne!(out, msgs);
        assert!(link.stats().reordered > 0);
    }

    #[test]
    fn duplicates_add_deliveries() {
        let cfg = ChaosConfig { duplicate_probability: 1.0, seed: 1, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let out = link.transmit_all(wire(20, 5));
        assert_eq!(out.len(), 8, "every datagram delivered twice");
        assert_eq!(link.stats().duplicated, 4);
    }

    #[test]
    fn restart_rebases_sequence_numbers() {
        let cfg = ChaosConfig { restart_after: Some(2), seed: 1, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let msgs = wire(100, 10); // 10 datagrams, seq advancing by 10
        let out = link.transmit_all(msgs);
        assert_eq!(link.stats().restarts, 1);
        let seqs: Vec<u32> = out.iter().map(|d| read_sequence(d).unwrap()).collect();
        assert_eq!(seqs[..3], [0, 10, 0], "third datagram restarts at zero");
        assert!(seqs[3..].windows(2).all(|w| w[1] > w[0]), "post-restart stream is consistent");
    }

    #[test]
    fn withholding_starves_collector_of_templates() {
        let cfg = ChaosConfig { template_withhold_probability: 1.0, seed: 1, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let mut collector = Collector::new();
        let mut decoded = Vec::new();
        for d in link.transmit_all(wire(100, 10)) {
            decoded.extend(collector.feed_netflow_v9(d).unwrap_or_default());
        }
        assert!(decoded.is_empty(), "no template may ever arrive");
        assert!(link.stats().templates_withheld >= 1);
        assert!(collector.dropped_unknown_template() > 0);
    }

    #[test]
    fn sampling_misannouncement_rewrites_interval() {
        let mut exporter =
            Exporter::new(ExportProtocol::NetflowV9, 7).with_sampling(1_000, false);
        let msgs = exporter.export(&records(5), 100).unwrap();
        let cfg = ChaosConfig { misannounce_sampling: Some(64), seed: 1, ..ChaosConfig::off() };
        let mut link = ChaosLink::new(cfg);
        let mut collector = Collector::new();
        for d in link.transmit_all(msgs) {
            collector.feed_netflow_v9(d).unwrap();
        }
        assert_eq!(link.stats().sampling_rewritten, 1);
        assert_eq!(collector.sampling_of(7).unwrap().interval, 64);
    }

    #[test]
    fn corruption_and_truncation_never_panic_the_collector() {
        let cfg = ChaosConfig {
            truncate_probability: 0.5,
            corrupt_probability: 0.5,
            seed: 99,
            ..ChaosConfig::off()
        };
        let mut link = ChaosLink::new(cfg);
        let mut collector = Collector::new();
        let exported = records(400);
        let mut decoded = Vec::new();
        for d in link.transmit_all(wire(400, 10)) {
            decoded.extend(collector.feed_netflow_v9(d).unwrap_or_default());
        }
        assert!(records_subset(&decoded, &exported), "decoder must not invent records");
        assert!(link.stats().truncated > 0 && link.stats().corrupted > 0);
    }

    #[test]
    fn ipfix_framing_is_understood_too() {
        let msgs = Exporter::new(ExportProtocol::Ipfix, 5)
            .with_batch_size(10)
            .export(&records(100), 100)
            .unwrap();
        assert!(carries_templates(&msgs[0]));
        assert!(!carries_templates(&msgs[1]));
        assert_eq!(read_sequence(&msgs[1]), Some(10));
        let rebased = rewrite_sequence(msgs[1].clone(), 10);
        assert_eq!(read_sequence(&rebased), Some(0));
    }
}
