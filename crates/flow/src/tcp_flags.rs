//! TCP flag handling.
//!
//! §6.3 is the consumer: at the IXP, spoofing prevention is impossible, so
//! the methodology *"require[s] TCP traffic to see at least one packet
//! without flags, indicating that a TCP connection was successfully
//! established"* — "without flags" meaning without any of the
//! connection-management flags (SYN/FIN/RST); a mid-connection data or pure
//! ACK segment. Flow exporters carry the **cumulative OR** of the flags of
//! the packets aggregated into a record, so at the IXP's very sparse
//! sampling (where a record typically covers a single sampled packet) a
//! record whose flags contain no SYN/FIN/RST is evidence of an established
//! connection.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// TCP flags byte as carried in NetFlow/IPFIX field 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// FIN flag.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN flag.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST flag.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH flag.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK flag.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// No flags set (also the value carried for UDP flows).
    pub const NONE: TcpFlags = TcpFlags(0);
    /// SYN|ACK — the server side of the handshake.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// Whether all flags in `other` are set in `self`.
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any flag in `other` is set in `self`.
    pub fn intersects(self, other: TcpFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// The §6.3 anti-spoofing predicate: this flag set carries none of the
    /// connection-management flags (SYN/FIN/RST), i.e. it could only have
    /// been produced by segments of an established connection. A blindly
    /// spoofed packet train (SYN floods, RST backscatter) fails this.
    pub fn is_established_evidence(self) -> bool {
        !self.intersects(TcpFlags(Self::SYN.0 | Self::FIN.0 | Self::RST.0))
    }
}

impl BitOr for TcpFlags {
    type Output = TcpFlags;

    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            return f.write_str(".");
        }
        let mut s = String::new();
        for (bit, ch) in [(0x02u8, 'S'), (0x10, 'A'), (0x08, 'P'), (0x01, 'F'), (0x04, 'R')] {
            if self.0 & bit != 0 {
                s.push(ch);
            }
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn established_evidence() {
        assert!(TcpFlags::ACK.is_established_evidence());
        assert!((TcpFlags::ACK | TcpFlags::PSH).is_established_evidence());
        assert!(TcpFlags::NONE.is_established_evidence());
        assert!(!TcpFlags::SYN.is_established_evidence());
        assert!(!TcpFlags::SYN_ACK.is_established_evidence());
        assert!(!(TcpFlags::ACK | TcpFlags::FIN).is_established_evidence());
        assert!(!TcpFlags::RST.is_established_evidence());
    }

    #[test]
    fn or_accumulates_like_a_flow_cache() {
        let mut f = TcpFlags::NONE;
        f |= TcpFlags::SYN;
        f |= TcpFlags::ACK;
        assert!(f.contains(TcpFlags::SYN_ACK));
        assert!(!f.is_established_evidence(), "cumulative SYN taints the record");
    }

    #[test]
    fn display() {
        assert_eq!(TcpFlags::SYN_ACK.to_string(), "SA");
        assert_eq!(TcpFlags::NONE.to_string(), ".");
        assert_eq!((TcpFlags::ACK | TcpFlags::PSH).to_string(), "AP");
    }
}
