//! IPFIX wire codec (RFC 7011) — the IXP's export format (§2.1).
//!
//! Message layout:
//!
//! ```text
//! +---------+--------+-------------+-----+--------------------+
//! | ver=10  | length | export time | seq | obs. domain id     |  16-byte header
//! +---------+--------+-------------+-----+--------------------+
//! | set id | length | body ...                                |  repeated
//! +--------+--------+-----------------------------------------+
//! ```
//!
//! Differences from NetFlow v9 that this codec implements faithfully:
//! the header carries the **total message length** (v9 carries a record
//! count), template sets use id `2` (options templates `3`, skipped), and
//! the observation-domain id replaces the source id. Enterprise-specific
//! information elements (high bit of the field id) are not exported by the
//! reproduction and are rejected on decode.

use crate::error::FlowError;
use crate::record::FlowRecord;
use crate::wire::{OptionsTemplate, SamplingOptions, Template};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol version constant.
pub const VERSION: u16 = 10;
/// Set id carrying templates.
pub const TEMPLATE_SET_ID: u16 = 2;
/// Set id carrying options templates (skipped on decode).
pub const OPTIONS_TEMPLATE_SET_ID: u16 = 3;

/// IPFIX message header (minus version/length, which the codec owns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IpfixHeader {
    /// Export time in (simulated) seconds since epoch.
    pub export_time: u32,
    /// Sequence number: cumulative count of data records.
    pub sequence: u32,
    /// Observation domain — we use one per IXP edge switch.
    pub domain_id: u32,
}

/// A parsed set: templates decoded, data left raw for the collector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Set {
    /// Templates announced in a template set.
    Templates(Vec<Template>),
    /// Options templates (sampling announcements).
    OptionsTemplates(Vec<OptionsTemplate>),
    /// A data set for `template_id`, records still encoded.
    Data {
        /// The describing template's id.
        template_id: u16,
        /// Raw record bytes (including alignment padding).
        body: Bytes,
    },
}

/// A parsed IPFIX message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header fields.
    pub header: IpfixHeader,
    /// Sets in order of appearance.
    pub sets: Vec<Set>,
}

/// Encode one message: `templates` first, then data sets.
pub fn encode(
    header: &IpfixHeader,
    templates: &[Template],
    data: &[(&Template, &[FlowRecord])],
) -> Result<Bytes, FlowError> {
    encode_full(header, templates, data, None)
}

/// Like [`encode`], additionally announcing the sampling configuration.
pub fn encode_full(
    header: &IpfixHeader,
    templates: &[Template],
    data: &[(&Template, &[FlowRecord])],
    sampling: Option<(&OptionsTemplate, SamplingOptions)>,
) -> Result<Bytes, FlowError> {
    for t in templates {
        t.validate()?;
        if t.fields.iter().any(|f| f.id & 0x8000 != 0) {
            return Err(FlowError::UnsupportedField {
                field: t.fields.iter().find(|f| f.id & 0x8000 != 0).unwrap().id,
                len: 0,
            });
        }
    }
    for (t, _) in data {
        t.validate()?;
    }
    let mut buf = BytesMut::with_capacity(1500);
    buf.put_u16(VERSION);
    buf.put_u16(0); // length placeholder
    buf.put_u32(header.export_time);
    buf.put_u32(header.sequence);
    buf.put_u32(header.domain_id);

    if !templates.is_empty() {
        let mut body = BytesMut::new();
        for t in templates {
            t.encode_body(&mut body);
        }
        put_set(&mut buf, TEMPLATE_SET_ID, &body);
    }
    if let Some((ot, opts)) = sampling {
        let mut body = BytesMut::new();
        ot.encode_body_ipfix(&mut body);
        put_set(&mut buf, OPTIONS_TEMPLATE_SET_ID, &body);
        let mut body = BytesMut::new();
        ot.encode_sampling(header.domain_id, &opts, &mut body);
        put_set(&mut buf, ot.id, &body);
    }
    for (t, records) in data {
        if records.is_empty() {
            continue;
        }
        let mut body = BytesMut::with_capacity(t.record_len() * records.len());
        for r in *records {
            t.encode_record(r, &mut body);
        }
        put_set(&mut buf, t.id, &body);
    }
    let total = buf.len() as u16;
    buf[2..4].copy_from_slice(&total.to_be_bytes());
    Ok(buf.freeze())
}

fn put_set(buf: &mut BytesMut, id: u16, body: &BytesMut) {
    let unpadded = 4 + body.len();
    let pad = (4 - unpadded % 4) % 4;
    buf.put_u16(id);
    buf.put_u16((unpadded + pad) as u16);
    buf.extend_from_slice(body);
    buf.put_bytes(0, pad);
}

/// Decode a datagram into a [`Message`]. The header's length field is
/// honoured: bytes beyond it are rejected as trailing garbage.
pub fn decode(mut datagram: Bytes) -> Result<Message, FlowError> {
    if datagram.remaining() < 16 {
        return Err(FlowError::Truncated {
            context: "ipfix header",
            needed: 16,
            available: datagram.remaining(),
        });
    }
    let version = datagram.get_u16();
    if version != VERSION {
        return Err(FlowError::BadVersion { expected: VERSION, found: version });
    }
    let declared_len = usize::from(datagram.get_u16());
    if declared_len < 16 || declared_len - 4 != datagram.remaining() {
        return Err(FlowError::BadSetLength {
            declared: declared_len as u16,
            remaining: datagram.remaining(),
        });
    }
    let header = IpfixHeader {
        export_time: datagram.get_u32(),
        sequence: datagram.get_u32(),
        domain_id: datagram.get_u32(),
    };
    let mut sets = Vec::new();
    while datagram.remaining() >= 4 {
        let id = datagram.get_u16();
        let declared = datagram.get_u16();
        if declared < 4 || usize::from(declared) - 4 > datagram.remaining() {
            return Err(FlowError::BadSetLength { declared, remaining: datagram.remaining() });
        }
        let body = datagram.split_to(usize::from(declared) - 4);
        match id {
            TEMPLATE_SET_ID => {
                let mut b = body;
                let mut ts = Vec::new();
                while b.remaining() >= 4 {
                    ts.push(Template::parse_body(&mut b)?);
                }
                sets.push(Set::Templates(ts));
            }
            OPTIONS_TEMPLATE_SET_ID => {
                let mut b = body;
                let mut ts = Vec::new();
                while b.remaining() >= 6 {
                    ts.push(OptionsTemplate::parse_body_ipfix(&mut b)?);
                }
                sets.push(Set::OptionsTemplates(ts));
            }
            id if id >= 256 => sets.push(Set::Data { template_id: id, body }),
            id => return Err(FlowError::ReservedTemplateId(id)),
        }
    }
    Ok(Message { header, sets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use crate::tcp_flags::TcpFlags;
    use crate::wire::{decode_records, TemplateField};
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(100, 64, 0, i),
                dst: Ipv4Addr::new(198, 18, 0, 1),
                sport: 40_000 + u16::from(i),
                dport: 443,
                proto: Proto::Tcp,
            },
            packets: 1,
            bytes: 1400,
            tcp_flags: TcpFlags::ACK,
            first: SimTime(100),
            last: SimTime(100),
        }
    }

    fn header() -> IpfixHeader {
        IpfixHeader { export_time: 100, sequence: 1, domain_id: 9 }
    }

    #[test]
    fn full_message_round_trip() {
        let t = Template::standard(400);
        let records: Vec<_> = (0..7).map(rec).collect();
        let wire = encode(&header(), std::slice::from_ref(&t), &[(&t, &records)]).unwrap();
        // Header length field covers the whole message.
        assert_eq!(u16::from_be_bytes([wire[2], wire[3]]) as usize, wire.len());
        let msg = decode(wire).unwrap();
        assert_eq!(msg.header, header());
        assert_eq!(msg.sets.len(), 2);
        match &msg.sets[1] {
            Set::Data { template_id, body } => {
                assert_eq!(*template_id, 400);
                let decoded = decode_records(&t, &mut body.clone()).unwrap();
                assert_eq!(decoded, records);
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn wrong_version_rejected() {
        let t = Template::standard(256);
        let wire = encode(&header(), &[t], &[]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        tampered[1] = 9;
        assert_eq!(
            decode(tampered.freeze()),
            Err(FlowError::BadVersion { expected: 10, found: 9 })
        );
    }

    #[test]
    fn length_mismatch_rejected() {
        let t = Template::standard(256);
        let wire = encode(&header(), &[t], &[]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        tampered[3] = tampered[3].wrapping_add(4); // lie about length
        assert!(matches!(decode(tampered.freeze()), Err(FlowError::BadSetLength { .. })));
    }

    #[test]
    fn enterprise_fields_rejected_on_encode() {
        let mut t = Template::standard(256);
        t.fields.push(TemplateField { id: 0x8001, len: 4 });
        assert!(matches!(
            encode(&header(), &[t], &[]),
            Err(FlowError::UnsupportedField { field: 0x8001, .. })
        ));
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            decode(Bytes::from_static(&[0u8; 8])),
            Err(FlowError::Truncated { .. })
        ));
    }

    #[test]
    fn multiple_data_sets() {
        let t1 = Template::standard(256);
        let t2 = Template::standard(257);
        let r1: Vec<_> = (0..2).map(rec).collect();
        let r2: Vec<_> = (2..5).map(rec).collect();
        let wire = encode(&header(), &[t1.clone(), t2.clone()], &[(&t1, &r1), (&t2, &r2)]).unwrap();
        let msg = decode(wire).unwrap();
        assert_eq!(msg.sets.len(), 3);
        match &msg.sets[0] {
            Set::Templates(ts) => assert_eq!(ts.len(), 2),
            other => panic!("expected templates, got {other:?}"),
        }
    }
}
