//! The stateful flow collector.
//!
//! Holds the template cache keyed by `(source id, template id)` — templates
//! from one exporter must never describe another exporter's data — decodes
//! data sets against it, and surfaces per-message decode problems without
//! aborting the feed (a collector that dies on one malformed datagram is
//! useless at an IXP).
//!
//! The collector is hardened against the impairments
//! [`chaos`](crate::chaos) injects (see DESIGN.md, "Fault model"):
//!
//! * **Loss** — per-source sequence tracking turns gaps into
//!   [`missed_datagrams`](Collector::missed_datagrams) /
//!   [`missed_records`](Collector::missed_records) counters instead of
//!   silent undercounting.
//! * **Exporter restart** — a sequence number falling back to zero (or a
//!   huge backward jump) flushes that source's templates, so stale
//!   layouts never decode a new process's data.
//! * **Cache exhaustion** — template and options caches are bounded with
//!   least-recently-used eviction; a misbehaving exporter announcing
//!   endless template ids cannot grow collector memory without bound.
//! * **Malformed floods** — a source producing repeated malformed
//!   messages is quarantined; other sources are unaffected. Quarantine is
//!   not one-way: after the discard window the source enters *probation*
//!   (half-open — traffic flows again but is monitored), and a single
//!   malformed message during probation re-quarantines it with an
//!   exponentially longer window, while a run of clean messages restores
//!   it to full health and resets the backoff.

use crate::error::FlowError;
use crate::ipfix;
use crate::netflow_v5 as v5;
use crate::netflow_v9 as v9;
use crate::record::FlowRecord;
use crate::wire::{decode_records, OptionsTemplate, SamplingOptions, Template, TemplateField};
use bytes::Bytes;
use haystack_net::snapshot::{open, seal, SnapError, SnapReader, SnapWriter, MAGIC_LEN};
use std::collections::HashMap;

/// Per-source health counters, as a copyable snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SourceStats {
    /// Sequence gaps observed (each is ≥ 1 lost datagram).
    pub missed_datagrams: u64,
    /// Flow records the gaps account for (sequence numbers count
    /// exported records in both v9 and IPFIX).
    pub missed_records: u64,
    /// Datagrams that arrived late or duplicated (small backward jumps).
    pub out_of_order: u64,
    /// Exporter restarts detected (sequence reset).
    pub restarts: u64,
    /// Data sets dropped because their template was never announced.
    pub dropped_unknown_template: u64,
    /// Times this source entered quarantine.
    pub quarantines: u64,
    /// Datagrams discarded while quarantined.
    pub quarantined_dropped: u64,
    /// Times this source was re-quarantined out of probation (each one
    /// doubles the next quarantine window, up to the backoff cap).
    pub requarantines: u64,
}

/// Where a source stands in the quarantine lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceHealth {
    /// Decoding normally; malformed streaks are below the threshold.
    Healthy,
    /// Feed is being discarded; `remaining` datagrams left to drop.
    Quarantined {
        /// Datagrams still to be discarded before probation.
        remaining: u32,
    },
    /// Half-open: traffic flows again, but one malformed message
    /// re-quarantines with a doubled window. `clean_needed` more clean
    /// messages restore full health.
    Probation {
        /// Clean messages still required to return to `Healthy`.
        clean_needed: u32,
    },
}

impl SourceHealth {
    /// Stable lowercase label (`healthy` / `quarantined` / `probation`)
    /// for telemetry and the daemon's source endpoint.
    pub fn label(&self) -> &'static str {
        match self {
            SourceHealth::Healthy => "healthy",
            SourceHealth::Quarantined { .. } => "quarantined",
            SourceHealth::Probation { .. } => "probation",
        }
    }
}

/// Internal per-source state (the snapshot plus bookkeeping).
#[derive(Debug, Default)]
struct SourceState {
    stats: SourceStats,
    /// Sequence value the next datagram should carry.
    expected_seq: Option<u32>,
    /// Consecutive malformed messages (header- or set-level).
    malformed_streak: u32,
    /// Datagrams left to discard while quarantined.
    quarantine_remaining: u32,
    /// Clean messages still required to graduate from probation
    /// (0 = not on probation).
    probation_remaining: u32,
    /// How many times quarantine has recurred without an intervening
    /// clean probation; scales the next window as
    /// `QUARANTINE_DATAGRAMS << backoff_level` (capped).
    backoff_level: u32,
}

/// A collector accepting NetFlow v5/v9 and IPFIX feeds.
#[derive(Debug)]
pub struct Collector {
    templates: HashMap<(u32, u16), Template>,
    options_templates: HashMap<(u32, u16), OptionsTemplate>,
    /// Last-use stamps for LRU eviction, one per cache.
    template_lru: HashMap<(u32, u16), u64>,
    options_lru: HashMap<(u32, u16), u64>,
    lru_clock: u64,
    template_cache_cap: usize,
    options_cache_cap: usize,
    /// Per-source sequence/health tracking.
    sources: HashMap<u32, SourceState>,
    /// Per-source sampling configuration learned from options data.
    sampling: HashMap<u32, SamplingOptions>,
    /// Data sets that referenced a template not yet announced. Real
    /// collectors buffer or drop; we drop and count, which the tests
    /// assert on.
    dropped_unknown_template: u64,
    /// Messages that failed to parse at the datagram level.
    malformed_messages: u64,
    /// Sets inside parsable messages whose bodies failed to decode.
    malformed_sets: u64,
    /// Templates evicted by the LRU bound.
    templates_evicted: u64,
    /// Datagrams offered to any `feed*` entry point (including ones that
    /// later fail to parse or are discarded under quarantine).
    datagrams_received: u64,
    /// Flow records successfully decoded and returned to the caller.
    records_decoded: u64,
    /// Data sets whose (data or options) template was in the cache.
    template_hits: u64,
    /// Template records accepted (data + options announcements).
    template_announcements: u64,
}

impl Default for Collector {
    fn default() -> Self {
        Collector {
            templates: HashMap::new(),
            options_templates: HashMap::new(),
            template_lru: HashMap::new(),
            options_lru: HashMap::new(),
            lru_clock: 0,
            template_cache_cap: Self::DEFAULT_TEMPLATE_CACHE_CAP,
            options_cache_cap: Self::DEFAULT_OPTIONS_CACHE_CAP,
            sources: HashMap::new(),
            sampling: HashMap::new(),
            dropped_unknown_template: 0,
            malformed_messages: 0,
            malformed_sets: 0,
            templates_evicted: 0,
            datagrams_received: 0,
            records_decoded: 0,
            template_hits: 0,
            template_announcements: 0,
        }
    }
}

impl Collector {
    /// Default bound on cached data templates.
    pub const DEFAULT_TEMPLATE_CACHE_CAP: usize = 4096;
    /// Default bound on cached options templates.
    pub const DEFAULT_OPTIONS_CACHE_CAP: usize = 1024;
    /// Consecutive malformed messages before a source is quarantined.
    pub const QUARANTINE_THRESHOLD: u32 = 4;
    /// Datagrams a quarantined source has discarded before probation.
    pub const QUARANTINE_DATAGRAMS: u32 = 32;
    /// Clean messages a probationary source must deliver to return to
    /// full health (and reset its backoff).
    pub const PROBATION_CLEAN: u32 = 8;
    /// Cap on the exponential backoff: the discard window never exceeds
    /// `QUARANTINE_DATAGRAMS << MAX_BACKOFF_LEVEL`.
    pub const MAX_BACKOFF_LEVEL: u32 = 6;
    /// A backward sequence jump larger than this is a restart even when
    /// the new sequence is not zero.
    const RESTART_BACKJUMP: u32 = 100_000;
    /// Forward jumps larger than this are treated as out-of-order noise
    /// (e.g. a pre-restart datagram arriving late), not as loss.
    const MAX_PLAUSIBLE_GAP: u32 = 100_000;

    /// New collector with an empty template cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the template-cache bound (tests exercise eviction with
    /// tiny caps).
    pub fn with_template_cache_cap(mut self, cap: usize) -> Self {
        assert!(cap > 0, "template cache cap must be positive");
        self.template_cache_cap = cap;
        self
    }

    /// Feed one datagram of any supported protocol (v5, v9, IPFIX),
    /// dispatching on the version word.
    pub fn feed(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        match peek_version(&datagram) {
            Some(5) => self.feed_netflow_v5(datagram),
            Some(9) => self.feed_netflow_v9(datagram),
            Some(10) => self.feed_ipfix(datagram),
            found => {
                self.datagrams_received += 1;
                self.malformed_messages += 1;
                Err(FlowError::BadVersion { expected: 9, found: found.unwrap_or(0) })
            }
        }
    }

    /// Like [`Collector::feed`], but data referencing an unannounced
    /// template is an error ([`FlowError::UnknownTemplate`]) instead of a
    /// counted drop. Useful in controlled replays where template loss
    /// must be loud.
    pub fn feed_strict(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        match peek_version(&datagram) {
            Some(9) => self.feed_v9_inner(datagram, true),
            Some(10) => self.feed_ipfix_inner(datagram, true),
            _ => self.feed(datagram),
        }
    }

    /// Feed one NetFlow v9 datagram; returns the decoded records.
    pub fn feed_netflow_v9(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        self.feed_v9_inner(datagram, false)
    }

    /// Feed one IPFIX datagram; returns the decoded records.
    pub fn feed_ipfix(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        self.feed_ipfix_inner(datagram, false)
    }

    fn feed_v9_inner(&mut self, datagram: Bytes, strict: bool) -> Result<Vec<FlowRecord>, FlowError> {
        self.datagrams_received += 1;
        let source_hint = peek_source(&datagram).filter(|(v, _)| *v == 9).map(|(_, s)| s);
        if let Some(source) = source_hint {
            if self.consume_quarantine(source) {
                return Ok(Vec::new());
            }
        }
        let msg = match v9::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.note_malformed_message(source_hint);
                return Err(e);
            }
        };
        let source = msg.header.source_id;
        self.track_sequence(source, msg.header.sequence);
        let mut out = Vec::new();
        let mut clean = true;
        for fs in msg.flowsets {
            match fs {
                v9::FlowSet::Templates(ts) => {
                    for t in ts {
                        self.insert_template(source, t);
                    }
                }
                v9::FlowSet::OptionsTemplates(ts) => {
                    for t in ts {
                        self.insert_options_template(source, t);
                    }
                }
                v9::FlowSet::Data { template_id, body } => {
                    self.decode_data(source, template_id, body, &mut out, strict, &mut clean)?;
                }
            }
        }
        self.finish_message(source, msg.header.sequence, out.len(), clean);
        self.records_decoded += out.len() as u64;
        Ok(out)
    }

    fn feed_ipfix_inner(&mut self, datagram: Bytes, strict: bool) -> Result<Vec<FlowRecord>, FlowError> {
        self.datagrams_received += 1;
        let source_hint = peek_source(&datagram).filter(|(v, _)| *v == 10).map(|(_, s)| s);
        if let Some(source) = source_hint {
            if self.consume_quarantine(source) {
                return Ok(Vec::new());
            }
        }
        let msg = match ipfix::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.note_malformed_message(source_hint);
                return Err(e);
            }
        };
        let source = msg.header.domain_id;
        self.track_sequence(source, msg.header.sequence);
        let mut out = Vec::new();
        let mut clean = true;
        for set in msg.sets {
            match set {
                ipfix::Set::Templates(ts) => {
                    for t in ts {
                        self.insert_template(source, t);
                    }
                }
                ipfix::Set::OptionsTemplates(ts) => {
                    for t in ts {
                        self.insert_options_template(source, t);
                    }
                }
                ipfix::Set::Data { template_id, body } => {
                    self.decode_data(source, template_id, body, &mut out, strict, &mut clean)?;
                }
            }
        }
        self.finish_message(source, msg.header.sequence, out.len(), clean);
        self.records_decoded += out.len() as u64;
        Ok(out)
    }

    /// Feed one legacy NetFlow v5 datagram (fixed format, no templates).
    /// The header's sampling announcement, if present, is recorded under
    /// the engine id as source.
    pub fn feed_netflow_v5(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        self.datagrams_received += 1;
        let msg = match v5::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.malformed_messages += 1;
                return Err(e);
            }
        };
        if let Some(interval) = msg.header.sampling_interval() {
            self.sampling.insert(
                u32::from(msg.header.engine),
                SamplingOptions { interval: u32::from(interval), algorithm: 1 },
            );
        }
        self.records_decoded += msg.records.len() as u64;
        Ok(msg.records)
    }

    /// True (and consumes one quarantine slot) when the source's feed is
    /// currently being discarded. Exhausting the window moves the source
    /// to probation rather than straight back to full health.
    fn consume_quarantine(&mut self, source: u32) -> bool {
        let Some(st) = self.sources.get_mut(&source) else {
            return false;
        };
        if st.quarantine_remaining == 0 {
            return false;
        }
        st.quarantine_remaining -= 1;
        st.stats.quarantined_dropped += 1;
        if st.quarantine_remaining == 0 {
            st.probation_remaining = Self::PROBATION_CLEAN;
        }
        true
    }

    /// Attribute a datagram-level parse failure, possibly quarantining
    /// the source.
    fn note_malformed_message(&mut self, source_hint: Option<u32>) {
        self.malformed_messages += 1;
        if let Some(source) = source_hint {
            self.bump_malformed_streak(source);
        }
    }

    fn bump_malformed_streak(&mut self, source: u32) {
        let st = self.sources.entry(source).or_default();
        if st.probation_remaining > 0 {
            // Half-open: a single malformed message during probation
            // trips the source straight back, with a doubled window.
            st.probation_remaining = 0;
            st.malformed_streak = 0;
            st.backoff_level = (st.backoff_level + 1).min(Self::MAX_BACKOFF_LEVEL);
            st.quarantine_remaining = Self::QUARANTINE_DATAGRAMS << st.backoff_level;
            st.stats.quarantines += 1;
            st.stats.requarantines += 1;
            return;
        }
        st.malformed_streak += 1;
        if st.malformed_streak >= Self::QUARANTINE_THRESHOLD {
            st.malformed_streak = 0;
            st.quarantine_remaining = Self::QUARANTINE_DATAGRAMS << st.backoff_level;
            st.stats.quarantines += 1;
        }
    }

    /// Classify the incoming sequence number against the expected one:
    /// a match is silent; a plausible forward jump is loss; zero (or a
    /// huge backward jump) is an exporter restart, flushing the source's
    /// templates; a small backward jump is reordering/duplication.
    fn track_sequence(&mut self, source: u32, seq: u32) {
        let restart = {
            let st = self.sources.entry(source).or_default();
            match st.expected_seq {
                None => false,
                Some(expected) if seq == expected => false,
                Some(expected) => {
                    let ahead = seq.wrapping_sub(expected);
                    if ahead < Self::MAX_PLAUSIBLE_GAP {
                        st.stats.missed_datagrams += 1;
                        st.stats.missed_records += u64::from(ahead);
                        false
                    } else if seq == 0 || expected.wrapping_sub(seq) > Self::RESTART_BACKJUMP {
                        st.stats.restarts += 1;
                        st.expected_seq = None;
                        true
                    } else {
                        st.stats.out_of_order += 1;
                        false
                    }
                }
            }
        };
        if restart {
            self.flush_source(source);
        }
    }

    /// Advance the expected sequence (sequence numbers count data
    /// records) and settle the malformed streak. Out-of-order datagrams
    /// leave the expectation untouched.
    fn finish_message(&mut self, source: u32, seq: u32, data_records: usize, clean: bool) {
        let st = self.sources.entry(source).or_default();
        let candidate = seq.wrapping_add(data_records as u32);
        match st.expected_seq {
            // Only move forward: a late duplicate must not rewind.
            Some(expected) if candidate.wrapping_sub(expected) >= Self::MAX_PLAUSIBLE_GAP => {}
            _ => st.expected_seq = Some(candidate),
        }
        if clean {
            st.malformed_streak = 0;
            if st.probation_remaining > 0 {
                st.probation_remaining -= 1;
                if st.probation_remaining == 0 {
                    // Probation served cleanly: full health, backoff
                    // forgiven.
                    st.backoff_level = 0;
                }
            }
        } else {
            self.bump_malformed_streak(source);
        }
    }

    /// Drop all templates a restarted source announced in its previous
    /// life (its sampling announcement is kept as last-known-good until
    /// re-announced).
    fn flush_source(&mut self, source: u32) {
        self.templates.retain(|(s, _), _| *s != source);
        self.template_lru.retain(|(s, _), _| *s != source);
        self.options_templates.retain(|(s, _), _| *s != source);
        self.options_lru.retain(|(s, _), _| *s != source);
    }

    fn insert_template(&mut self, source: u32, t: Template) {
        let key = (source, t.id);
        self.template_announcements += 1;
        self.lru_clock += 1;
        self.template_lru.insert(key, self.lru_clock);
        self.templates.insert(key, t);
        if self.templates.len() > self.template_cache_cap {
            if let Some(victim) = lru_victim(&self.template_lru, key) {
                self.templates.remove(&victim);
                self.template_lru.remove(&victim);
                self.templates_evicted += 1;
            }
        }
    }

    fn insert_options_template(&mut self, source: u32, t: OptionsTemplate) {
        let key = (source, t.id);
        self.template_announcements += 1;
        self.lru_clock += 1;
        self.options_lru.insert(key, self.lru_clock);
        self.options_templates.insert(key, t);
        if self.options_templates.len() > self.options_cache_cap {
            if let Some(victim) = lru_victim(&self.options_lru, key) {
                self.options_templates.remove(&victim);
                self.options_lru.remove(&victim);
                self.templates_evicted += 1;
            }
        }
    }

    fn decode_data(
        &mut self,
        source: u32,
        template_id: u16,
        body: Bytes,
        out: &mut Vec<FlowRecord>,
        strict: bool,
        clean: &mut bool,
    ) -> Result<(), FlowError> {
        // Options data takes priority: options templates and data
        // templates share the ≥256 id space, but an exporter never reuses
        // an id across the two.
        let key = (source, template_id);
        if self.options_templates.contains_key(&key) {
            self.template_hits += 1;
            self.lru_clock += 1;
            self.options_lru.insert(key, self.lru_clock);
            let ot = &self.options_templates[&key];
            let mut b = body;
            while b.len() >= ot.record_len() && ot.record_len() > 0 {
                match ot.decode_sampling(&mut b) {
                    Ok(s) => {
                        self.sampling.insert(source, s);
                    }
                    Err(_) => {
                        self.malformed_sets += 1;
                        *clean = false;
                        return Ok(());
                    }
                }
            }
            return Ok(());
        }
        match self.templates.get(&key) {
            Some(t) => {
                self.template_hits += 1;
                // RFC 3954/7011 allow at most 3 bytes of padding to the
                // next 4-byte boundary; a longer remainder means the set
                // was truncated or corrupted mid-record.
                let rlen = t.record_len();
                if rlen > 0 && body.len() % rlen > 3 {
                    self.malformed_sets += 1;
                    *clean = false;
                }
                match decode_records(t, &mut body.clone()) {
                    Ok(mut records) => {
                        self.lru_clock += 1;
                        self.template_lru.insert(key, self.lru_clock);
                        out.append(&mut records);
                    }
                    Err(_) => {
                        self.malformed_sets += 1;
                        *clean = false;
                    }
                }
                Ok(())
            }
            None => {
                self.dropped_unknown_template += 1;
                self.sources.entry(source).or_default().stats.dropped_unknown_template += 1;
                if strict {
                    Err(FlowError::UnknownTemplate { source_id: source, template_id })
                } else {
                    Ok(())
                }
            }
        }
    }

    /// The sampling configuration a source announced via options data
    /// (§2.1's "consistent sampling rate", as a collector learns it).
    pub fn sampling_of(&self, source_id: u32) -> Option<SamplingOptions> {
        self.sampling.get(&source_id).copied()
    }

    /// Data sets dropped because their template was never announced.
    pub fn dropped_unknown_template(&self) -> u64 {
        self.dropped_unknown_template
    }

    /// [`Collector::dropped_unknown_template`], restricted to one source.
    pub fn dropped_unknown_template_by_source(&self, source_id: u32) -> u64 {
        self.sources.get(&source_id).map_or(0, |s| s.stats.dropped_unknown_template)
    }

    /// Datagrams that failed to parse at the message level.
    pub fn malformed_messages(&self) -> u64 {
        self.malformed_messages
    }

    /// Sets inside otherwise-parsable messages whose bodies failed to
    /// decode.
    pub fn malformed_sets(&self) -> u64 {
        self.malformed_sets
    }

    /// Sequence gaps observed across all sources (each ≥ 1 lost
    /// datagram).
    pub fn missed_datagrams(&self) -> u64 {
        self.sources.values().map(|s| s.stats.missed_datagrams).sum()
    }

    /// Flow records the sequence gaps account for, across all sources.
    pub fn missed_records(&self) -> u64 {
        self.sources.values().map(|s| s.stats.missed_records).sum()
    }

    /// Exporter restarts detected across all sources.
    pub fn restarts_detected(&self) -> u64 {
        self.sources.values().map(|s| s.stats.restarts).sum()
    }

    /// Health counters for one source, if it has been seen.
    pub fn source_stats(&self, source_id: u32) -> Option<SourceStats> {
        self.sources.get(&source_id).map(|s| s.stats)
    }

    /// Sources currently discarding datagrams under quarantine.
    pub fn quarantined_sources(&self) -> Vec<u32> {
        let mut out: Vec<u32> = self
            .sources
            .iter()
            .filter(|(_, s)| s.quarantine_remaining > 0)
            .map(|(id, _)| *id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Quarantine-lifecycle position of one source ([`SourceHealth::Healthy`]
    /// for sources never seen).
    pub fn source_health(&self, source_id: u32) -> SourceHealth {
        match self.sources.get(&source_id) {
            Some(st) if st.quarantine_remaining > 0 => {
                SourceHealth::Quarantined { remaining: st.quarantine_remaining }
            }
            Some(st) if st.probation_remaining > 0 => {
                SourceHealth::Probation { clean_needed: st.probation_remaining }
            }
            _ => SourceHealth::Healthy,
        }
    }

    /// Every seen source with its health, sorted by source id — the
    /// daemon's source-status endpoint renders this directly.
    pub fn source_healths(&self) -> Vec<(u32, SourceHealth)> {
        let mut out: Vec<(u32, SourceHealth)> =
            self.sources.keys().map(|&id| (id, self.source_health(id))).collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    /// Total probation failures across all sources (the
    /// `collector.requarantined` telemetry counter).
    pub fn requarantines_total(&self) -> u64 {
        self.sources.values().map(|s| s.stats.requarantines).sum()
    }

    /// Templates evicted by the cache bounds so far.
    pub fn templates_evicted(&self) -> u64 {
        self.templates_evicted
    }

    /// Datagrams offered to any `feed*` entry point, including ones that
    /// failed to parse or were discarded under quarantine.
    pub fn datagrams_received(&self) -> u64 {
        self.datagrams_received
    }

    /// Flow records successfully decoded and returned to callers.
    pub fn records_decoded(&self) -> u64 {
        self.records_decoded
    }

    /// Data sets that found their (data or options) template cached.
    pub fn template_hits(&self) -> u64 {
        self.template_hits
    }

    /// Template records accepted (data + options announcements).
    pub fn template_announcements(&self) -> u64 {
        self.template_announcements
    }

    /// Number of cached templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Frame magic of a collector snapshot.
    pub const SNAPSHOT_MAGIC: &'static [u8; MAGIC_LEN] = b"HAYCOLL\0";
    /// Snapshot format version this build writes and reads. v2 added the
    /// probation/backoff fields and the requarantine counter.
    pub const SNAPSHOT_VERSION: u32 = 2;

    /// Serialize the collector's entire long-lived state — template and
    /// options caches with their LRU stamps, per-source sequence/health
    /// tracking, learned sampling configurations, and all counters — as
    /// one checksummed frame. Encoding iterates every map in sorted key
    /// order, so equal collectors produce byte-identical snapshots.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.put_u64(self.template_cache_cap as u64);
        w.put_u64(self.options_cache_cap as u64);
        w.put_u64(self.lru_clock);

        let mut tmpl_keys: Vec<(u32, u16)> = self.templates.keys().copied().collect();
        tmpl_keys.sort_unstable();
        w.put_u64(tmpl_keys.len() as u64);
        for key in &tmpl_keys {
            let t = &self.templates[key];
            w.put_u32(key.0);
            w.put_u16(key.1);
            put_fields(&mut w, &t.fields);
        }
        put_lru(&mut w, &self.template_lru);

        let mut opt_keys: Vec<(u32, u16)> = self.options_templates.keys().copied().collect();
        opt_keys.sort_unstable();
        w.put_u64(opt_keys.len() as u64);
        for key in &opt_keys {
            let t = &self.options_templates[key];
            w.put_u32(key.0);
            w.put_u16(key.1);
            put_fields(&mut w, &t.scope_fields);
            put_fields(&mut w, &t.option_fields);
        }
        put_lru(&mut w, &self.options_lru);

        let mut src_keys: Vec<u32> = self.sources.keys().copied().collect();
        src_keys.sort_unstable();
        w.put_u64(src_keys.len() as u64);
        for source in &src_keys {
            let st = &self.sources[source];
            w.put_u32(*source);
            w.put_u64(st.stats.missed_datagrams);
            w.put_u64(st.stats.missed_records);
            w.put_u64(st.stats.out_of_order);
            w.put_u64(st.stats.restarts);
            w.put_u64(st.stats.dropped_unknown_template);
            w.put_u64(st.stats.quarantines);
            w.put_u64(st.stats.quarantined_dropped);
            w.put_u64(st.stats.requarantines);
            match st.expected_seq {
                Some(seq) => {
                    w.put_u8(1);
                    w.put_u32(seq);
                }
                None => {
                    w.put_u8(0);
                    w.put_u32(0);
                }
            }
            w.put_u32(st.malformed_streak);
            w.put_u32(st.quarantine_remaining);
            w.put_u32(st.probation_remaining);
            w.put_u32(st.backoff_level);
        }

        let mut samp_keys: Vec<u32> = self.sampling.keys().copied().collect();
        samp_keys.sort_unstable();
        w.put_u64(samp_keys.len() as u64);
        for source in &samp_keys {
            let s = &self.sampling[source];
            w.put_u32(*source);
            w.put_u32(s.interval);
            w.put_u8(s.algorithm);
        }

        w.put_u64(self.dropped_unknown_template);
        w.put_u64(self.malformed_messages);
        w.put_u64(self.malformed_sets);
        w.put_u64(self.templates_evicted);
        w.put_u64(self.datagrams_received);
        w.put_u64(self.records_decoded);
        w.put_u64(self.template_hits);
        w.put_u64(self.template_announcements);

        seal(Self::SNAPSHOT_MAGIC, Self::SNAPSHOT_VERSION, &w.into_bytes())
    }

    /// Rebuild a collector from a [`Collector::snapshot`] frame. A
    /// truncated, bit-flipped, or foreign frame is a typed [`SnapError`];
    /// this never panics on corrupt input.
    pub fn restore(frame: &[u8]) -> Result<Collector, SnapError> {
        let payload = open(Self::SNAPSHOT_MAGIC, Self::SNAPSHOT_VERSION, frame)?;
        let mut r = SnapReader::new(payload);
        let mut c = Collector::new();
        let template_cache_cap = r.u64()? as usize;
        let options_cache_cap = r.u64()? as usize;
        if template_cache_cap == 0 || options_cache_cap == 0 {
            return Err(SnapError::Malformed("zero cache cap"));
        }
        c.template_cache_cap = template_cache_cap;
        c.options_cache_cap = options_cache_cap;
        c.lru_clock = r.u64()?;

        let n = r.count(6)?;
        for _ in 0..n {
            let source = r.u32()?;
            let id = r.u16()?;
            let fields = read_fields(&mut r)?;
            c.templates.insert((source, id), Template { id, fields });
        }
        read_lru(&mut r, &mut c.template_lru)?;

        let n = r.count(6)?;
        for _ in 0..n {
            let source = r.u32()?;
            let id = r.u16()?;
            let scope_fields = read_fields(&mut r)?;
            let option_fields = read_fields(&mut r)?;
            c.options_templates.insert((source, id), OptionsTemplate { id, scope_fields, option_fields });
        }
        read_lru(&mut r, &mut c.options_lru)?;

        let n = r.count(4 + 8 * 8 + 1 + 4 + 4 + 4 + 4 + 4)?;
        for _ in 0..n {
            let source = r.u32()?;
            let stats = SourceStats {
                missed_datagrams: r.u64()?,
                missed_records: r.u64()?,
                out_of_order: r.u64()?,
                restarts: r.u64()?,
                dropped_unknown_template: r.u64()?,
                quarantines: r.u64()?,
                quarantined_dropped: r.u64()?,
                requarantines: r.u64()?,
            };
            let has_seq = r.u8()?;
            let seq = r.u32()?;
            let expected_seq = match has_seq {
                0 => None,
                1 => Some(seq),
                _ => return Err(SnapError::Malformed("bad expected_seq flag")),
            };
            let malformed_streak = r.u32()?;
            let quarantine_remaining = r.u32()?;
            let probation_remaining = r.u32()?;
            let backoff_level = r.u32()?;
            c.sources.insert(
                source,
                SourceState {
                    stats,
                    expected_seq,
                    malformed_streak,
                    quarantine_remaining,
                    probation_remaining,
                    backoff_level,
                },
            );
        }

        let n = r.count(4 + 4 + 1)?;
        for _ in 0..n {
            let source = r.u32()?;
            let interval = r.u32()?;
            let algorithm = r.u8()?;
            c.sampling.insert(source, SamplingOptions { interval, algorithm });
        }

        c.dropped_unknown_template = r.u64()?;
        c.malformed_messages = r.u64()?;
        c.malformed_sets = r.u64()?;
        c.templates_evicted = r.u64()?;
        c.datagrams_received = r.u64()?;
        c.records_decoded = r.u64()?;
        c.template_hits = r.u64()?;
        c.template_announcements = r.u64()?;
        if r.remaining() != 0 {
            return Err(SnapError::Malformed("trailing bytes"));
        }
        Ok(c)
    }
}

fn put_fields(w: &mut SnapWriter, fields: &[TemplateField]) {
    w.put_u64(fields.len() as u64);
    for f in fields {
        w.put_u16(f.id);
        w.put_u16(f.len);
    }
}

fn read_fields(r: &mut SnapReader<'_>) -> Result<Vec<TemplateField>, SnapError> {
    let n = r.count(4)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(TemplateField { id: r.u16()?, len: r.u16()? });
    }
    Ok(out)
}

fn put_lru(w: &mut SnapWriter, lru: &HashMap<(u32, u16), u64>) {
    let mut keys: Vec<(u32, u16)> = lru.keys().copied().collect();
    keys.sort_unstable();
    w.put_u64(keys.len() as u64);
    for key in &keys {
        w.put_u32(key.0);
        w.put_u16(key.1);
        w.put_u64(lru[key]);
    }
}

fn read_lru(r: &mut SnapReader<'_>, into: &mut HashMap<(u32, u16), u64>) -> Result<(), SnapError> {
    let n = r.count(4 + 2 + 8)?;
    for _ in 0..n {
        let source = r.u32()?;
        let id = r.u16()?;
        let stamp = r.u64()?;
        into.insert((source, id), stamp);
    }
    Ok(())
}

/// Least-recently-used key, never the just-inserted one.
fn lru_victim(lru: &HashMap<(u32, u16), u64>, keep: (u32, u16)) -> Option<(u32, u16)> {
    lru.iter()
        .filter(|(k, _)| **k != keep)
        .min_by_key(|(_, stamp)| **stamp)
        .map(|(k, _)| *k)
}

fn peek_version(datagram: &[u8]) -> Option<u16> {
    datagram.get(..2).map(|b| u16::from_be_bytes([b[0], b[1]]))
}

/// Cheap header peek: `(version, source id)` for v9/IPFIX datagrams long
/// enough to carry one, used to attribute failures and enforce
/// quarantine before full decoding. Public so the socket front-end can
/// attribute shed datagrams to a source without decoding them.
pub fn peek_source(datagram: &[u8]) -> Option<(u16, u32)> {
    let at = match peek_version(datagram)? {
        9 if datagram.len() >= 20 => 16,
        10 if datagram.len() >= 16 => 12,
        _ => return None,
    };
    let b = datagram.get(at..at + 4)?;
    Some((peek_version(datagram)?, u32::from_be_bytes([b[0], b[1], b[2], b[3]])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{ExportProtocol, Exporter};
    use crate::key::FlowKey;
    use crate::tcp_flags::TcpFlags;
    use bytes::{BufMut, BytesMut};
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, 0, i as u8),
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    sport: 40000,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 2,
                bytes: 222,
                tcp_flags: TcpFlags::ACK,
                first: SimTime(5),
                last: SimTime(9),
            })
            .collect()
    }

    #[test]
    fn end_to_end_netflow() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 77).with_batch_size(8);
        let mut collector = Collector::new();
        let records = recs(20);
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 100).unwrap() {
            decoded.extend(collector.feed_netflow_v9(msg).unwrap());
        }
        assert_eq!(decoded, records);
        assert_eq!(collector.dropped_unknown_template(), 0);
        assert_eq!(collector.missed_datagrams(), 0);
        assert_eq!(collector.restarts_detected(), 0);
        assert_eq!(collector.records_decoded(), 20);
        assert!(collector.datagrams_received() >= 3, "20 records in batches of 8");
        assert!(collector.template_announcements() >= 1);
        assert!(collector.template_hits() >= 3);
    }

    #[test]
    fn end_to_end_ipfix() {
        let mut exporter = Exporter::new(ExportProtocol::Ipfix, 42);
        let mut collector = Collector::new();
        let records = recs(5);
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 100).unwrap() {
            decoded.extend(collector.feed_ipfix(msg).unwrap());
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn unified_feed_dispatches_on_version() {
        let mut e9 = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(4);
        let mut e10 = Exporter::new(ExportProtocol::Ipfix, 2).with_batch_size(4);
        let mut collector = Collector::new();
        let records = recs(4);
        let mut decoded = Vec::new();
        for msg in e9.export(&records, 100).unwrap() {
            decoded.extend(collector.feed(msg).unwrap());
        }
        for msg in e10.export(&records, 100).unwrap() {
            decoded.extend(collector.feed(msg).unwrap());
        }
        assert_eq!(decoded.len(), 8);
        assert!(collector.feed(Bytes::from_static(&[0, 42, 1, 1])).is_err());
    }

    #[test]
    fn data_before_template_is_dropped_and_counted() {
        // Build a data-only message by fast-forwarding the exporter past
        // its first (template-bearing) message, then feed only the second
        // message to a fresh collector.
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(4);
        let records = recs(8);
        let msgs = exporter.export(&records, 100).unwrap();
        assert_eq!(msgs.len(), 2);
        let mut collector = Collector::new();
        let decoded = collector.feed_netflow_v9(msgs[1].clone()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(collector.dropped_unknown_template(), 1);
        assert_eq!(collector.dropped_unknown_template_by_source(1), 1);
        assert_eq!(collector.dropped_unknown_template_by_source(2), 0);
        // Once the template arrives, subsequent data decodes.
        collector.feed_netflow_v9(msgs[0].clone()).unwrap();
        let again = exporter.export(&records, 101).unwrap();
        let decoded = collector.feed_netflow_v9(again[0].clone()).unwrap();
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn strict_feed_raises_unknown_template() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 6).with_batch_size(4);
        let msgs = exporter.export(&recs(8), 100).unwrap();
        let mut collector = Collector::new();
        assert!(matches!(
            collector.feed_strict(msgs[1].clone()),
            Err(FlowError::UnknownTemplate { source_id: 6, template_id: 256 })
        ));
        // The lenient path still counts the same event.
        assert_eq!(collector.dropped_unknown_template_by_source(6), 1);
        // With the template announced, strict mode decodes normally.
        collector.feed_strict(msgs[0].clone()).unwrap();
    }

    #[test]
    fn template_caches_are_per_source() {
        let mut e1 = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(4);
        let mut e2 = Exporter::new(ExportProtocol::NetflowV9, 2).with_batch_size(4);
        let records = recs(8);
        let m1 = e1.export(&records, 100).unwrap();
        let m2 = e2.export(&records, 100).unwrap();
        let mut collector = Collector::new();
        // Source 1 announces its template; source 2's *data-only* second
        // message must not decode against it.
        collector.feed_netflow_v9(m1[0].clone()).unwrap();
        let decoded = collector.feed_netflow_v9(m2[1].clone()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(collector.dropped_unknown_template(), 1);
        assert_eq!(collector.template_count(), 1);
    }

    #[test]
    fn malformed_datagram_counted_not_fatal() {
        let mut collector = Collector::new();
        assert!(collector.feed_netflow_v9(Bytes::from_static(&[1, 2, 3])).is_err());
        assert_eq!(collector.malformed_messages(), 1);
        // Collector still works afterwards.
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1);
        let records = recs(2);
        for msg in exporter.export(&records, 100).unwrap() {
            assert!(collector.feed_netflow_v9(msg).is_ok());
        }
    }

    #[test]
    fn v5_feed_decodes_and_learns_sampling() {
        use crate::netflow_v5 as v5;
        let records = recs(4);
        let header = v5::V5Header { engine: 12, ..Default::default() }
            .with_sampling_interval(1_000);
        let wire = v5::encode(&header, &records).unwrap();
        let mut collector = Collector::new();
        let decoded = collector.feed_netflow_v5(wire).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(collector.sampling_of(12).unwrap().interval, 1_000);
    }

    #[test]
    fn cross_protocol_feeds_rejected() {
        let mut exporter = Exporter::new(ExportProtocol::Ipfix, 1);
        let msgs = exporter.export(&recs(1), 100).unwrap();
        let mut collector = Collector::new();
        assert!(matches!(
            collector.feed_netflow_v9(msgs[0].clone()),
            Err(FlowError::BadVersion { expected: 9, found: 10 })
        ));
    }

    #[test]
    fn sequence_gap_is_counted_as_loss() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 3).with_batch_size(5);
        let msgs = exporter.export(&recs(20), 100).unwrap();
        assert_eq!(msgs.len(), 4);
        let mut collector = Collector::new();
        collector.feed_netflow_v9(msgs[0].clone()).unwrap();
        // msgs[1] lost in transit.
        collector.feed_netflow_v9(msgs[2].clone()).unwrap();
        collector.feed_netflow_v9(msgs[3].clone()).unwrap();
        assert_eq!(collector.missed_datagrams(), 1);
        assert_eq!(collector.missed_records(), 5);
        let st = collector.source_stats(3).unwrap();
        assert_eq!(st.missed_datagrams, 1);
        assert_eq!(st.restarts, 0);
    }

    #[test]
    fn duplicate_datagram_is_out_of_order_not_restart() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 3).with_batch_size(5);
        let msgs = exporter.export(&recs(15), 100).unwrap();
        let mut collector = Collector::new();
        collector.feed_netflow_v9(msgs[0].clone()).unwrap();
        collector.feed_netflow_v9(msgs[1].clone()).unwrap();
        collector.feed_netflow_v9(msgs[1].clone()).unwrap(); // duplicate
        collector.feed_netflow_v9(msgs[2].clone()).unwrap();
        let st = collector.source_stats(3).unwrap();
        assert_eq!(st.out_of_order, 1);
        assert_eq!(st.restarts, 0);
        assert_eq!(st.missed_datagrams, 0, "duplicate must not register loss");
        assert_eq!(collector.template_count(), 1, "no spurious flush");
    }

    #[test]
    fn exporter_restart_flushes_source_templates() {
        let mut first_life = Exporter::new(ExportProtocol::NetflowV9, 8).with_batch_size(5);
        let mut collector = Collector::new();
        for msg in first_life.export(&recs(20), 100).unwrap() {
            collector.feed_netflow_v9(msg).unwrap();
        }
        assert_eq!(collector.template_count(), 1);
        // Crash: a fresh process reuses source id 8, sequence reset to 0.
        let mut second_life = Exporter::new(ExportProtocol::NetflowV9, 8).with_batch_size(5);
        let msgs = second_life.export(&recs(10), 200).unwrap();
        let decoded = collector.feed_netflow_v9(msgs[0].clone()).unwrap();
        assert_eq!(collector.restarts_detected(), 1);
        // The restart message itself re-announces the template, so its
        // data still decodes after the flush.
        assert_eq!(decoded.len(), 5);
        assert_eq!(collector.template_count(), 1);
        // And the post-restart stream tracks cleanly.
        collector.feed_netflow_v9(msgs[1].clone()).unwrap();
        assert_eq!(collector.missed_datagrams(), 0);
    }

    #[test]
    fn template_cache_is_bounded_with_lru_eviction() {
        let mut collector = Collector::new().with_template_cache_cap(2);
        for source in 0..4u32 {
            let mut e = Exporter::new(ExportProtocol::NetflowV9, source).with_batch_size(4);
            for msg in e.export(&recs(4), 100).unwrap() {
                collector.feed_netflow_v9(msg).unwrap();
            }
        }
        assert_eq!(collector.template_count(), 2, "cap enforced");
        assert_eq!(collector.templates_evicted(), 2);
        // The most recent source survived; the oldest was evicted, so its
        // data-only messages now drop as unknown-template.
        let mut oldest = Exporter::new(ExportProtocol::NetflowV9, 0).with_batch_size(4);
        let msgs = oldest.export(&recs(8), 101).unwrap();
        let decoded = collector.feed_netflow_v9(msgs[1].clone()).unwrap();
        assert!(decoded.is_empty());
        assert!(collector.dropped_unknown_template_by_source(0) > 0);
    }

    /// A 20-byte v9 header followed by raw flowset bytes.
    fn v9_datagram(source: u32, seq: u32, flowset: &[u8]) -> Bytes {
        let mut b = BytesMut::new();
        b.put_u16(9);
        b.put_u16(1);
        b.put_u32(100_000);
        b.put_u32(100);
        b.put_u32(seq);
        b.put_u32(source);
        b.extend_from_slice(flowset);
        b.freeze()
    }

    #[test]
    fn malformed_set_counted_separately_from_malformed_message() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 4).with_batch_size(4);
        let mut collector = Collector::new();
        for msg in exporter.export(&recs(4), 100).unwrap() {
            collector.feed_netflow_v9(msg).unwrap();
        }
        // Framing-valid data set for the announced template 256, but its
        // 37-byte body is one byte short of a record.
        let mut fs = Vec::new();
        fs.extend_from_slice(&256u16.to_be_bytes());
        fs.extend_from_slice(&41u16.to_be_bytes());
        fs.extend_from_slice(&[0u8; 37]);
        collector.feed_netflow_v9(v9_datagram(4, 4, &fs)).unwrap();
        assert_eq!(collector.malformed_sets(), 1);
        assert_eq!(collector.malformed_messages(), 0);
    }

    #[test]
    fn malformed_flood_quarantines_only_the_offending_source() {
        let mut collector = Collector::new();
        // Source 9 floods malformed datagrams: a flowset whose declared
        // length (3) cannot even cover its own 4-byte header.
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        for i in 0..Collector::QUARANTINE_THRESHOLD {
            let bad = v9_datagram(9, i, &bad_set);
            assert!(collector.feed_netflow_v9(bad).is_err());
        }
        assert_eq!(collector.quarantined_sources(), vec![9]);
        // While quarantined, even valid datagrams from 9 are discarded…
        let mut e9 = Exporter::new(ExportProtocol::NetflowV9, 9).with_batch_size(4);
        let msgs9 = e9.export(&recs(4), 100).unwrap();
        assert_eq!(collector.feed_netflow_v9(msgs9[0].clone()).unwrap(), vec![]);
        assert!(collector.source_stats(9).unwrap().quarantined_dropped >= 1);
        // …but other sources are untouched.
        let mut e5 = Exporter::new(ExportProtocol::NetflowV9, 5).with_batch_size(4);
        let mut decoded = Vec::new();
        for msg in e5.export(&recs(4), 100).unwrap() {
            decoded.extend(collector.feed_netflow_v9(msg).unwrap());
        }
        assert_eq!(decoded.len(), 4);
        // Quarantine expires after the fixed number of datagrams.
        for _ in 0..Collector::QUARANTINE_DATAGRAMS {
            let _ = collector.feed_netflow_v9(msgs9[0].clone());
        }
        let decoded = collector.feed_netflow_v9(msgs9[0].clone()).unwrap();
        assert_eq!(decoded.len(), 4, "source 9 resumes after probation");
    }

    /// Drive source 9 into quarantine with a malformed flood, then burn
    /// through the whole discard window, leaving it on probation.
    fn quarantine_then_probation(collector: &mut Collector, window: u32) -> Vec<Bytes> {
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        for i in 0..Collector::QUARANTINE_THRESHOLD {
            let bad = v9_datagram(9, i, &bad_set);
            assert!(collector.feed_netflow_v9(bad).is_err());
        }
        assert!(matches!(collector.source_health(9), SourceHealth::Quarantined { remaining } if remaining == window));
        let mut e9 = Exporter::new(ExportProtocol::NetflowV9, 9).with_batch_size(4);
        let msgs9 = e9.export(&recs(4), 100).unwrap();
        for _ in 0..window {
            assert_eq!(collector.feed_netflow_v9(msgs9[0].clone()).unwrap(), vec![]);
        }
        assert_eq!(
            collector.source_health(9),
            SourceHealth::Probation { clean_needed: Collector::PROBATION_CLEAN }
        );
        msgs9
    }

    #[test]
    fn probation_graduates_to_healthy_after_clean_run() {
        let mut collector = Collector::new();
        let msgs9 = quarantine_then_probation(&mut collector, Collector::QUARANTINE_DATAGRAMS);
        // Clean messages flow during probation (half-open, not closed)…
        for i in 0..Collector::PROBATION_CLEAN {
            let decoded = collector.feed_netflow_v9(msgs9[0].clone()).unwrap();
            assert_eq!(decoded.len(), 4, "probation message {i} must decode");
        }
        // …and a full clean run restores health and forgives the backoff.
        assert_eq!(collector.source_health(9), SourceHealth::Healthy);
        assert_eq!(collector.requarantines_total(), 0);
        let st = collector.source_stats(9).unwrap();
        assert_eq!(st.quarantines, 1);
        assert_eq!(st.requarantines, 0);
    }

    #[test]
    fn malformed_during_probation_requarantines_with_backoff() {
        let mut collector = Collector::new();
        let msgs9 = quarantine_then_probation(&mut collector, Collector::QUARANTINE_DATAGRAMS);
        // One malformed message during probation trips it immediately —
        // no 4-strike grace — and doubles the window.
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        assert!(collector.feed_netflow_v9(v9_datagram(9, 50, &bad_set)).is_err());
        assert_eq!(
            collector.source_health(9),
            SourceHealth::Quarantined { remaining: Collector::QUARANTINE_DATAGRAMS << 1 }
        );
        assert_eq!(collector.requarantines_total(), 1);
        let st = collector.source_stats(9).unwrap();
        assert_eq!(st.quarantines, 2);
        assert_eq!(st.requarantines, 1);
        // Serve the doubled window; next failure doubles again.
        let _ = quarantine_backoff_cycle(&mut collector, &msgs9, Collector::QUARANTINE_DATAGRAMS << 1);
        assert_eq!(
            collector.source_health(9),
            SourceHealth::Quarantined { remaining: Collector::QUARANTINE_DATAGRAMS << 2 }
        );
        assert_eq!(collector.requarantines_total(), 2);
    }

    /// Consume a quarantine window of `window` datagrams, then fail the
    /// resulting probation with one malformed message.
    fn quarantine_backoff_cycle(collector: &mut Collector, msgs9: &[Bytes], window: u32) -> u32 {
        for _ in 0..window {
            assert_eq!(collector.feed_netflow_v9(msgs9[0].clone()).unwrap(), vec![]);
        }
        assert!(matches!(collector.source_health(9), SourceHealth::Probation { .. }));
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        assert!(collector.feed_netflow_v9(v9_datagram(9, 99, &bad_set)).is_err());
        window
    }

    #[test]
    fn backoff_window_is_capped() {
        let mut collector = Collector::new();
        let msgs9 = quarantine_then_probation(&mut collector, Collector::QUARANTINE_DATAGRAMS);
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        assert!(collector.feed_netflow_v9(v9_datagram(9, 50, &bad_set)).is_err());
        for level in 2..=(Collector::MAX_BACKOFF_LEVEL + 3) {
            let got = match collector.source_health(9) {
                SourceHealth::Quarantined { remaining } => remaining,
                other => panic!("expected quarantine at level {level}, got {other:?}"),
            };
            quarantine_backoff_cycle(&mut collector, &msgs9, got);
        }
        // Window is pinned at the cap, not growing without bound.
        assert_eq!(
            collector.source_health(9),
            SourceHealth::Quarantined {
                remaining: Collector::QUARANTINE_DATAGRAMS << Collector::MAX_BACKOFF_LEVEL
            }
        );
    }

    #[test]
    fn source_healths_reports_every_source() {
        let mut collector = Collector::new();
        let mut e5 = Exporter::new(ExportProtocol::NetflowV9, 5).with_batch_size(4);
        for msg in e5.export(&recs(4), 100).unwrap() {
            collector.feed_netflow_v9(msg).unwrap();
        }
        quarantine_then_probation(&mut collector, Collector::QUARANTINE_DATAGRAMS);
        let healths = collector.source_healths();
        assert_eq!(healths.len(), 2);
        assert_eq!(healths[0], (5, SourceHealth::Healthy));
        assert!(matches!(healths[1], (9, SourceHealth::Probation { .. })));
        assert_eq!(SourceHealth::Healthy.label(), "healthy");
        assert_eq!(SourceHealth::Quarantined { remaining: 1 }.label(), "quarantined");
        assert_eq!(SourceHealth::Probation { clean_needed: 1 }.label(), "probation");
    }

    #[test]
    fn probation_state_survives_snapshot() {
        let mut collector = Collector::new();
        let msgs9 = quarantine_then_probation(&mut collector, Collector::QUARANTINE_DATAGRAMS);
        // Partially serve probation, then fail it once to raise backoff.
        collector.feed_netflow_v9(msgs9[0].clone()).unwrap();
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        assert!(collector.feed_netflow_v9(v9_datagram(9, 60, &bad_set)).is_err());
        let restored = Collector::restore(&collector.snapshot()).expect("restore");
        assert_eq!(restored.source_health(9), collector.source_health(9));
        assert_eq!(restored.requarantines_total(), collector.requarantines_total());
        assert_eq!(restored.snapshot(), collector.snapshot());
    }

    /// A messy multi-source feed: templates, data, a dropped datagram, a
    /// duplicate, and a malformed flood that quarantines one source.
    fn messy_feed() -> Vec<Bytes> {
        let mut msgs = Vec::new();
        let mut e1 = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(5);
        let mut e2 = Exporter::new(ExportProtocol::Ipfix, 2).with_batch_size(4);
        let m1 = e1.export(&recs(20), 100).unwrap();
        let m2 = e2.export(&recs(12), 100).unwrap();
        msgs.push(m1[0].clone());
        msgs.push(m2[0].clone());
        msgs.push(m1[2].clone()); // m1[1] lost → sequence gap
        msgs.push(m2[1].clone());
        msgs.push(m2[1].clone()); // duplicate → out of order
        let mut bad_set = Vec::new();
        bad_set.extend_from_slice(&256u16.to_be_bytes());
        bad_set.extend_from_slice(&3u16.to_be_bytes());
        for i in 0..Collector::QUARANTINE_THRESHOLD {
            msgs.push(v9_datagram(9, i, &bad_set));
        }
        msgs.push(m1[3].clone());
        msgs.push(m2[2].clone());
        msgs
    }

    #[test]
    fn snapshot_restore_continues_identically() {
        let msgs = messy_feed();
        let split = msgs.len() / 2;
        // Reference: uninterrupted run over the whole feed.
        let mut whole = Collector::new();
        let mut whole_records = Vec::new();
        for m in &msgs {
            if let Ok(rs) = whole.feed(m.clone()) {
                whole_records.extend(rs);
            }
        }
        // Snapshot after the first half, restore, continue on the rest.
        let mut front = Collector::new();
        let mut resumed_records = Vec::new();
        for m in &msgs[..split] {
            if let Ok(rs) = front.feed(m.clone()) {
                resumed_records.extend(rs);
            }
        }
        let frame = front.snapshot();
        let mut back = Collector::restore(&frame).expect("restore");
        for m in &msgs[split..] {
            if let Ok(rs) = back.feed(m.clone()) {
                resumed_records.extend(rs);
            }
        }
        assert_eq!(resumed_records, whole_records, "decoded records diverge after restore");
        assert_eq!(back.snapshot(), whole.snapshot(), "full state diverges after restore");
        assert_eq!(back.datagrams_received(), whole.datagrams_received());
        assert_eq!(back.records_decoded(), whole.records_decoded());
        assert_eq!(back.missed_datagrams(), whole.missed_datagrams());
        assert_eq!(back.quarantined_sources(), whole.quarantined_sources());
        assert_eq!(back.sampling_of(2), whole.sampling_of(2));
    }

    #[test]
    fn snapshot_bytes_are_deterministic() {
        let msgs = messy_feed();
        let run = || {
            let mut c = Collector::new();
            for m in &msgs {
                let _ = c.feed(m.clone());
            }
            c.snapshot()
        };
        assert_eq!(run(), run(), "same feed must snapshot to identical bytes");
    }

    #[test]
    fn corrupt_snapshot_is_rejected_not_panicking() {
        let msgs = messy_feed();
        let mut c = Collector::new();
        for m in &msgs {
            let _ = c.feed(m.clone());
        }
        let frame = c.snapshot();
        assert!(Collector::restore(&frame).is_ok());
        // Truncations at every prefix length fail cleanly.
        for cut in [0, 1, frame.len() / 2, frame.len() - 1] {
            assert!(Collector::restore(&frame[..cut]).is_err(), "cut {cut}");
        }
        // Any single bit flip is caught by the checksum.
        for i in (0..frame.len()).step_by(7) {
            let mut bad = frame.clone();
            bad[i] ^= 0x10;
            assert!(Collector::restore(&bad).is_err(), "flip at byte {i}");
        }
    }
}
