//! The stateful flow collector.
//!
//! Holds the template cache keyed by `(source id, template id)` — templates
//! from one exporter must never describe another exporter's data — decodes
//! data sets against it, and surfaces per-message decode problems without
//! aborting the feed (a collector that dies on one malformed datagram is
//! useless at an IXP).

use crate::error::FlowError;
use crate::ipfix;
use crate::netflow_v5 as v5;
use crate::netflow_v9 as v9;
use crate::record::FlowRecord;
use crate::wire::{decode_records, OptionsTemplate, SamplingOptions, Template};
use bytes::Bytes;
use std::collections::HashMap;

/// A collector accepting both NetFlow v9 and IPFIX feeds.
#[derive(Debug, Default)]
pub struct Collector {
    templates: HashMap<(u32, u16), Template>,
    options_templates: HashMap<(u32, u16), OptionsTemplate>,
    /// Per-source sampling configuration learned from options data.
    sampling: HashMap<u32, SamplingOptions>,
    /// Data sets that referenced a template not yet announced. Real
    /// collectors buffer or drop; we drop and count, which the tests
    /// assert on.
    dropped_unknown_template: u64,
    /// Messages that failed to parse at all.
    malformed_messages: u64,
}

impl Collector {
    /// New collector with an empty template cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one NetFlow v9 datagram; returns the decoded records.
    pub fn feed_netflow_v9(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        let msg = match v9::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.malformed_messages += 1;
                return Err(e);
            }
        };
        let source = msg.header.source_id;
        let mut out = Vec::new();
        for fs in msg.flowsets {
            match fs {
                v9::FlowSet::Templates(ts) => {
                    for t in ts {
                        self.templates.insert((source, t.id), t);
                    }
                }
                v9::FlowSet::OptionsTemplates(ts) => {
                    for t in ts {
                        self.options_templates.insert((source, t.id), t);
                    }
                }
                v9::FlowSet::Data { template_id, body } => {
                    self.decode_data(source, template_id, body, &mut out);
                }
            }
        }
        Ok(out)
    }

    /// Feed one legacy NetFlow v5 datagram (fixed format, no templates).
    /// The header's sampling announcement, if present, is recorded under
    /// the engine id as source.
    pub fn feed_netflow_v5(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        let msg = match v5::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.malformed_messages += 1;
                return Err(e);
            }
        };
        if let Some(interval) = msg.header.sampling_interval() {
            self.sampling.insert(
                u32::from(msg.header.engine),
                SamplingOptions { interval: u32::from(interval), algorithm: 1 },
            );
        }
        Ok(msg.records)
    }

    /// Feed one IPFIX datagram; returns the decoded records.
    pub fn feed_ipfix(&mut self, datagram: Bytes) -> Result<Vec<FlowRecord>, FlowError> {
        let msg = match ipfix::decode(datagram) {
            Ok(m) => m,
            Err(e) => {
                self.malformed_messages += 1;
                return Err(e);
            }
        };
        let source = msg.header.domain_id;
        let mut out = Vec::new();
        for set in msg.sets {
            match set {
                ipfix::Set::Templates(ts) => {
                    for t in ts {
                        self.templates.insert((source, t.id), t);
                    }
                }
                ipfix::Set::OptionsTemplates(ts) => {
                    for t in ts {
                        self.options_templates.insert((source, t.id), t);
                    }
                }
                ipfix::Set::Data { template_id, body } => {
                    self.decode_data(source, template_id, body, &mut out);
                }
            }
        }
        Ok(out)
    }

    fn decode_data(&mut self, source: u32, template_id: u16, body: Bytes, out: &mut Vec<FlowRecord>) {
        // Options data takes priority: options templates and data
        // templates share the ≥256 id space, but an exporter never reuses
        // an id across the two.
        if let Some(ot) = self.options_templates.get(&(source, template_id)) {
            let mut b = body;
            while b.len() >= ot.record_len() && ot.record_len() > 0 {
                match ot.decode_sampling(&mut b) {
                    Ok(s) => {
                        self.sampling.insert(source, s);
                    }
                    Err(_) => {
                        self.malformed_messages += 1;
                        return;
                    }
                }
            }
            return;
        }
        match self.templates.get(&(source, template_id)) {
            Some(t) => match decode_records(t, &mut body.clone()) {
                Ok(mut records) => out.append(&mut records),
                Err(_) => self.malformed_messages += 1,
            },
            None => self.dropped_unknown_template += 1,
        }
    }

    /// The sampling configuration a source announced via options data
    /// (§2.1's "consistent sampling rate", as a collector learns it).
    pub fn sampling_of(&self, source_id: u32) -> Option<SamplingOptions> {
        self.sampling.get(&source_id).copied()
    }

    /// Data sets dropped because their template was never announced.
    pub fn dropped_unknown_template(&self) -> u64 {
        self.dropped_unknown_template
    }

    /// Messages (or data sets) that failed to decode.
    pub fn malformed_messages(&self) -> u64 {
        self.malformed_messages
    }

    /// Number of cached templates.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::{ExportProtocol, Exporter};
    use crate::key::FlowKey;
    use crate::tcp_flags::TcpFlags;
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, 0, i as u8),
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    sport: 40000,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 2,
                bytes: 222,
                tcp_flags: TcpFlags::ACK,
                first: SimTime(5),
                last: SimTime(9),
            })
            .collect()
    }

    #[test]
    fn end_to_end_netflow() {
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 77).with_batch_size(8);
        let mut collector = Collector::new();
        let records = recs(20);
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 100).unwrap() {
            decoded.extend(collector.feed_netflow_v9(msg).unwrap());
        }
        assert_eq!(decoded, records);
        assert_eq!(collector.dropped_unknown_template(), 0);
    }

    #[test]
    fn end_to_end_ipfix() {
        let mut exporter = Exporter::new(ExportProtocol::Ipfix, 42);
        let mut collector = Collector::new();
        let records = recs(5);
        let mut decoded = Vec::new();
        for msg in exporter.export(&records, 100).unwrap() {
            decoded.extend(collector.feed_ipfix(msg).unwrap());
        }
        assert_eq!(decoded, records);
    }

    #[test]
    fn data_before_template_is_dropped_and_counted() {
        // Build a data-only message by fast-forwarding the exporter past
        // its first (template-bearing) message, then feed only the second
        // message to a fresh collector.
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(4);
        let records = recs(8);
        let msgs = exporter.export(&records, 100).unwrap();
        assert_eq!(msgs.len(), 2);
        let mut collector = Collector::new();
        let decoded = collector.feed_netflow_v9(msgs[1].clone()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(collector.dropped_unknown_template(), 1);
        // Once the template arrives, subsequent data decodes.
        collector.feed_netflow_v9(msgs[0].clone()).unwrap();
        let again = exporter.export(&records, 101).unwrap();
        let decoded = collector.feed_netflow_v9(again[0].clone()).unwrap();
        assert_eq!(decoded.len(), 4);
    }

    #[test]
    fn template_caches_are_per_source() {
        let mut e1 = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(4);
        let mut e2 = Exporter::new(ExportProtocol::NetflowV9, 2).with_batch_size(4);
        let records = recs(8);
        let m1 = e1.export(&records, 100).unwrap();
        let m2 = e2.export(&records, 100).unwrap();
        let mut collector = Collector::new();
        // Source 1 announces its template; source 2's *data-only* second
        // message must not decode against it.
        collector.feed_netflow_v9(m1[0].clone()).unwrap();
        let decoded = collector.feed_netflow_v9(m2[1].clone()).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(collector.dropped_unknown_template(), 1);
        assert_eq!(collector.template_count(), 1);
    }

    #[test]
    fn malformed_datagram_counted_not_fatal() {
        let mut collector = Collector::new();
        assert!(collector.feed_netflow_v9(Bytes::from_static(&[1, 2, 3])).is_err());
        assert_eq!(collector.malformed_messages(), 1);
        // Collector still works afterwards.
        let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 1);
        let records = recs(2);
        for msg in exporter.export(&records, 100).unwrap() {
            assert!(collector.feed_netflow_v9(msg).is_ok());
        }
    }

    #[test]
    fn v5_feed_decodes_and_learns_sampling() {
        use crate::netflow_v5 as v5;
        let records = recs(4);
        let header = v5::V5Header { engine: 12, ..Default::default() }
            .with_sampling_interval(1_000);
        let wire = v5::encode(&header, &records).unwrap();
        let mut collector = Collector::new();
        let decoded = collector.feed_netflow_v5(wire).unwrap();
        assert_eq!(decoded, records);
        assert_eq!(collector.sampling_of(12).unwrap().interval, 1_000);
    }

    #[test]
    fn cross_protocol_feeds_rejected() {
        let mut exporter = Exporter::new(ExportProtocol::Ipfix, 1);
        let msgs = exporter.export(&recs(1), 100).unwrap();
        let mut collector = Collector::new();
        assert!(matches!(
            collector.feed_netflow_v9(msgs[0].clone()),
            Err(FlowError::BadVersion { expected: 9, found: 10 })
        ));
    }
}
