//! The five-tuple flow key.

use haystack_net::ports::Proto;
use std::fmt;
use std::net::Ipv4Addr;

/// The classic 5-tuple that identifies a flow at the exporter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source transport port.
    pub sport: u16,
    /// Destination transport port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
}

impl FlowKey {
    /// The key of the reverse direction (server→client for a client→server
    /// key). Useful when pairing the two unidirectional flows NetFlow
    /// produces per connection.
    #[must_use]
    pub fn reversed(&self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            sport: self.dport,
            dport: self.sport,
            proto: self.proto,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{} -> {}:{} ({})",
            self.src,
            self.sport,
            self.dst,
            self.dport,
            match self.proto {
                Proto::Tcp => "tcp",
                Proto::Udp => "udp",
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involutive() {
        let k = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(198, 18, 0, 1),
            sport: 50000,
            dport: 443,
            proto: Proto::Tcp,
        };
        assert_eq!(k.reversed().reversed(), k);
        assert_eq!(k.reversed().sport, 443);
    }

    #[test]
    fn display() {
        let k = FlowKey {
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(198, 18, 0, 1),
            sport: 50000,
            dport: 443,
            proto: Proto::Tcp,
        };
        assert_eq!(k.to_string(), "10.0.0.1:50000 -> 198.18.0.1:443 (tcp)");
    }
}
