//! NetFlow v5 wire codec — the fixed-format legacy protocol.
//!
//! Older border routers export v5; a credible collector accepts it
//! alongside v9/IPFIX, and the methodology works identically (v5 carries
//! the same 5-tuple + counters + cumulative TCP flags, §2.1 needs nothing
//! more). Format: a 24-byte header followed by up to 30 fixed 48-byte
//! records — no templates, no options; the sampling rate rides in the
//! header's `sampling` field (mode in the top 2 bits, interval below).
//!
//! ```text
//! header: ver=5 | count | sysUptime | unixSecs | unixNsecs | seq | engine | sampling
//! record: srcIP dstIP nexthop ifIdx ifIdx pkts bytes first last sport dport
//!         pad tcpFlags proto tos srcAS dstAS srcMask dstMask pad
//! ```

use crate::error::FlowError;
use crate::key::FlowKey;
use crate::record::FlowRecord;
use crate::tcp_flags::TcpFlags;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::net::Ipv4Addr;

/// Protocol version constant.
pub const VERSION: u16 = 5;
/// Header size in bytes.
pub const HEADER_LEN: usize = 24;
/// Fixed record size in bytes.
pub const RECORD_LEN: usize = 48;
/// Maximum records per datagram (RFC-era convention, fits a 1500 MTU).
pub const MAX_RECORDS: usize = 30;

/// NetFlow v5 header fields the codec does not own.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V5Header {
    /// Router uptime in ms (simulated seconds × 1000).
    pub sys_uptime_ms: u32,
    /// Export time in (simulated) seconds.
    pub unix_secs: u32,
    /// Cumulative flow sequence number.
    pub sequence: u32,
    /// Engine type/id packed (we use it as a source id surrogate).
    pub engine: u16,
    /// Sampling: top 2 bits mode (1 = deterministic), lower 14 bits the
    /// 1-in-N interval.
    pub sampling: u16,
}

impl V5Header {
    /// Pack a deterministic 1-in-`n` sampling announcement (`n < 2^14`).
    pub fn with_sampling_interval(mut self, n: u16) -> Self {
        self.sampling = (1 << 14) | (n & 0x3FFF);
        self
    }

    /// The announced sampling interval, if any.
    pub fn sampling_interval(&self) -> Option<u16> {
        let mode = self.sampling >> 14;
        if mode == 0 {
            None
        } else {
            Some(self.sampling & 0x3FFF)
        }
    }
}

/// Encode up to [`MAX_RECORDS`] records into one datagram.
pub fn encode(header: &V5Header, records: &[FlowRecord]) -> Result<Bytes, FlowError> {
    if records.len() > MAX_RECORDS {
        return Err(FlowError::BadSetLength {
            declared: records.len() as u16,
            remaining: MAX_RECORDS,
        });
    }
    let mut buf = BytesMut::with_capacity(HEADER_LEN + RECORD_LEN * records.len());
    buf.put_u16(VERSION);
    buf.put_u16(records.len() as u16);
    buf.put_u32(header.sys_uptime_ms);
    buf.put_u32(header.unix_secs);
    buf.put_u32(0); // unix nsecs
    buf.put_u32(header.sequence);
    buf.put_u16(header.engine);
    buf.put_u16(header.sampling);
    for r in records {
        buf.put_u32(u32::from(r.key.src));
        buf.put_u32(u32::from(r.key.dst));
        buf.put_u32(0); // nexthop
        buf.put_u16(0); // input ifindex
        buf.put_u16(0); // output ifindex
        buf.put_u32(r.packets as u32);
        buf.put_u32(r.bytes as u32);
        buf.put_u32(r.first.0 as u32);
        buf.put_u32(r.last.0 as u32);
        buf.put_u16(r.key.sport);
        buf.put_u16(r.key.dport);
        buf.put_u8(0); // pad
        buf.put_u8(r.tcp_flags.0);
        buf.put_u8(r.key.proto.number());
        buf.put_u8(0); // tos
        buf.put_u16(0); // src AS
        buf.put_u16(0); // dst AS
        buf.put_u8(0); // src mask
        buf.put_u8(0); // dst mask
        buf.put_u16(0); // pad
    }
    Ok(buf.freeze())
}

/// A decoded v5 datagram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header fields.
    pub header: V5Header,
    /// Decoded records. Non-TCP/UDP records are dropped (the methodology
    /// consumes only those), counted in `skipped`.
    pub records: Vec<FlowRecord>,
    /// Records skipped for unsupported protocols.
    pub skipped: usize,
}

/// Decode one datagram.
pub fn decode(mut datagram: Bytes) -> Result<Message, FlowError> {
    if datagram.remaining() < HEADER_LEN {
        return Err(FlowError::Truncated {
            context: "netflow v5 header",
            needed: HEADER_LEN,
            available: datagram.remaining(),
        });
    }
    let version = datagram.get_u16();
    if version != VERSION {
        return Err(FlowError::BadVersion { expected: VERSION, found: version });
    }
    let count = usize::from(datagram.get_u16());
    if count > MAX_RECORDS {
        return Err(FlowError::BadSetLength { declared: count as u16, remaining: MAX_RECORDS });
    }
    let header = V5Header {
        sys_uptime_ms: datagram.get_u32(),
        unix_secs: datagram.get_u32(),
        sequence: {
            let _nsecs = datagram.get_u32();
            datagram.get_u32()
        },
        engine: datagram.get_u16(),
        sampling: datagram.get_u16(),
    };
    if datagram.remaining() < count * RECORD_LEN {
        return Err(FlowError::Truncated {
            context: "netflow v5 records",
            needed: count * RECORD_LEN,
            available: datagram.remaining(),
        });
    }
    let mut records = Vec::with_capacity(count);
    let mut skipped = 0usize;
    for _ in 0..count {
        let src = Ipv4Addr::from(datagram.get_u32());
        let dst = Ipv4Addr::from(datagram.get_u32());
        datagram.advance(8); // nexthop + ifindexes
        let packets = u64::from(datagram.get_u32());
        let bytes = u64::from(datagram.get_u32());
        let first = SimTime(u64::from(datagram.get_u32()));
        let last = SimTime(u64::from(datagram.get_u32()));
        let sport = datagram.get_u16();
        let dport = datagram.get_u16();
        datagram.advance(1); // pad
        let flags = TcpFlags(datagram.get_u8());
        let proto_num = datagram.get_u8();
        datagram.advance(9); // tos + ASes + masks + pad
        match Proto::from_number(proto_num) {
            Some(proto) => records.push(FlowRecord {
                key: FlowKey { src, dst, sport, dport, proto },
                packets,
                bytes,
                tcp_flags: flags,
                first,
                last,
            }),
            None => skipped += 1,
        }
    }
    Ok(Message { header, records, skipped })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(100, 64, 0, i),
                dst: Ipv4Addr::new(198, 18, 0, 1),
                sport: 40_000 + u16::from(i),
                dport: 443,
                proto: if i.is_multiple_of(2) { Proto::Tcp } else { Proto::Udp },
            },
            packets: u64::from(i) + 1,
            bytes: u64::from(i) * 120 + 40,
            tcp_flags: if i.is_multiple_of(2) { TcpFlags::ACK } else { TcpFlags::NONE },
            first: SimTime(100),
            last: SimTime(130),
        }
    }

    #[test]
    fn round_trip() {
        let records: Vec<_> = (0..7).map(rec).collect();
        let header = V5Header {
            sys_uptime_ms: 1_000,
            unix_secs: 100,
            sequence: 9,
            engine: 3,
            sampling: 0,
        }
        .with_sampling_interval(1_000);
        let wire = encode(&header, &records).unwrap();
        assert_eq!(wire.len(), HEADER_LEN + 7 * RECORD_LEN);
        let msg = decode(wire).unwrap();
        assert_eq!(msg.records, records);
        assert_eq!(msg.skipped, 0);
        assert_eq!(msg.header.sampling_interval(), Some(1_000));
        assert_eq!(msg.header.sequence, 9);
    }

    #[test]
    fn too_many_records_rejected_on_encode() {
        let records: Vec<_> = (0..31).map(|i| rec(i as u8)).collect();
        assert!(encode(&V5Header::default(), &records).is_err());
    }

    #[test]
    fn wrong_version_rejected() {
        let wire = encode(&V5Header::default(), &[rec(1)]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        tampered[1] = 9;
        assert_eq!(
            decode(tampered.freeze()),
            Err(FlowError::BadVersion { expected: 5, found: 9 })
        );
    }

    #[test]
    fn truncation_rejected() {
        let wire = encode(&V5Header::default(), &[rec(1), rec(2)]).unwrap();
        assert!(matches!(
            decode(wire.slice(0..HEADER_LEN + 10)),
            Err(FlowError::Truncated { .. })
        ));
        assert!(matches!(decode(wire.slice(0..10)), Err(FlowError::Truncated { .. })));
    }

    #[test]
    fn unsupported_protocols_are_skipped_not_fatal() {
        // Craft a record with protocol 1 (ICMP) by editing the wire.
        let wire = encode(&V5Header::default(), &[rec(0), rec(2)]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        // Protocol byte of record 0 sits at HEADER_LEN + 38.
        tampered[HEADER_LEN + 38] = 1;
        let msg = decode(tampered.freeze()).unwrap();
        assert_eq!(msg.records.len(), 1);
        assert_eq!(msg.skipped, 1);
    }

    #[test]
    fn sampling_field_modes() {
        assert_eq!(V5Header::default().sampling_interval(), None);
        let h = V5Header::default().with_sampling_interval(4_096);
        assert_eq!(h.sampling_interval(), Some(4_096 & 0x3FFF));
    }
}
