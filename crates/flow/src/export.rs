//! The exporter: batches flow records into wire messages.
//!
//! Real exporters resend templates periodically because the transport is
//! unreliable UDP; the reproduction does the same (every
//! [`Exporter::TEMPLATE_REFRESH`] messages and always in the first one), so
//! collector restarts and template-before-data ordering are genuinely
//! exercised.

use crate::error::FlowError;
use crate::ipfix;
use crate::netflow_v9 as v9;
use crate::record::FlowRecord;
use crate::wire::{OptionsTemplate, SamplingOptions, Template};
use bytes::Bytes;

/// Which wire protocol an exporter speaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportProtocol {
    /// NetFlow v9 (the ISP's routers).
    NetflowV9,
    /// IPFIX (the IXP's fabric).
    Ipfix,
}

/// A stateful exporter for one observation point.
///
/// ```
/// use haystack_flow::export::{ExportProtocol, Exporter};
/// use haystack_flow::Collector;
///
/// let mut exporter = Exporter::new(ExportProtocol::NetflowV9, 7)
///     .with_sampling(1_000, false);
/// let mut collector = Collector::new();
/// for datagram in exporter.export(&[], 100).unwrap() {
///     collector.feed_netflow_v9(datagram).unwrap();
/// }
/// // The collector learned the announced sampling rate.
/// assert_eq!(collector.sampling_of(7).unwrap().interval, 1_000);
/// ```
#[derive(Debug)]
pub struct Exporter {
    protocol: ExportProtocol,
    template: Template,
    options_template: OptionsTemplate,
    sampling: Option<SamplingOptions>,
    source_id: u32,
    sequence: u32,
    messages_sent: u64,
    /// Records per message; 30 × 38-byte records + headers stays within a
    /// 1500-byte MTU.
    batch_size: usize,
}

impl Exporter {
    /// Messages between template refreshes.
    pub const TEMPLATE_REFRESH: u64 = 20;

    /// Create an exporter with the workspace-standard template.
    pub fn new(protocol: ExportProtocol, source_id: u32) -> Self {
        Exporter {
            protocol,
            template: Template::standard(256),
            options_template: OptionsTemplate::sampling(512),
            sampling: None,
            source_id,
            sequence: 0,
            messages_sent: 0,
            batch_size: 30,
        }
    }

    /// Override the records-per-message batch size (tests).
    pub fn with_batch_size(mut self, n: usize) -> Self {
        assert!(n > 0, "batch size must be positive");
        self.batch_size = n;
        self
    }

    /// Announce the sampling configuration via options data (alongside
    /// every template refresh).
    pub fn with_sampling(mut self, interval: u32, random: bool) -> Self {
        self.sampling = Some(SamplingOptions {
            interval,
            algorithm: if random { 2 } else { 1 },
        });
        self
    }

    /// The exporter's template.
    pub fn template(&self) -> &Template {
        &self.template
    }

    /// Encode `records` into one or more wire messages stamped with export
    /// time `now_secs`.
    pub fn export(&mut self, records: &[FlowRecord], now_secs: u32) -> Result<Vec<Bytes>, FlowError> {
        let mut out = Vec::with_capacity(records.len() / self.batch_size + 1);
        let mut chunks: Vec<&[FlowRecord]> = records.chunks(self.batch_size).collect();
        if chunks.is_empty() && self.messages_sent == 0 {
            // Nothing to send but the collector still needs the template.
            chunks.push(&[]);
        }
        for chunk in chunks {
            let send_template = self.messages_sent.is_multiple_of(Self::TEMPLATE_REFRESH);
            let templates: &[Template] = if send_template {
                std::slice::from_ref(&self.template)
            } else {
                &[]
            };
            let sampling = if send_template {
                self.sampling.map(|s| (&self.options_template, s))
            } else {
                None
            };
            let msg = match self.protocol {
                ExportProtocol::NetflowV9 => v9::encode_full(
                    &v9::V9Header {
                        sys_uptime_ms: now_secs.saturating_mul(1000),
                        unix_secs: now_secs,
                        sequence: self.sequence,
                        source_id: self.source_id,
                    },
                    templates,
                    &[(&self.template, chunk)],
                    sampling,
                )?,
                ExportProtocol::Ipfix => ipfix::encode_full(
                    &ipfix::IpfixHeader {
                        export_time: now_secs,
                        sequence: self.sequence,
                        domain_id: self.source_id,
                    },
                    templates,
                    &[(&self.template, chunk)],
                    sampling,
                )?,
            };
            self.sequence = self.sequence.wrapping_add(chunk.len() as u32);
            self.messages_sent += 1;
            out.push(msg);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use crate::tcp_flags::TcpFlags;
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    use std::net::Ipv4Addr;

    fn recs(n: usize) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| FlowRecord {
                key: FlowKey {
                    src: Ipv4Addr::new(100, 64, (i / 256) as u8, (i % 256) as u8),
                    dst: Ipv4Addr::new(198, 18, 0, 1),
                    sport: 40000,
                    dport: 443,
                    proto: Proto::Tcp,
                },
                packets: 1,
                bytes: 100,
                tcp_flags: TcpFlags::ACK,
                first: SimTime(0),
                last: SimTime(0),
            })
            .collect()
    }

    #[test]
    fn batches_respect_batch_size() {
        let mut e = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(10);
        let msgs = e.export(&recs(25), 100).unwrap();
        assert_eq!(msgs.len(), 3);
    }

    #[test]
    fn first_message_carries_template() {
        let mut e = Exporter::new(ExportProtocol::NetflowV9, 1);
        let msgs = e.export(&recs(1), 100).unwrap();
        let msg = v9::decode(msgs[0].clone()).unwrap();
        assert!(matches!(msg.flowsets[0], v9::FlowSet::Templates(_)));
    }

    #[test]
    fn template_only_message_when_idle_at_start() {
        let mut e = Exporter::new(ExportProtocol::Ipfix, 1);
        let msgs = e.export(&[], 100).unwrap();
        assert_eq!(msgs.len(), 1);
        let msg = ipfix::decode(msgs[0].clone()).unwrap();
        assert!(matches!(msg.sets[0], ipfix::Set::Templates(_)));
    }

    #[test]
    fn sequence_advances_by_record_count() {
        let mut e = Exporter::new(ExportProtocol::NetflowV9, 1).with_batch_size(10);
        e.export(&recs(10), 100).unwrap();
        let msgs = e.export(&recs(1), 101).unwrap();
        let msg = v9::decode(msgs[0].clone()).unwrap();
        assert_eq!(msg.header.sequence, 10);
    }

    #[test]
    fn messages_fit_mtu() {
        let mut e = Exporter::new(ExportProtocol::Ipfix, 1);
        let msgs = e.export(&recs(120), 100).unwrap();
        assert!(msgs.iter().all(|m| m.len() <= 1500), "datagram exceeds MTU");
    }
}
