//! Template machinery shared by the NetFlow v9 and IPFIX codecs.
//!
//! Both protocols describe data records with *templates*: ordered lists of
//! (field-type, length) pairs. The field-type numbers below are the IANA
//! assignments common to NetFlow v9 (RFC 3954 §8) and the IPFIX information
//! elements (RFC 7012), which deliberately share the low number space.
//!
//! Deviation from the RFCs, documented once here: `FIRST_SWITCHED` /
//! `LAST_SWITCHED` carry **seconds since the simulation epoch** rather than
//! router sysuptime milliseconds — the simulation has no router uptime, and
//! every consumer wants absolute simulated time.

use crate::error::FlowError;
use crate::key::FlowKey;
use crate::record::FlowRecord;
use crate::tcp_flags::TcpFlags;
use bytes::{Buf, BufMut, BytesMut};
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::net::Ipv4Addr;

/// IN_BYTES — sampled byte count.
pub const FIELD_IN_BYTES: u16 = 1;
/// IN_PKTS — sampled packet count.
pub const FIELD_IN_PKTS: u16 = 2;
/// PROTOCOL — IANA transport protocol number.
pub const FIELD_PROTOCOL: u16 = 4;
/// TCP_FLAGS — cumulative OR of TCP flags.
pub const FIELD_TCP_FLAGS: u16 = 6;
/// L4_SRC_PORT.
pub const FIELD_L4_SRC_PORT: u16 = 7;
/// IPV4_SRC_ADDR.
pub const FIELD_IPV4_SRC_ADDR: u16 = 8;
/// L4_DST_PORT.
pub const FIELD_L4_DST_PORT: u16 = 11;
/// IPV4_DST_ADDR.
pub const FIELD_IPV4_DST_ADDR: u16 = 12;
/// LAST_SWITCHED (see module docs for the timestamp convention).
pub const FIELD_LAST_SWITCHED: u16 = 21;
/// FIRST_SWITCHED (see module docs for the timestamp convention).
pub const FIELD_FIRST_SWITCHED: u16 = 22;
/// SAMPLING_INTERVAL — the 1-in-N packet sampling denominator, announced
/// via options data (§2.1's "consistent sampling rate" is learned by the
/// collector from exactly this element).
pub const FIELD_SAMPLING_INTERVAL: u16 = 34;
/// SAMPLING_ALGORITHM — 1 = deterministic (systematic), 2 = random.
pub const FIELD_SAMPLING_ALGORITHM: u16 = 35;
/// Scope field type: "System" (NetFlow v9 options scope).
pub const SCOPE_SYSTEM: u16 = 1;

/// One template field: IANA type and on-wire length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TemplateField {
    /// IANA field type / information element id.
    pub id: u16,
    /// Encoded length in bytes.
    pub len: u16,
}

/// A (data) template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Template {
    /// Template id; must be ≥ 256 (the RFCs reserve lower ids for special
    /// sets).
    pub id: u16,
    /// Ordered field list.
    pub fields: Vec<TemplateField>,
}

impl Template {
    /// The workspace-standard flow template used by both vantage points.
    pub fn standard(id: u16) -> Template {
        Template {
            id,
            fields: vec![
                TemplateField { id: FIELD_IPV4_SRC_ADDR, len: 4 },
                TemplateField { id: FIELD_IPV4_DST_ADDR, len: 4 },
                TemplateField { id: FIELD_L4_SRC_PORT, len: 2 },
                TemplateField { id: FIELD_L4_DST_PORT, len: 2 },
                TemplateField { id: FIELD_PROTOCOL, len: 1 },
                TemplateField { id: FIELD_TCP_FLAGS, len: 1 },
                TemplateField { id: FIELD_IN_PKTS, len: 8 },
                TemplateField { id: FIELD_IN_BYTES, len: 8 },
                TemplateField { id: FIELD_FIRST_SWITCHED, len: 4 },
                TemplateField { id: FIELD_LAST_SWITCHED, len: 4 },
            ],
        }
    }

    /// Bytes of one encoded record under this template.
    pub fn record_len(&self) -> usize {
        self.fields.iter().map(|f| usize::from(f.len)).sum()
    }

    /// Validate the template: data-range id, non-empty, and every field a
    /// supported (type, length) combination.
    pub fn validate(&self) -> Result<(), FlowError> {
        if self.id < 256 {
            return Err(FlowError::ReservedTemplateId(self.id));
        }
        if self.fields.is_empty() {
            return Err(FlowError::EmptyTemplate(self.id));
        }
        for f in &self.fields {
            let ok = match f.id {
                FIELD_IPV4_SRC_ADDR | FIELD_IPV4_DST_ADDR => f.len == 4,
                FIELD_L4_SRC_PORT | FIELD_L4_DST_PORT => f.len == 2,
                FIELD_PROTOCOL | FIELD_TCP_FLAGS => f.len == 1,
                FIELD_IN_PKTS | FIELD_IN_BYTES => matches!(f.len, 1 | 2 | 4 | 8),
                FIELD_FIRST_SWITCHED | FIELD_LAST_SWITCHED => f.len == 4,
                // Unknown information elements are legal on the wire; the
                // decoder skips them, so any length is acceptable.
                _ => true,
            };
            if !ok {
                return Err(FlowError::UnsupportedField { field: f.id, len: f.len });
            }
        }
        Ok(())
    }

    /// Encode the template *body* (template id, field count, fields) —
    /// identical in NetFlow v9 template flowsets and IPFIX template sets.
    pub fn encode_body(&self, buf: &mut BytesMut) {
        buf.put_u16(self.id);
        buf.put_u16(self.fields.len() as u16);
        for f in &self.fields {
            buf.put_u16(f.id);
            buf.put_u16(f.len);
        }
    }

    /// Parse one template body from `buf`, advancing it.
    pub fn parse_body(buf: &mut impl Buf) -> Result<Template, FlowError> {
        if buf.remaining() < 4 {
            return Err(FlowError::Truncated {
                context: "template header",
                needed: 4,
                available: buf.remaining(),
            });
        }
        let id = buf.get_u16();
        let count = buf.get_u16() as usize;
        if count == 0 {
            return Err(FlowError::EmptyTemplate(id));
        }
        if buf.remaining() < count * 4 {
            return Err(FlowError::Truncated {
                context: "template fields",
                needed: count * 4,
                available: buf.remaining(),
            });
        }
        let mut fields = Vec::with_capacity(count);
        for _ in 0..count {
            fields.push(TemplateField { id: buf.get_u16(), len: buf.get_u16() });
        }
        let t = Template { id, fields };
        t.validate()?;
        Ok(t)
    }

    /// Encode one record under this template.
    pub fn encode_record(&self, rec: &FlowRecord, buf: &mut BytesMut) {
        for f in &self.fields {
            match f.id {
                FIELD_IPV4_SRC_ADDR => buf.put_u32(u32::from(rec.key.src)),
                FIELD_IPV4_DST_ADDR => buf.put_u32(u32::from(rec.key.dst)),
                FIELD_L4_SRC_PORT => buf.put_u16(rec.key.sport),
                FIELD_L4_DST_PORT => buf.put_u16(rec.key.dport),
                FIELD_PROTOCOL => buf.put_u8(rec.key.proto.number()),
                FIELD_TCP_FLAGS => buf.put_u8(rec.tcp_flags.0),
                FIELD_IN_PKTS => put_uint(buf, rec.packets, f.len),
                FIELD_IN_BYTES => put_uint(buf, rec.bytes, f.len),
                FIELD_FIRST_SWITCHED => buf.put_u32(rec.first.0 as u32),
                FIELD_LAST_SWITCHED => buf.put_u32(rec.last.0 as u32),
                _ => buf.put_bytes(0, usize::from(f.len)),
            }
        }
    }

    /// Decode one record under this template, advancing `buf`. Unknown
    /// fields are skipped; absent key fields default to zero (documented
    /// collector behaviour — the standard template always carries them).
    pub fn decode_record(&self, buf: &mut impl Buf) -> Result<FlowRecord, FlowError> {
        let need = self.record_len();
        if buf.remaining() < need {
            return Err(FlowError::Truncated {
                context: "data record",
                needed: need,
                available: buf.remaining(),
            });
        }
        let mut src = Ipv4Addr::UNSPECIFIED;
        let mut dst = Ipv4Addr::UNSPECIFIED;
        let (mut sport, mut dport) = (0u16, 0u16);
        let mut proto = Proto::Tcp;
        let mut flags = TcpFlags::NONE;
        let (mut packets, mut bytes) = (0u64, 0u64);
        let (mut first, mut last) = (0u32, 0u32);
        for f in &self.fields {
            match f.id {
                FIELD_IPV4_SRC_ADDR => src = Ipv4Addr::from(buf.get_u32()),
                FIELD_IPV4_DST_ADDR => dst = Ipv4Addr::from(buf.get_u32()),
                FIELD_L4_SRC_PORT => sport = buf.get_u16(),
                FIELD_L4_DST_PORT => dport = buf.get_u16(),
                FIELD_PROTOCOL => {
                    let n = buf.get_u8();
                    proto = Proto::from_number(n).unwrap_or(Proto::Tcp);
                }
                FIELD_TCP_FLAGS => flags = TcpFlags(buf.get_u8()),
                FIELD_IN_PKTS => packets = get_uint(buf, f.len),
                FIELD_IN_BYTES => bytes = get_uint(buf, f.len),
                FIELD_FIRST_SWITCHED => first = buf.get_u32(),
                FIELD_LAST_SWITCHED => last = buf.get_u32(),
                _ => buf.advance(usize::from(f.len)),
            }
        }
        Ok(FlowRecord {
            key: FlowKey { src, dst, sport, dport, proto },
            packets,
            bytes,
            tcp_flags: flags,
            first: SimTime(u64::from(first)),
            last: SimTime(u64::from(last)),
        })
    }
}

/// An options template: scope fields describing *what* the options apply
/// to (we scope to the exporting system) plus the option fields
/// themselves. Used to announce the sampling configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OptionsTemplate {
    /// Template id (≥ 256, shares the data-template id space).
    pub id: u16,
    /// Scope fields (type, length); we emit a single System scope.
    pub scope_fields: Vec<TemplateField>,
    /// Option fields.
    pub option_fields: Vec<TemplateField>,
}

/// The sampling configuration carried in options data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SamplingOptions {
    /// 1-in-N denominator.
    pub interval: u32,
    /// 1 = deterministic/systematic, 2 = random.
    pub algorithm: u8,
}

impl OptionsTemplate {
    /// The workspace-standard sampling options template.
    pub fn sampling(id: u16) -> OptionsTemplate {
        OptionsTemplate {
            id,
            scope_fields: vec![TemplateField { id: SCOPE_SYSTEM, len: 4 }],
            option_fields: vec![
                TemplateField { id: FIELD_SAMPLING_INTERVAL, len: 4 },
                TemplateField { id: FIELD_SAMPLING_ALGORITHM, len: 1 },
            ],
        }
    }

    /// Bytes of one encoded options record.
    pub fn record_len(&self) -> usize {
        self.scope_fields
            .iter()
            .chain(&self.option_fields)
            .map(|f| usize::from(f.len))
            .sum()
    }

    /// Encode the template body, NetFlow v9 layout: id, scope length in
    /// *bytes*, options length in *bytes*, then the fields.
    pub fn encode_body_v9(&self, buf: &mut BytesMut) {
        buf.put_u16(self.id);
        buf.put_u16(self.scope_fields.len() as u16 * 4);
        buf.put_u16(self.option_fields.len() as u16 * 4);
        for f in self.scope_fields.iter().chain(&self.option_fields) {
            buf.put_u16(f.id);
            buf.put_u16(f.len);
        }
    }

    /// Parse a v9 options-template body.
    pub fn parse_body_v9(buf: &mut impl Buf) -> Result<OptionsTemplate, FlowError> {
        if buf.remaining() < 6 {
            return Err(FlowError::Truncated {
                context: "options template header",
                needed: 6,
                available: buf.remaining(),
            });
        }
        let id = buf.get_u16();
        let scope_bytes = usize::from(buf.get_u16());
        let option_bytes = usize::from(buf.get_u16());
        if scope_bytes % 4 != 0 || option_bytes % 4 != 0 {
            return Err(FlowError::UnsupportedField { field: 0, len: scope_bytes as u16 });
        }
        let total = scope_bytes / 4 + option_bytes / 4;
        if buf.remaining() < total * 4 {
            return Err(FlowError::Truncated {
                context: "options template fields",
                needed: total * 4,
                available: buf.remaining(),
            });
        }
        let mut fields = Vec::with_capacity(total);
        for _ in 0..total {
            fields.push(TemplateField { id: buf.get_u16(), len: buf.get_u16() });
        }
        let option_fields = fields.split_off(scope_bytes / 4);
        Ok(OptionsTemplate { id, scope_fields: fields, option_fields })
    }

    /// Encode the template body, IPFIX layout (RFC 7011 §3.4.2.2): id,
    /// total field count, scope field count, then scope fields followed
    /// by option fields.
    pub fn encode_body_ipfix(&self, buf: &mut BytesMut) {
        buf.put_u16(self.id);
        buf.put_u16((self.scope_fields.len() + self.option_fields.len()) as u16);
        buf.put_u16(self.scope_fields.len() as u16);
        for f in self.scope_fields.iter().chain(&self.option_fields) {
            buf.put_u16(f.id);
            buf.put_u16(f.len);
        }
    }

    /// Parse an IPFIX options-template body.
    pub fn parse_body_ipfix(buf: &mut impl Buf) -> Result<OptionsTemplate, FlowError> {
        if buf.remaining() < 6 {
            return Err(FlowError::Truncated {
                context: "options template header",
                needed: 6,
                available: buf.remaining(),
            });
        }
        let id = buf.get_u16();
        let total = usize::from(buf.get_u16());
        let scope_count = usize::from(buf.get_u16());
        if scope_count > total {
            return Err(FlowError::UnsupportedField { field: 0, len: scope_count as u16 });
        }
        if buf.remaining() < total * 4 {
            return Err(FlowError::Truncated {
                context: "options template fields",
                needed: total * 4,
                available: buf.remaining(),
            });
        }
        let mut fields = Vec::with_capacity(total);
        for _ in 0..total {
            fields.push(TemplateField { id: buf.get_u16(), len: buf.get_u16() });
        }
        let option_fields = fields.split_off(scope_count);
        Ok(OptionsTemplate { id, scope_fields: fields, option_fields })
    }

    /// Encode one sampling-options record under this template.
    pub fn encode_sampling(&self, source_id: u32, s: &SamplingOptions, buf: &mut BytesMut) {
        for f in self.scope_fields.iter().chain(&self.option_fields) {
            match f.id {
                SCOPE_SYSTEM => put_uint(buf, u64::from(source_id), f.len),
                FIELD_SAMPLING_INTERVAL => put_uint(buf, u64::from(s.interval), f.len),
                FIELD_SAMPLING_ALGORITHM => put_uint(buf, u64::from(s.algorithm), f.len),
                _ => buf.put_bytes(0, usize::from(f.len)),
            }
        }
    }

    /// Decode one sampling-options record; unknown fields are skipped.
    pub fn decode_sampling(&self, buf: &mut impl Buf) -> Result<SamplingOptions, FlowError> {
        let need = self.record_len();
        if buf.remaining() < need {
            return Err(FlowError::Truncated {
                context: "options record",
                needed: need,
                available: buf.remaining(),
            });
        }
        let mut out = SamplingOptions { interval: 1, algorithm: 1 };
        for f in self.scope_fields.iter().chain(&self.option_fields) {
            match f.id {
                FIELD_SAMPLING_INTERVAL => out.interval = get_uint(buf, f.len) as u32,
                FIELD_SAMPLING_ALGORITHM => out.algorithm = get_uint(buf, f.len) as u8,
                _ => buf.advance(usize::from(f.len)),
            }
        }
        Ok(out)
    }
}

/// Decode every record in a data-set body. Trailing bytes shorter than one
/// record are treated as the RFC-mandated 4-byte-alignment padding and
/// ignored.
pub fn decode_records(t: &Template, body: &mut impl Buf) -> Result<Vec<FlowRecord>, FlowError> {
    let rlen = t.record_len();
    let mut out = Vec::with_capacity(body.remaining() / rlen.max(1));
    while body.remaining() >= rlen && rlen > 0 {
        out.push(t.decode_record(body)?);
    }
    Ok(out)
}

fn put_uint(buf: &mut BytesMut, v: u64, len: u16) {
    match len {
        1 => buf.put_u8(v as u8),
        2 => buf.put_u16(v as u16),
        4 => buf.put_u32(v as u32),
        _ => buf.put_u64(v),
    }
}

fn get_uint(buf: &mut impl Buf, len: u16) -> u64 {
    match len {
        1 => u64::from(buf.get_u8()),
        2 => u64::from(buf.get_u16()),
        4 => u64::from(buf.get_u32()),
        _ => buf.get_u64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec() -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(100, 64, 1, 2),
                dst: Ipv4Addr::new(198, 18, 0, 9),
                sport: 50123,
                dport: 443,
                proto: Proto::Tcp,
            },
            packets: 12,
            bytes: 3456,
            tcp_flags: TcpFlags::ACK,
            first: SimTime(1000),
            last: SimTime(1010),
        }
    }

    #[test]
    fn standard_template_round_trip() {
        let t = Template::standard(256);
        t.validate().unwrap();
        let mut buf = BytesMut::new();
        t.encode_record(&rec(), &mut buf);
        assert_eq!(buf.len(), t.record_len());
        let decoded = t.decode_record(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, rec());
    }

    #[test]
    fn template_body_round_trip() {
        let t = Template::standard(300);
        let mut buf = BytesMut::new();
        t.encode_body(&mut buf);
        let parsed = Template::parse_body(&mut buf.freeze()).unwrap();
        assert_eq!(parsed, t);
    }

    #[test]
    fn narrow_counters_round_trip() {
        let mut t = Template::standard(256);
        for f in &mut t.fields {
            if f.id == FIELD_IN_PKTS || f.id == FIELD_IN_BYTES {
                f.len = 4;
            }
        }
        t.validate().unwrap();
        let mut buf = BytesMut::new();
        t.encode_record(&rec(), &mut buf);
        let decoded = t.decode_record(&mut buf.freeze()).unwrap();
        assert_eq!(decoded.packets, 12);
        assert_eq!(decoded.bytes, 3456);
    }

    #[test]
    fn unknown_fields_are_skipped() {
        let mut t = Template::standard(256);
        t.fields.push(TemplateField { id: 999, len: 6 }); // vendor junk
        t.validate().unwrap();
        let mut buf = BytesMut::new();
        t.encode_record(&rec(), &mut buf);
        assert_eq!(buf.len(), t.record_len());
        let decoded = t.decode_record(&mut buf.freeze()).unwrap();
        assert_eq!(decoded, rec());
    }

    #[test]
    fn validation_rejects_bad_templates() {
        assert_eq!(
            Template { id: 100, fields: vec![] }.validate(),
            Err(FlowError::ReservedTemplateId(100))
        );
        assert_eq!(
            Template { id: 256, fields: vec![] }.validate(),
            Err(FlowError::EmptyTemplate(256))
        );
        let bad = Template {
            id: 256,
            fields: vec![TemplateField { id: FIELD_IPV4_SRC_ADDR, len: 3 }],
        };
        assert!(matches!(bad.validate(), Err(FlowError::UnsupportedField { field: 8, len: 3 })));
    }

    #[test]
    fn truncated_record_detected() {
        let t = Template::standard(256);
        let mut buf = BytesMut::new();
        t.encode_record(&rec(), &mut buf);
        let mut short = buf.freeze().slice(0..10);
        assert!(matches!(t.decode_record(&mut short), Err(FlowError::Truncated { .. })));
    }

    #[test]
    fn truncated_template_detected() {
        let t = Template::standard(256);
        let mut buf = BytesMut::new();
        t.encode_body(&mut buf);
        let full = buf.freeze();
        let mut short = full.slice(0..3);
        assert!(Template::parse_body(&mut short).is_err());
        let mut short2 = full.slice(0..8);
        assert!(Template::parse_body(&mut short2).is_err());
    }

    #[test]
    fn udp_record_round_trips() {
        let mut r = rec();
        r.key.proto = Proto::Udp;
        r.tcp_flags = TcpFlags::NONE;
        let t = Template::standard(256);
        let mut buf = BytesMut::new();
        t.encode_record(&r, &mut buf);
        assert_eq!(t.decode_record(&mut buf.freeze()).unwrap(), r);
    }
}
