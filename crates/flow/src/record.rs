//! The flow record — what a vantage point exports and the detector
//! consumes.

use crate::key::FlowKey;
use crate::packet::Packet;
use crate::tcp_flags::TcpFlags;
use haystack_net::SimTime;
use std::fmt;

/// One (unidirectional) flow record, as carried in a NetFlow v9 or IPFIX
/// data set.
///
/// Under packet sampling, `packets`/`bytes` count the **sampled** packets
/// only, as real sampled NetFlow does; consumers that need volume
/// estimates multiply by the sampling rate. The detector deliberately does
/// not re-inflate: its thresholds (e.g. the §7.1 usage threshold of 10
/// packets/hour) are defined on sampled counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The 5-tuple.
    pub key: FlowKey,
    /// Sampled packet count.
    pub packets: u64,
    /// Sampled byte count.
    pub bytes: u64,
    /// Cumulative OR of the TCP flags of the sampled packets.
    pub tcp_flags: TcpFlags,
    /// Timestamp of the first sampled packet.
    pub first: SimTime,
    /// Timestamp of the last sampled packet.
    pub last: SimTime,
}

impl FlowRecord {
    /// Start a record from its first sampled packet.
    pub fn from_packet(p: &Packet) -> FlowRecord {
        FlowRecord {
            key: p.key(),
            packets: 1,
            bytes: u64::from(p.bytes),
            tcp_flags: p.flags,
            first: p.ts,
            last: p.ts,
        }
    }

    /// Fold another sampled packet of the same flow into the record.
    pub fn absorb(&mut self, p: &Packet) {
        debug_assert_eq!(self.key, p.key());
        self.packets += 1;
        self.bytes += u64::from(p.bytes);
        self.tcp_flags |= p.flags;
        if p.ts < self.first {
            self.first = p.ts;
        }
        if p.ts > self.last {
            self.last = p.ts;
        }
    }

    /// §6.3 anti-spoofing predicate lifted to records: a TCP record whose
    /// cumulative flags carry no SYN/FIN/RST. UDP records pass trivially
    /// (the paper's filter applies to TCP traffic).
    pub fn is_established_evidence(&self) -> bool {
        self.tcp_flags.is_established_evidence()
    }
}

impl fmt::Display for FlowRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} pkts={} bytes={} flags={} [{} .. {}]",
            self.key, self.packets, self.bytes, self.tcp_flags, self.first, self.last
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_net::ports::Proto;
    use std::net::Ipv4Addr;

    fn pkt(ts: u64, bytes: u32, flags: TcpFlags) -> Packet {
        Packet {
            ts: SimTime(ts),
            src: Ipv4Addr::new(10, 0, 0, 1),
            dst: Ipv4Addr::new(198, 18, 0, 1),
            sport: 50000,
            dport: 443,
            proto: Proto::Tcp,
            bytes,
            flags,
        }
    }

    #[test]
    fn absorb_accumulates() {
        let mut r = FlowRecord::from_packet(&pkt(10, 100, TcpFlags::SYN));
        r.absorb(&pkt(12, 200, TcpFlags::ACK));
        r.absorb(&pkt(11, 50, TcpFlags::ACK | TcpFlags::PSH));
        assert_eq!(r.packets, 3);
        assert_eq!(r.bytes, 350);
        assert_eq!(r.first, SimTime(10));
        assert_eq!(r.last, SimTime(12));
        assert!(r.tcp_flags.contains(TcpFlags::SYN));
        assert!(!r.is_established_evidence());
    }

    #[test]
    fn pure_ack_record_is_established_evidence() {
        let mut r = FlowRecord::from_packet(&pkt(10, 100, TcpFlags::ACK));
        r.absorb(&pkt(11, 100, TcpFlags::ACK | TcpFlags::PSH));
        assert!(r.is_established_evidence());
    }
}
