//! The daemon's socket front-end: bounded admission with explicit shed
//! accounting, plus the two transports `haystack serve` listens on.
//!
//! Overload policy (DESIGN.md §13): the admission queue between the
//! sockets and the collector engine is *bounded*. When the engine falls
//! behind, the UDP path sheds — drops the datagram and counts it, per
//! source — because UDP gives no backpressure and an unbounded buffer
//! is just a slow OOM. The TCP replay path blocks instead: it exists
//! for tests and controlled replays, where losing a datagram to timing
//! would make "byte-identical after restart" unprovable. The invariant
//! the bench gate asserts: `received == admitted + shed`, always.
//!
//! TCP framing is trivial — a big-endian `u32` length then the datagram
//! bytes — because NetFlow/IPFIX datagrams are self-contained; the
//! stream just needs record boundaries.

use crate::collector::peek_source;
use bytes::Bytes;
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest frame the TCP replay path accepts. A NetFlow/IPFIX datagram
/// rides UDP in deployment, so nothing legitimate exceeds 64 KiB; a
/// larger length prefix is a corrupt or hostile stream.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// How long socket reads block before re-checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// Shared admission counters. All monotonic; `received` is every
/// datagram a listener pulled off a socket, and exactly one of
/// `admitted` / `shed` is bumped for each, so
/// `received == admitted + shed` holds at every instant.
#[derive(Debug, Default)]
pub struct AdmissionStats {
    received: AtomicU64,
    admitted: AtomicU64,
    shed: AtomicU64,
    shed_by_source: Mutex<HashMap<u32, u64>>,
}

impl AdmissionStats {
    /// Datagrams pulled off a socket (admitted or shed).
    pub fn received(&self) -> u64 {
        self.received.load(Ordering::Relaxed)
    }

    /// Datagrams handed to the engine.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Datagrams dropped because the queue was full (or the engine
    /// was gone).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Shed counts attributed to a source id (datagrams too short to
    /// carry one land under source 0), sorted by source id.
    pub fn shed_by_source(&self) -> Vec<(u32, u64)> {
        let map = self.shed_by_source.lock().expect("shed map poisoned");
        let mut out: Vec<(u32, u64)> = map.iter().map(|(k, v)| (*k, *v)).collect();
        out.sort_unstable_by_key(|(id, _)| *id);
        out
    }

    fn note_shed(&self, datagram: &[u8]) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        let source = peek_source(datagram).map_or(0, |(_, s)| s);
        let mut map = self.shed_by_source.lock().expect("shed map poisoned");
        *map.entry(source).or_insert(0) += 1;
    }
}

/// Producer side of the bounded admission queue. Clone freely — every
/// listener thread holds one.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    tx: SyncSender<Bytes>,
    stats: Arc<AdmissionStats>,
}

impl AdmissionQueue {
    /// A queue holding at most `capacity` in-flight datagrams. Returns
    /// the producer handle, the engine's receive side, and the shared
    /// counters.
    pub fn bounded(capacity: usize) -> (AdmissionQueue, Receiver<Bytes>, Arc<AdmissionStats>) {
        assert!(capacity > 0, "admission queue capacity must be positive");
        let (tx, rx) = std::sync::mpsc::sync_channel(capacity);
        let stats = Arc::new(AdmissionStats::default());
        (AdmissionQueue { tx, stats: Arc::clone(&stats) }, rx, stats)
    }

    /// Non-blocking admission — the UDP path. Returns `false` (and
    /// counts a shed) when the queue is full or the engine is gone.
    pub fn offer(&self, datagram: Bytes) -> bool {
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        match self.tx.try_send(datagram) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(TrySendError::Full(d)) | Err(TrySendError::Disconnected(d)) => {
                self.stats.note_shed(&d);
                false
            }
        }
    }

    /// Blocking admission — the lossless TCP replay path. Backpressures
    /// the sender instead of shedding; returns `false` only when the
    /// engine has shut down (counted as a shed to keep the invariant).
    pub fn push(&self, datagram: Bytes) -> bool {
        self.stats.received.fetch_add(1, Ordering::Relaxed);
        match self.tx.send(datagram) {
            Ok(()) => {
                self.stats.admitted.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                self.stats.note_shed(&e.0);
                false
            }
        }
    }

    /// The shared counters.
    pub fn stats(&self) -> Arc<AdmissionStats> {
        Arc::clone(&self.stats)
    }
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, datagram: &[u8]) -> io::Result<()> {
    assert!(datagram.len() <= MAX_FRAME_LEN, "datagram exceeds frame bound");
    w.write_all(&(datagram.len() as u32).to_be_bytes())?;
    w.write_all(datagram)
}

/// Incremental frame reader over a possibly-timeout-interrupted stream.
/// A read timeout surfaces as `WouldBlock`/`TimedOut` with all partial
/// bytes retained, so callers can poll a shutdown flag and resume
/// without losing framing.
#[derive(Debug)]
pub struct FrameReader<R: Read> {
    inner: R,
    buf: Vec<u8>,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a stream.
    pub fn new(inner: R) -> FrameReader<R> {
        FrameReader { inner, buf: Vec::new() }
    }

    /// The next complete frame, `Ok(None)` on clean EOF at a frame
    /// boundary. EOF mid-frame is `UnexpectedEof`; an implausible
    /// length prefix is `InvalidData`.
    pub fn next_frame(&mut self) -> io::Result<Option<Bytes>> {
        loop {
            if self.buf.len() >= 4 {
                let len = u32::from_be_bytes(self.buf[..4].try_into().unwrap()) as usize;
                if len > MAX_FRAME_LEN {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("frame length {len} exceeds bound {MAX_FRAME_LEN}"),
                    ));
                }
                if self.buf.len() >= 4 + len {
                    let frame = Bytes::from(&self.buf[4..4 + len]);
                    self.buf.drain(..4 + len);
                    return Ok(Some(frame));
                }
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    return if self.buf.is_empty() {
                        Ok(None)
                    } else {
                        Err(io::Error::new(
                            io::ErrorKind::UnexpectedEof,
                            "stream ended mid-frame",
                        ))
                    };
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(e),
            }
        }
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

/// Run a UDP listener until `shutdown` is set: each datagram is offered
/// to the queue, shedding (with accounting) when the engine is behind.
pub fn spawn_udp_listener(
    socket: UdpSocket,
    queue: AdmissionQueue,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    socket.set_read_timeout(Some(POLL_INTERVAL)).expect("udp read timeout");
    std::thread::Builder::new()
        .name("hay-udp".into())
        .spawn(move || {
            let mut buf = [0u8; MAX_FRAME_LEN];
            while !shutdown.load(Ordering::Relaxed) {
                match socket.recv_from(&mut buf) {
                    Ok((n, _)) => {
                        queue.offer(Bytes::from(&buf[..n]));
                    }
                    Err(e) if is_timeout(&e) => {}
                    Err(_) => break,
                }
            }
        })
        .expect("spawn udp listener")
}

/// Run a TCP accept loop until `shutdown` is set. Each connection gets
/// its own handler thread reading length-prefixed frames and pushing
/// them losslessly (blocking on backpressure). Handler threads are
/// joined before the accept thread exits.
pub fn spawn_tcp_listener(
    listener: TcpListener,
    queue: AdmissionQueue,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    listener.set_nonblocking(true).expect("tcp nonblocking");
    std::thread::Builder::new()
        .name("hay-tcp".into())
        .spawn(move || {
            let mut handlers: Vec<JoinHandle<()>> = Vec::new();
            while !shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let q = queue.clone();
                        let stop = Arc::clone(&shutdown);
                        let h = std::thread::Builder::new()
                            .name("hay-tcp-conn".into())
                            .spawn(move || handle_tcp_conn(stream, q, stop))
                            .expect("spawn tcp handler");
                        handlers.push(h);
                    }
                    Err(e) if is_timeout(&e) => std::thread::sleep(POLL_INTERVAL),
                    Err(_) => break,
                }
            }
            for h in handlers {
                let _ = h.join();
            }
        })
        .expect("spawn tcp listener")
}

fn handle_tcp_conn(stream: TcpStream, queue: AdmissionQueue, shutdown: Arc<AtomicBool>) {
    stream.set_read_timeout(Some(POLL_INTERVAL)).expect("tcp read timeout");
    let mut frames = FrameReader::new(stream);
    while !shutdown.load(Ordering::Relaxed) {
        match frames.next_frame() {
            Ok(Some(datagram)) => {
                if !queue.push(datagram) {
                    break;
                }
            }
            Ok(None) => break,
            Err(e) if is_timeout(&e) => {}
            Err(_) => break,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use std::net::{Ipv4Addr, SocketAddr};

    /// A minimal v9 header carrying `source` in its source-id word.
    fn v9_stub(source: u32) -> Bytes {
        let mut b = Vec::new();
        b.extend_from_slice(&9u16.to_be_bytes());
        b.extend_from_slice(&0u16.to_be_bytes());
        b.extend_from_slice(&[0u8; 12]);
        b.extend_from_slice(&source.to_be_bytes());
        Bytes::from(b)
    }

    #[test]
    fn offer_sheds_at_capacity_with_source_attribution() {
        let (q, rx, stats) = AdmissionQueue::bounded(2);
        assert!(q.offer(v9_stub(7)));
        assert!(q.offer(v9_stub(7)));
        // Queue full: the next two shed, attributed to their sources.
        assert!(!q.offer(v9_stub(7)));
        assert!(!q.offer(v9_stub(8)));
        // Too short to peek a source: attributed to source 0.
        assert!(!q.offer(Bytes::from_static(&[0, 9])));
        assert_eq!(stats.received(), 5);
        assert_eq!(stats.admitted(), 2);
        assert_eq!(stats.shed(), 3);
        assert_eq!(stats.received(), stats.admitted() + stats.shed());
        assert_eq!(stats.shed_by_source(), vec![(0, 1), (7, 1), (8, 1)]);
        // Draining frees capacity; admission resumes.
        rx.recv().unwrap();
        assert!(q.offer(v9_stub(9)));
    }

    #[test]
    fn push_blocks_instead_of_shedding() {
        let (q, rx, stats) = AdmissionQueue::bounded(1);
        assert!(q.push(v9_stub(1)));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.push(v9_stub(2)));
        // The push above blocks until we drain one slot.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(stats.admitted(), 1, "second push must still be waiting");
        rx.recv().unwrap();
        assert!(h.join().unwrap());
        assert_eq!(stats.admitted(), 2);
        assert_eq!(stats.shed(), 0);
        // Receiver gone: push fails and is accounted as shed.
        drop(rx);
        assert!(!q.push(v9_stub(3)));
        assert_eq!(stats.received(), stats.admitted() + stats.shed());
    }

    #[test]
    fn frame_codec_round_trips() {
        let mut wire = Vec::new();
        let frames = [v9_stub(1), Bytes::from_static(b""), v9_stub(u32::MAX)];
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut r = FrameReader::new(Cursor::new(wire));
        for f in &frames {
            assert_eq!(r.next_frame().unwrap().as_deref(), Some(f.as_ref()));
        }
        assert_eq!(r.next_frame().unwrap(), None);
    }

    #[test]
    fn frame_reader_rejects_midstream_eof_and_huge_lengths() {
        let mut wire = Vec::new();
        write_frame(&mut wire, &v9_stub(5)).unwrap();
        let mut r = FrameReader::new(Cursor::new(wire[..wire.len() - 3].to_vec()));
        assert_eq!(r.next_frame().unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        let huge = ((MAX_FRAME_LEN + 1) as u32).to_be_bytes().to_vec();
        let mut r = FrameReader::new(Cursor::new(huge));
        assert_eq!(r.next_frame().unwrap_err().kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn udp_listener_delivers_datagrams() {
        let socket = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr: SocketAddr = socket.local_addr().unwrap();
        let (q, rx, stats) = AdmissionQueue::bounded(64);
        let shutdown = Arc::new(AtomicBool::new(false));
        let h = spawn_udp_listener(socket, q, Arc::clone(&shutdown));
        let sender = UdpSocket::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        for _ in 0..3 {
            sender.send_to(&v9_stub(4), addr).unwrap();
        }
        for _ in 0..3 {
            let d = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(d, v9_stub(4));
        }
        assert_eq!(stats.admitted(), 3);
        shutdown.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }

    #[test]
    fn tcp_listener_is_lossless_under_backpressure() {
        let listener = TcpListener::bind((Ipv4Addr::LOCALHOST, 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        // Tiny queue: the writer must be backpressured, never shed.
        let (q, rx, stats) = AdmissionQueue::bounded(2);
        let shutdown = Arc::new(AtomicBool::new(false));
        let h = spawn_tcp_listener(listener, q, Arc::clone(&shutdown));
        let total = 50u32;
        let writer = std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            for i in 0..total {
                write_frame(&mut stream, &v9_stub(i)).unwrap();
            }
        });
        let mut got = Vec::new();
        for _ in 0..total {
            got.push(rx.recv_timeout(Duration::from_secs(10)).unwrap());
        }
        writer.join().unwrap();
        let want: Vec<Bytes> = (0..total).map(v9_stub).collect();
        assert_eq!(got, want, "tcp path must preserve order and lose nothing");
        assert_eq!(stats.shed(), 0);
        assert_eq!(stats.admitted(), u64::from(total));
        shutdown.store(true, Ordering::Relaxed);
        h.join().unwrap();
    }
}
