//! Errors for the flow pipeline and the wire codecs.

use std::fmt;

/// Errors produced while encoding or decoding NetFlow v9 / IPFIX messages,
/// or by pipeline misconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowError {
    /// Message shorter than its own header or declared length.
    Truncated {
        /// What was being decoded.
        context: &'static str,
        /// Bytes needed.
        needed: usize,
        /// Bytes available.
        available: usize,
    },
    /// Version field was not 9 (NetFlow) / 10 (IPFIX).
    BadVersion {
        /// Expected protocol version.
        expected: u16,
        /// Version found on the wire.
        found: u16,
    },
    /// A data set referenced a template the collector has not seen.
    UnknownTemplate {
        /// Exporter observation domain / source id.
        source_id: u32,
        /// The unknown template id.
        template_id: u16,
    },
    /// A template declared an unsupported field type or length.
    UnsupportedField {
        /// IANA information-element / field-type id.
        field: u16,
        /// Declared length.
        len: u16,
    },
    /// A template id outside the data range (`< 256`) was used for data.
    ReservedTemplateId(u16),
    /// Set/flowset length field was inconsistent (too short, not covering
    /// its own header, or overrunning the message).
    BadSetLength {
        /// Declared length.
        declared: u16,
        /// Remaining bytes in the message.
        remaining: usize,
    },
    /// A template with zero fields was declared.
    EmptyTemplate(u16),
    /// A sampler was configured with an invalid rate.
    BadSamplingRate(u64),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Truncated { context, needed, available } => {
                write!(f, "truncated {context}: need {needed} bytes, have {available}")
            }
            FlowError::BadVersion { expected, found } => {
                write!(f, "bad version: expected {expected}, found {found}")
            }
            FlowError::UnknownTemplate { source_id, template_id } => {
                write!(f, "data set references unknown template {template_id} (source {source_id})")
            }
            FlowError::UnsupportedField { field, len } => {
                write!(f, "unsupported field type {field} with length {len}")
            }
            FlowError::ReservedTemplateId(id) => {
                write!(f, "template id {id} is in the reserved range (< 256)")
            }
            FlowError::BadSetLength { declared, remaining } => {
                write!(f, "bad set length {declared} with {remaining} bytes remaining")
            }
            FlowError::EmptyTemplate(id) => write!(f, "template {id} declares zero fields"),
            FlowError::BadSamplingRate(n) => write!(f, "invalid sampling rate 1/{n}"),
        }
    }
}

impl std::error::Error for FlowError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_descriptive() {
        let e = FlowError::UnknownTemplate { source_id: 7, template_id: 300 };
        assert!(e.to_string().contains("unknown template 300"));
        assert!(FlowError::BadSamplingRate(0).to_string().contains("1/0"));
    }
}
