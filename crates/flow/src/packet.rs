//! The simulated packet event.
//!
//! This is the unit the testbed traffic generator emits and the unit the
//! vantage-point samplers operate on. Only header fields are modelled —
//! the paper's whole point is that detection *"does not rely on payload"*
//! (§1), so the simulation never materializes one.

use crate::key::FlowKey;
use crate::tcp_flags::TcpFlags;
use haystack_net::ports::Proto;
use haystack_net::SimTime;
use std::net::Ipv4Addr;

/// One packet as seen at a capture point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Capture timestamp.
    pub ts: SimTime,
    /// Source address.
    pub src: Ipv4Addr,
    /// Destination address.
    pub dst: Ipv4Addr,
    /// Source port.
    pub sport: u16,
    /// Destination port.
    pub dport: u16,
    /// Transport protocol.
    pub proto: Proto,
    /// IP-layer length in bytes.
    pub bytes: u32,
    /// TCP flags (`TcpFlags::NONE` for UDP).
    pub flags: TcpFlags,
}

impl Packet {
    /// The packet's flow key.
    pub fn key(&self) -> FlowKey {
        FlowKey {
            src: self.src,
            dst: self.dst,
            sport: self.sport,
            dport: self.dport,
            proto: self.proto,
        }
    }

    /// Convenience constructor for a client→server data packet.
    pub fn data(
        ts: SimTime,
        src: Ipv4Addr,
        dst: Ipv4Addr,
        sport: u16,
        dport: u16,
        proto: Proto,
        bytes: u32,
    ) -> Packet {
        let flags = match proto {
            Proto::Tcp => TcpFlags::ACK,
            Proto::Udp => TcpFlags::NONE,
        };
        Packet { ts, src, dst, sport, dport, proto, bytes, flags }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_extraction() {
        let p = Packet::data(
            SimTime(5),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(198, 18, 0, 1),
            49152,
            443,
            Proto::Tcp,
            120,
        );
        let k = p.key();
        assert_eq!(k.dport, 443);
        assert_eq!(p.flags, TcpFlags::ACK);
    }

    #[test]
    fn udp_data_has_no_flags() {
        let p = Packet::data(
            SimTime(5),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(198, 18, 0, 2),
            49152,
            123,
            Proto::Udp,
            76,
        );
        assert_eq!(p.flags, TcpFlags::NONE);
    }
}
