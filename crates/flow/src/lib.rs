//! # haystack-flow
//!
//! The flow-measurement substrate: everything between a raw packet at a
//! border router and a decoded flow record at the collector.
//!
//! The paper's two vantage points differ only in parameters, not in kind:
//!
//! * the **ISP** exports **NetFlow v9** [RFC 3954] from all border routers
//!   at a consistent packet-sampling rate (§2.1, Figure 3);
//! * the **IXP** exports **IPFIX** [RFC 7011] from its switching fabric at
//!   a rate *an order of magnitude lower* (§2.1, Figure 4).
//!
//! Pipeline stages provided here:
//!
//! 1. [`packet`] — the simulated packet event (header fields only; the
//!    vantage points never see payload).
//! 2. [`sampling`] — systematic and uniform packet samplers, plus the
//!    Binomial flow-thinning used by the population-scale simulation
//!    (statistically equivalent to per-packet sampling; see DESIGN.md §5.1
//!    and the `sampling_equivalence` bench).
//! 3. [`cache`] — the router's flow cache: aggregates sampled packets into
//!    flow records with active/inactive timeout expiry.
//! 4. [`netflow_v9`] / [`ipfix`] — wire codecs: template + data sets,
//!    encode and decode, with the template-before-data statefulness real
//!    collectors must handle.
//! 5. [`export`] / [`collector`] — the exporter that batches records into
//!    datagram-sized messages and the collector that reassembles them.
//!
//! The codecs are exercised end-to-end by the testbed pipeline (packets →
//! cache → export → collect → detect) and round-trip-tested with proptest.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod collector;
pub mod error;
pub mod export;
pub mod ipfix;
pub mod key;
pub mod listener;
pub mod netflow_v5;
pub mod netflow_v9;
pub mod packet;
pub mod record;
pub mod sampling;
pub mod tcp_flags;
pub mod wire;

pub use cache::{FlowCache, FlowCacheConfig};
pub use chaos::{ChaosConfig, ChaosLink, ChaosStats};
pub use collector::{Collector, SourceHealth, SourceStats};
pub use error::FlowError;
pub use export::Exporter;
pub use key::FlowKey;
pub use listener::{AdmissionQueue, AdmissionStats};
pub use packet::Packet;
pub use record::FlowRecord;
pub use sampling::{binomial_thin, PacketSampler, RandomSampler, SystematicSampler};
pub use tcp_flags::TcpFlags;
