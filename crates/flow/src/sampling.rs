//! Packet sampling.
//!
//! Both vantage points sample: the ISP "uses NetFlow to monitor the traffic
//! flows at all border routers … using a consistent sampling rate across
//! all routers" and the IXP samples "at a consistent sampling rate, which
//! is an order of magnitude lower" (§2.1). Everything the paper measures —
//! the 16 % service-IP visibility, the detection-time curves, the 10-packet
//! usage threshold — is downstream of these samplers.
//!
//! Two per-packet samplers are provided (systematic count-based, as Cisco
//! routers implement, and uniform random), plus [`binomial_thin`], the
//! flow-level equivalent used by the population-scale simulation: for a
//! flow of `n` packets each kept independently with probability `p`, the
//! number of sampled packets is `Binomial(n, p)`. The `sampling_equivalence`
//! bench and property tests verify the per-packet and flow-level paths
//! agree in distribution.

use crate::error::FlowError;
use rand::Rng;

/// A per-packet sampling decision process.
pub trait PacketSampler {
    /// Decide whether the next packet is sampled.
    fn sample(&mut self) -> bool;

    /// The configured rate denominator `N` (one packet in `N`).
    fn rate(&self) -> u64;
}

/// Deterministic 1-in-N systematic (count-based) sampler with a random
/// initial phase, matching `ip flow sampling-mode packet-interval N`.
#[derive(Debug, Clone)]
pub struct SystematicSampler {
    n: u64,
    counter: u64,
}

impl SystematicSampler {
    /// Create a sampler selecting one packet in `n`, with the given phase
    /// offset (`0 <= phase < n`; real routers randomize this at startup).
    pub fn new(n: u64, phase: u64) -> Result<Self, FlowError> {
        if n == 0 {
            return Err(FlowError::BadSamplingRate(n));
        }
        Ok(SystematicSampler { n, counter: phase % n })
    }

    /// Sampler that keeps every packet (rate 1/1), used by the Home-VP
    /// full-capture point.
    pub fn keep_all() -> Self {
        SystematicSampler { n: 1, counter: 0 }
    }
}

impl PacketSampler for SystematicSampler {
    fn sample(&mut self) -> bool {
        self.counter += 1;
        if self.counter >= self.n {
            self.counter = 0;
            true
        } else {
            false
        }
    }

    fn rate(&self) -> u64 {
        self.n
    }
}

/// IID uniform sampler: each packet kept with probability `1/n`.
#[derive(Debug, Clone)]
pub struct RandomSampler<R: Rng> {
    n: u64,
    rng: R,
}

impl<R: Rng> RandomSampler<R> {
    /// Create a sampler keeping each packet with probability `1/n`.
    pub fn new(n: u64, rng: R) -> Result<Self, FlowError> {
        if n == 0 {
            return Err(FlowError::BadSamplingRate(n));
        }
        Ok(RandomSampler { n, rng })
    }
}

impl<R: Rng> PacketSampler for RandomSampler<R> {
    fn sample(&mut self) -> bool {
        self.n == 1 || self.rng.gen_range(0..self.n) == 0
    }

    fn rate(&self) -> u64 {
        self.n
    }
}

/// Draw from `Binomial(n, p)` — the number of packets surviving uniform
/// 1-in-(1/p) sampling out of a flow of `n` packets.
///
/// Exact Bernoulli summation for small `n`; for large `n` a
/// normal-approximation draw (Box–Muller) with continuity correction,
/// clamped to `[0, n]`. At the simulation's operating point
/// (`p ≈ 1e-3 … 1e-4`, `n` up to a few hundred thousand) the approximation
/// error is far below the run-to-run variance of the experiments.
pub fn binomial_thin<R: Rng>(n: u64, p: f64, rng: &mut R) -> u64 {
    debug_assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
    if n == 0 || p <= 0.0 {
        return 0;
    }
    if p >= 1.0 {
        return n;
    }
    let mean = n as f64 * p;
    if n <= 64 {
        // Exact.
        return (0..n).filter(|_| rng.gen::<f64>() < p).count() as u64;
    }
    if mean < 32.0 {
        // Poisson-limit regime: inversion by sequential search is exact for
        // Poisson and an excellent Binomial approximation when p is tiny.
        let l = (-mean).exp();
        let mut k = 0u64;
        let mut prod = rng.gen::<f64>();
        while prod > l && k < n {
            k += 1;
            prod *= rng.gen::<f64>();
        }
        return k.min(n);
    }
    // Normal approximation.
    let sd = (n as f64 * p * (1.0 - p)).sqrt();
    let u1: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    let draw = (mean + sd * z + 0.5).floor();
    draw.clamp(0.0, n as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn zero_rate_rejected() {
        assert!(SystematicSampler::new(0, 0).is_err());
        assert!(RandomSampler::new(0, SmallRng::seed_from_u64(1)).is_err());
    }

    #[test]
    fn systematic_exact_fraction() {
        let mut s = SystematicSampler::new(100, 17).unwrap();
        let kept = (0..10_000).filter(|_| s.sample()).count();
        assert_eq!(kept, 100);
        assert_eq!(s.rate(), 100);
    }

    #[test]
    fn keep_all_keeps_all() {
        let mut s = SystematicSampler::keep_all();
        assert!((0..100).all(|_| s.sample()));
    }

    #[test]
    fn random_sampler_close_to_rate() {
        let mut s = RandomSampler::new(10, SmallRng::seed_from_u64(7)).unwrap();
        let kept = (0..100_000).filter(|_| s.sample()).count() as f64;
        let frac = kept / 100_000.0;
        assert!((0.09..0.11).contains(&frac), "fraction {frac}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(binomial_thin(0, 0.5, &mut rng), 0);
        assert_eq!(binomial_thin(100, 0.0, &mut rng), 0);
        assert_eq!(binomial_thin(100, 1.0, &mut rng), 100);
    }

    #[test]
    fn binomial_mean_tracks_np_small_n() {
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| binomial_thin(50, 0.1, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((4.5..5.5).contains(&mean), "mean {mean}, expected ~5");
    }

    #[test]
    fn binomial_mean_tracks_np_poisson_regime() {
        // n = 10_000, p = 1e-3 → mean 10: the ISP sampling operating point.
        let mut rng = SmallRng::seed_from_u64(13);
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| binomial_thin(10_000, 1e-3, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((9.5..10.5).contains(&mean), "mean {mean}, expected ~10");
    }

    #[test]
    fn binomial_mean_tracks_np_normal_regime() {
        let mut rng = SmallRng::seed_from_u64(17);
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| binomial_thin(1_000, 0.2, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((195.0..205.0).contains(&mean), "mean {mean}, expected ~200");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut rng = SmallRng::seed_from_u64(19);
        for _ in 0..5_000 {
            assert!(binomial_thin(80, 0.99, &mut rng) <= 80);
        }
    }

    #[test]
    fn poisson_regime_nonzero_probability_sane() {
        // P[X >= 1] for Binomial(100, 1e-3) ≈ 0.095. This is the per-hour
        // "is this laconic domain visible at the ISP" coin the whole paper
        // turns on, so pin it within loose bounds.
        let mut rng = SmallRng::seed_from_u64(23);
        let trials = 50_000;
        let nonzero = (0..trials).filter(|_| binomial_thin(100, 1e-3, &mut rng) >= 1).count();
        let frac = nonzero as f64 / trials as f64;
        assert!((0.085..0.105).contains(&frac), "P[X>=1] = {frac}, expected ~0.095");
    }
}
