//! NetFlow v9 wire codec (RFC 3954) — the ISP's export format (§2.1).
//!
//! Message layout:
//!
//! ```text
//! +--------+-------+------------+-----------+-----+-----------+
//! | ver=9  | count | sysUptime  | unixSecs  | seq | source id |  20-byte header
//! +--------+-------+------------+-----------+-----+-----------+
//! | flowset id | length | body ...                            |  repeated
//! +------------+--------+-------------------------------------+
//! ```
//!
//! Flowset id `0` carries templates, id `1` carries options templates
//! (parsed and skipped — the reproduction exports none), ids ≥ 256 carry
//! data described by a previously announced template. Decoding is
//! two-phase: this module splits a datagram into flowsets and parses
//! template flowsets eagerly, but leaves data flowsets as raw bytes for the
//! stateful [`Collector`](crate::collector::Collector), which owns the
//! template cache — exactly the statefulness a real collector needs
//! (templates may arrive in a different datagram than the data they
//! describe).

use crate::error::FlowError;
use crate::record::FlowRecord;
use crate::wire::{OptionsTemplate, SamplingOptions, Template};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// Protocol version constant.
pub const VERSION: u16 = 9;
/// Flowset id carrying templates.
pub const TEMPLATE_FLOWSET_ID: u16 = 0;
/// Flowset id carrying options templates (skipped on decode).
pub const OPTIONS_TEMPLATE_FLOWSET_ID: u16 = 1;

/// NetFlow v9 message header (minus version/count, which the codec owns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct V9Header {
    /// Router uptime in milliseconds. The simulation carries simulated
    /// seconds × 1000.
    pub sys_uptime_ms: u32,
    /// Export wall-clock seconds (simulated seconds since epoch).
    pub unix_secs: u32,
    /// Cumulative sequence number of exported flows.
    pub sequence: u32,
    /// Exporter source id (we use one id per border router).
    pub source_id: u32,
}

/// A parsed flowset: templates decoded, data left raw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlowSet {
    /// A template flowset's templates.
    Templates(Vec<Template>),
    /// An options-template flowset's templates (sampling announcements).
    OptionsTemplates(Vec<OptionsTemplate>),
    /// A data flowset: records for `template_id`, still encoded. The
    /// collector decides whether the id names a data or options template.
    Data {
        /// The describing template's id.
        template_id: u16,
        /// Raw record bytes (including any alignment padding).
        body: Bytes,
    },
}

/// A parsed NetFlow v9 message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Header fields.
    pub header: V9Header,
    /// Record count from the header (templates + data records).
    pub count: u16,
    /// Flowsets in order of appearance.
    pub flowsets: Vec<FlowSet>,
}

/// Encode one message containing the given templates followed by data
/// flowsets. `data` pairs each template with the records to encode under
/// it; callers pass an empty `templates` slice for data-only messages.
pub fn encode(
    header: &V9Header,
    templates: &[Template],
    data: &[(&Template, &[FlowRecord])],
) -> Result<Bytes, FlowError> {
    encode_full(header, templates, data, None)
}

/// Like [`encode`], additionally announcing the sampling configuration:
/// an options template plus one options record scoped to the exporting
/// system (how real routers tell collectors their 1-in-N rate).
pub fn encode_full(
    header: &V9Header,
    templates: &[Template],
    data: &[(&Template, &[FlowRecord])],
    sampling: Option<(&OptionsTemplate, SamplingOptions)>,
) -> Result<Bytes, FlowError> {
    for t in templates {
        t.validate()?;
    }
    for (t, _) in data {
        t.validate()?;
    }
    let record_count = templates.len()
        + data.iter().map(|(_, rs)| rs.len()).sum::<usize>()
        + if sampling.is_some() { 2 } else { 0 };
    let mut buf = BytesMut::with_capacity(1500);
    buf.put_u16(VERSION);
    buf.put_u16(record_count as u16);
    buf.put_u32(header.sys_uptime_ms);
    buf.put_u32(header.unix_secs);
    buf.put_u32(header.sequence);
    buf.put_u32(header.source_id);

    if !templates.is_empty() {
        let mut body = BytesMut::new();
        for t in templates {
            t.encode_body(&mut body);
        }
        put_set(&mut buf, TEMPLATE_FLOWSET_ID, &body);
    }
    if let Some((ot, opts)) = sampling {
        let mut body = BytesMut::new();
        ot.encode_body_v9(&mut body);
        put_set(&mut buf, OPTIONS_TEMPLATE_FLOWSET_ID, &body);
        let mut body = BytesMut::new();
        ot.encode_sampling(header.source_id, &opts, &mut body);
        put_set(&mut buf, ot.id, &body);
    }
    for (t, records) in data {
        if records.is_empty() {
            continue;
        }
        let mut body = BytesMut::with_capacity(t.record_len() * records.len());
        for r in *records {
            t.encode_record(r, &mut body);
        }
        put_set(&mut buf, t.id, &body);
    }
    Ok(buf.freeze())
}

/// Append one flowset with 4-byte alignment padding.
fn put_set(buf: &mut BytesMut, id: u16, body: &BytesMut) {
    let unpadded = 4 + body.len();
    let pad = (4 - unpadded % 4) % 4;
    buf.put_u16(id);
    buf.put_u16((unpadded + pad) as u16);
    buf.extend_from_slice(body);
    buf.put_bytes(0, pad);
}

/// Decode a datagram into a [`Message`].
pub fn decode(mut datagram: Bytes) -> Result<Message, FlowError> {
    if datagram.remaining() < 20 {
        return Err(FlowError::Truncated {
            context: "netflow v9 header",
            needed: 20,
            available: datagram.remaining(),
        });
    }
    let version = datagram.get_u16();
    if version != VERSION {
        return Err(FlowError::BadVersion { expected: VERSION, found: version });
    }
    let count = datagram.get_u16();
    let header = V9Header {
        sys_uptime_ms: datagram.get_u32(),
        unix_secs: datagram.get_u32(),
        sequence: datagram.get_u32(),
        source_id: datagram.get_u32(),
    };
    let mut flowsets = Vec::new();
    while datagram.remaining() >= 4 {
        let id = datagram.get_u16();
        let declared = datagram.get_u16();
        if declared < 4 || usize::from(declared) - 4 > datagram.remaining() {
            return Err(FlowError::BadSetLength { declared, remaining: datagram.remaining() });
        }
        let body = datagram.split_to(usize::from(declared) - 4);
        match id {
            TEMPLATE_FLOWSET_ID => {
                let mut b = body;
                let mut ts = Vec::new();
                while b.remaining() >= 4 {
                    ts.push(Template::parse_body(&mut b)?);
                }
                flowsets.push(FlowSet::Templates(ts));
            }
            OPTIONS_TEMPLATE_FLOWSET_ID => {
                let mut b = body;
                let mut ts = Vec::new();
                while b.remaining() >= 6 {
                    ts.push(OptionsTemplate::parse_body_v9(&mut b)?);
                }
                flowsets.push(FlowSet::OptionsTemplates(ts));
            }
            id if id >= 256 => flowsets.push(FlowSet::Data { template_id: id, body }),
            id => return Err(FlowError::ReservedTemplateId(id)),
        }
    }
    Ok(Message { header, count, flowsets })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::FlowKey;
    use crate::tcp_flags::TcpFlags;
    use crate::wire::decode_records;
    use haystack_net::ports::Proto;
    use haystack_net::SimTime;
    use std::net::Ipv4Addr;

    fn rec(i: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr::new(100, 64, 0, i),
                dst: Ipv4Addr::new(198, 18, 0, 1),
                sport: 40_000 + u16::from(i),
                dport: 443,
                proto: Proto::Tcp,
            },
            packets: u64::from(i) + 1,
            bytes: u64::from(i) * 100,
            tcp_flags: TcpFlags::ACK,
            first: SimTime(100),
            last: SimTime(160),
        }
    }

    fn header() -> V9Header {
        V9Header { sys_uptime_ms: 5000, unix_secs: 100, sequence: 42, source_id: 7 }
    }

    #[test]
    fn full_message_round_trip() {
        let t = Template::standard(256);
        let records: Vec<_> = (0..5).map(rec).collect();
        let wire = encode(&header(), std::slice::from_ref(&t), &[(&t, &records)]).unwrap();
        let msg = decode(wire).unwrap();
        assert_eq!(msg.header, header());
        assert_eq!(msg.count, 6); // 1 template + 5 data records
        assert_eq!(msg.flowsets.len(), 2);
        match &msg.flowsets[0] {
            FlowSet::Templates(ts) => assert_eq!(ts[0], t),
            other => panic!("expected templates, got {other:?}"),
        }
        match &msg.flowsets[1] {
            FlowSet::Data { template_id, body } => {
                assert_eq!(*template_id, 256);
                let mut b = body.clone();
                let decoded = decode_records(&t, &mut b).unwrap();
                assert_eq!(decoded, records);
            }
            other => panic!("expected data, got {other:?}"),
        }
    }

    #[test]
    fn data_only_message() {
        let t = Template::standard(300);
        let records: Vec<_> = (0..3).map(rec).collect();
        let wire = encode(&header(), &[], &[(&t, &records)]).unwrap();
        let msg = decode(wire).unwrap();
        assert_eq!(msg.count, 3);
        assert_eq!(msg.flowsets.len(), 1);
    }

    #[test]
    fn empty_data_flowsets_are_omitted() {
        let t = Template::standard(256);
        let wire = encode(&header(), std::slice::from_ref(&t), &[(&t, &[])]).unwrap();
        let msg = decode(wire).unwrap();
        assert_eq!(msg.flowsets.len(), 1, "only the template flowset");
    }

    #[test]
    fn wrong_version_rejected() {
        let t = Template::standard(256);
        let wire = encode(&header(), &[t], &[]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        tampered[0] = 0;
        tampered[1] = 5; // NetFlow v5
        assert_eq!(
            decode(tampered.freeze()),
            Err(FlowError::BadVersion { expected: 9, found: 5 })
        );
    }

    #[test]
    fn truncated_header_rejected() {
        assert!(matches!(
            decode(Bytes::from_static(&[0u8; 10])),
            Err(FlowError::Truncated { .. })
        ));
    }

    #[test]
    fn lying_set_length_rejected() {
        let t = Template::standard(256);
        let records = [rec(1)];
        let wire = encode(&header(), &[], &[(&t, &records[..])]).unwrap();
        let mut tampered = BytesMut::from(&wire[..]);
        // Flowset length field sits at offset 22; claim more than remains.
        tampered[22] = 0xFF;
        tampered[23] = 0xFF;
        assert!(matches!(decode(tampered.freeze()), Err(FlowError::BadSetLength { .. })));
    }

    #[test]
    fn alignment_padding_present() {
        let t = Template::standard(256); // record_len 38 → needs padding
        let records = [rec(1)];
        let wire = encode(&header(), &[], &[(&t, &records[..])]).unwrap();
        assert_eq!((wire.len() - 20) % 4, 0, "flowsets padded to 4 bytes");
    }

    #[test]
    fn reserved_data_flowset_id_rejected() {
        // Hand-craft a message with flowset id 5 (reserved, not options).
        let mut buf = BytesMut::new();
        buf.put_u16(VERSION);
        buf.put_u16(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u32(0);
        buf.put_u16(5);
        buf.put_u16(4);
        assert!(matches!(decode(buf.freeze()), Err(FlowError::ReservedTemplateId(5))));
    }
}
