//! The router's flow cache.
//!
//! Sampled packets are aggregated into flow records keyed by 5-tuple; a
//! record is emitted ("expired") when its flow has been idle longer than
//! the **inactive timeout**, has been open longer than the **active
//! timeout**, or when the cache is flushed. Defaults follow common NetFlow
//! deployments (15 s inactive / 60 s active at ISP border routers; we use
//! slightly coarser values tuned to the simulation's 1 s event
//! granularity).

use crate::key::FlowKey;
use crate::packet::Packet;
use crate::record::FlowRecord;
use haystack_net::SimTime;
use std::collections::HashMap;

/// Timeout configuration for a [`FlowCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowCacheConfig {
    /// Emit a flow whose last packet is older than this many seconds.
    pub inactive_timeout_secs: u64,
    /// Emit (and restart) a flow that has been open longer than this.
    pub active_timeout_secs: u64,
}

impl Default for FlowCacheConfig {
    fn default() -> Self {
        FlowCacheConfig { inactive_timeout_secs: 15, active_timeout_secs: 60 }
    }
}

/// A flow cache: 5-tuple → in-progress [`FlowRecord`].
#[derive(Debug)]
pub struct FlowCache {
    config: FlowCacheConfig,
    table: HashMap<FlowKey, FlowRecord>,
    /// Records expired but not yet drained by the caller.
    expired: Vec<FlowRecord>,
}

impl FlowCache {
    /// Create a cache with the given timeouts.
    pub fn new(config: FlowCacheConfig) -> Self {
        FlowCache { config, table: HashMap::new(), expired: Vec::new() }
    }

    /// Ingest one **already-sampled** packet (sampling happens upstream).
    pub fn on_packet(&mut self, p: &Packet) {
        match self.table.get_mut(&p.key()) {
            Some(rec) => {
                if p.ts.secs_since(rec.first) >= self.config.active_timeout_secs {
                    // Active timeout: emit and restart.
                    self.expired.push(*rec);
                    *rec = FlowRecord::from_packet(p);
                } else {
                    rec.absorb(p);
                }
            }
            None => {
                self.table.insert(p.key(), FlowRecord::from_packet(p));
            }
        }
    }

    /// Advance the clock: expire idle flows as of `now`.
    pub fn advance(&mut self, now: SimTime) {
        let inactive = self.config.inactive_timeout_secs;
        let expired = &mut self.expired;
        self.table.retain(|_, rec| {
            if now.secs_since(rec.last) >= inactive {
                expired.push(*rec);
                false
            } else {
                true
            }
        });
    }

    /// Emit everything still in the table (end of capture).
    pub fn flush(&mut self) {
        self.expired.extend(self.table.drain().map(|(_, r)| r));
    }

    /// Drain the emitted records, in canonical (first-seen, key) order.
    ///
    /// `advance` and `flush` walk the hash table, whose iteration order
    /// is per-instance random; sorting here makes replays call-stable —
    /// two caches fed the same packets drain identical sequences.
    pub fn drain_expired(&mut self) -> Vec<FlowRecord> {
        self.expired.sort_by_key(|r| (r.first, r.key));
        std::mem::take(&mut self.expired)
    }

    /// Number of in-progress flows.
    pub fn active_flows(&self) -> usize {
        self.table.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tcp_flags::TcpFlags;
    use haystack_net::ports::Proto;
    use std::net::Ipv4Addr;

    fn pkt(ts: u64, dport: u16) -> Packet {
        Packet::data(
            SimTime(ts),
            Ipv4Addr::new(10, 0, 0, 1),
            Ipv4Addr::new(198, 18, 0, 1),
            50000,
            dport,
            Proto::Tcp,
            100,
        )
    }

    #[test]
    fn aggregates_same_flow() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        c.on_packet(&pkt(0, 443));
        c.on_packet(&pkt(1, 443));
        c.on_packet(&pkt(2, 443));
        assert_eq!(c.active_flows(), 1);
        c.flush();
        let recs = c.drain_expired();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].packets, 3);
        assert_eq!(recs[0].bytes, 300);
    }

    #[test]
    fn separate_flows_for_different_keys() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        c.on_packet(&pkt(0, 443));
        c.on_packet(&pkt(0, 123));
        assert_eq!(c.active_flows(), 2);
    }

    #[test]
    fn inactive_timeout_expires() {
        let mut c = FlowCache::new(FlowCacheConfig { inactive_timeout_secs: 10, active_timeout_secs: 60 });
        c.on_packet(&pkt(0, 443));
        c.advance(SimTime(9));
        assert_eq!(c.active_flows(), 1);
        c.advance(SimTime(10));
        assert_eq!(c.active_flows(), 0);
        assert_eq!(c.drain_expired().len(), 1);
    }

    #[test]
    fn active_timeout_splits_long_flow() {
        let mut c = FlowCache::new(FlowCacheConfig { inactive_timeout_secs: 100, active_timeout_secs: 30 });
        for t in 0..90 {
            c.on_packet(&pkt(t, 443));
        }
        c.flush();
        let recs = c.drain_expired();
        // 90 s of continuous 1 pkt/s traffic with a 30 s active timeout
        // yields 3 records of 30 packets each.
        assert_eq!(recs.len(), 3);
        assert!(recs.iter().all(|r| r.packets == 30));
    }

    #[test]
    fn flags_accumulate_within_record() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        let mut syn = pkt(0, 443);
        syn.flags = TcpFlags::SYN;
        c.on_packet(&syn);
        c.on_packet(&pkt(1, 443));
        c.flush();
        let recs = c.drain_expired();
        assert!(recs[0].tcp_flags.contains(TcpFlags::SYN));
        assert!(recs[0].tcp_flags.contains(TcpFlags::ACK));
    }

    #[test]
    fn drain_is_destructive() {
        let mut c = FlowCache::new(FlowCacheConfig::default());
        c.on_packet(&pkt(0, 443));
        c.flush();
        assert_eq!(c.drain_expired().len(), 1);
        assert!(c.drain_expired().is_empty());
    }
}
