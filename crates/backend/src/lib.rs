//! # haystack-backend
//!
//! The synthetic Internet the IoT devices talk to. Figure 1 of the paper
//! distinguishes two backend shapes, and §4.2 adds a third:
//!
//! * **Dedicated infrastructure** — an operator's own servers; every
//!   service IP serves only that operator's domains (device type A/B).
//! * **Cloud VMs** — EC2-style: the operator rents VMs whose *public IPs
//!   are exclusive to the tenant while held* (§4.2.1's devA.com example);
//!   dedicated in effect, though the IP sits in the cloud AS.
//! * **CDN / shared hosting** — Akamai-style: tenant domains CNAME into
//!   the CDN's dispatch zone and resolve to edge IPs *shared across many
//!   unrelated tenants* (§4.2.1's devB.com example; device type C). These
//!   defeat IP-level attribution and are what §4.2.3 removes.
//!
//! [`UniverseBuilder`] assembles all three, emitting a coherent
//! [`BackendUniverse`]: authoritative DNS zones, an HTTPS scan snapshot,
//! an AS registry (clouds/CDNs register as such, feeding the §2.1
//! user/server classifier), and a hosting oracle used by tests and
//! calibration — never by the detector.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod universe;

pub use alloc::{AddressPlan, IpAllocator};
pub use universe::{BackendUniverse, Hosting, UniverseBuilder};
