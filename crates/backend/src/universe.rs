//! Assembling the synthetic server-side Internet.
//!
//! [`UniverseBuilder`] is the single place where DNS zones, scan records,
//! AS registrations, and hosting ground truth are kept mutually
//! consistent. Higher layers (the testbed catalog, the wild simulation)
//! only say *what* exists — "devA's API domain is dedicated, pool of 8,
//! hourly rotation"; "devB fronts through CDN `akadns`" — and the builder
//! materializes every observable consequence:
//!
//! * authoritative [`ZoneDb`] entries (pools, CNAME indirection);
//! * an HTTPS [`ScanDb`] snapshot (per-domain certs on dedicated/cloud
//!   IPs, multi-tenant SAN certs on CDN edges);
//! * [`AsRegistry`] entries (clouds and CDNs register with their category,
//!   which drives the §2.1 server-IP classification);
//! * the [`Hosting`] oracle recording where each domain *actually* lives —
//!   consumed by tests and EXPERIMENTS.md calibration, never by the
//!   detector.

use crate::alloc::{AddressPlan, IpAllocator};
use haystack_dns::zone::RotationPolicy;
use haystack_dns::{DomainName, DomainPattern, ZoneDb};
use haystack_net::{AsCategory, AsRegistry, Asn, Prefix4};
use haystack_scan::{Certificate, HostScan, HttpsBanner, ScanDb};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Where a domain is hosted — ground truth for tests and calibration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Hosting {
    /// The operator's own servers (dedicated service IPs).
    Dedicated {
        /// Operator name.
        operator: String,
    },
    /// A rented cloud VM with a tenant-exclusive public IP.
    CloudVm {
        /// Cloud provider name.
        provider: String,
        /// Tenant (operator) name.
        tenant: String,
    },
    /// CDN-fronted: shared edge IPs.
    Cdn {
        /// CDN name.
        provider: String,
    },
}

impl Hosting {
    /// Whether IP-level attribution is possible for this hosting shape
    /// (the §4.2 dedicated-vs-shared distinction).
    pub fn is_dedicated(&self) -> bool {
        !matches!(self, Hosting::Cdn { .. })
    }
}

/// The assembled server-side world.
#[derive(Debug)]
pub struct BackendUniverse {
    /// Authoritative DNS.
    pub zones: ZoneDb,
    /// HTTPS scan snapshot.
    pub scans: ScanDb,
    /// AS registry (server-side entries registered; eyeball ASes are added
    /// by the wild simulation before finalizing).
    pub as_registry: AsRegistry,
    hosting: HashMap<DomainName, Hosting>,
}

impl BackendUniverse {
    /// Hosting ground truth for a domain.
    pub fn hosting_of(&self, d: &DomainName) -> Option<&Hosting> {
        self.hosting.get(d)
    }

    /// Oracle: is the domain on infrastructure where its service IPs are
    /// exclusive to its SLD (directly or via a tenant-exclusive VM)?
    pub fn is_dedicated(&self, d: &DomainName) -> Option<bool> {
        self.hosting.get(d).map(Hosting::is_dedicated)
    }

    /// All hosted domains, sorted (deterministic iteration for reports).
    pub fn domains(&self) -> Vec<&DomainName> {
        let mut v: Vec<_> = self.hosting.keys().collect();
        v.sort();
        v
    }

    /// Number of hosted domains.
    pub fn num_domains(&self) -> usize {
        self.hosting.len()
    }
}

struct OperatorState {
    ips: Vec<Ipv4Addr>,
    banner: HttpsBanner,
}

struct CloudState {
    zone_suffix: DomainName,
    alloc_block: IpAllocator,
    vm_count: u64,
    prefix: Prefix4,
}

struct CdnState {
    edges: Vec<Ipv4Addr>,
    zone_suffix: DomainName,
    tenants: Vec<DomainName>,
    active_per_name: usize,
    rotation_period_secs: u64,
    prefix: Prefix4,
}

/// Builder for [`BackendUniverse`]. See the module docs for the overall
/// contract; every `host_*` call returns the allocated service IPs so the
/// caller can wire traffic models to them if needed.
pub struct UniverseBuilder {
    zones: ZoneDb,
    hosting: HashMap<DomainName, Hosting>,
    dedicated_alloc: IpAllocator,
    generic_alloc: IpAllocator,
    cloud_block_alloc: u32,
    cdn_block_alloc: u32,
    operators: BTreeMap<String, OperatorState>,
    clouds: BTreeMap<String, CloudState>,
    cdns: BTreeMap<String, CdnState>,
    /// Deterministic serial for cert fingerprints.
    cert_serial: u64,
    /// (domain, cert, banner, ips) to insert into the scan snapshot at
    /// build time (dedicated + cloud; CDN edges are computed at build).
    pending_scans: Vec<(Certificate, HttpsBanner, Vec<Ipv4Addr>)>,
    next_asn: u32,
}

impl Default for UniverseBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl UniverseBuilder {
    /// Fresh builder over the standard [`AddressPlan`].
    pub fn new() -> Self {
        UniverseBuilder {
            zones: ZoneDb::new(),
            hosting: HashMap::new(),
            dedicated_alloc: IpAllocator::new(AddressPlan::dedicated()),
            generic_alloc: IpAllocator::new(AddressPlan::generic()),
            cloud_block_alloc: 0,
            cdn_block_alloc: 0,
            operators: BTreeMap::new(),
            clouds: BTreeMap::new(),
            cdns: BTreeMap::new(),
            cert_serial: 0,
            pending_scans: Vec::new(),
            next_asn: 64_600,
        }
    }

    fn next_serial(&mut self) -> u64 {
        self.cert_serial += 1;
        self.cert_serial
    }

    /// Register an IoT operator (manufacturer / platform) that runs its
    /// own dedicated backend.
    pub fn add_operator(&mut self, name: &str) {
        let banner = HttpsBanner::new(format!("{name}-backend"), name);
        self.operators.insert(name.to_string(), OperatorState { ips: Vec::new(), banner });
    }

    /// Register a cloud provider; VM IPs come from its own sub-block of
    /// the cloud superblock. `zone_suffix` is its infrastructure zone,
    /// e.g. `ec2compute.cloudnova.com`.
    pub fn add_cloud(&mut self, name: &str, zone_suffix: &str) {
        let prefix = AddressPlan::cloud()
            .subnet(14, self.cloud_block_alloc)
            .expect("cloud superblock exhausted");
        self.cloud_block_alloc += 1;
        self.clouds.insert(
            name.to_string(),
            CloudState {
                zone_suffix: DomainName::parse(zone_suffix).expect("valid cloud zone"),
                alloc_block: IpAllocator::new(prefix),
                vm_count: 0,
                prefix,
            },
        );
    }

    /// Register a CDN with `edge_count` shared edge addresses. Tenant
    /// dispatch names resolve to `active_per_name` of them, re-drawn every
    /// `rotation_period_secs`.
    pub fn add_cdn(
        &mut self,
        name: &str,
        zone_suffix: &str,
        edge_count: u32,
        active_per_name: usize,
        rotation_period_secs: u64,
    ) {
        let prefix = AddressPlan::cdn()
            .subnet(14, self.cdn_block_alloc)
            .expect("cdn superblock exhausted");
        self.cdn_block_alloc += 1;
        let mut alloc = IpAllocator::new(prefix);
        let edges = alloc.alloc_n(edge_count).expect("cdn block exhausted");
        self.cdns.insert(
            name.to_string(),
            CdnState {
                edges,
                zone_suffix: DomainName::parse(zone_suffix).expect("valid cdn zone"),
                tenants: Vec::new(),
                active_per_name,
                rotation_period_secs,
                prefix,
            },
        );
    }

    /// Host `domain` on `operator`'s dedicated infrastructure with a
    /// private pool of `pool_size` addresses, `active` of which are live
    /// at a time, rotating every `rotation_period_secs` (0 = stable).
    /// Returns the pool.
    pub fn host_dedicated(
        &mut self,
        operator: &str,
        domain: &DomainName,
        pool_size: u32,
        active: usize,
        rotation_period_secs: u64,
    ) -> Vec<Ipv4Addr> {
        let ips = self.dedicated_alloc.alloc_n(pool_size).expect("dedicated space exhausted");
        let serial = self.next_serial();
        let st = self.operators.get_mut(operator).expect("operator not registered");
        st.ips.extend(&ips);
        let banner = st.banner.clone();
        self.zones.insert_pool(
            domain.clone(),
            ips.clone(),
            RotationPolicy { active_count: active, period_secs: rotation_period_secs },
        );
        let cert = Certificate::new(
            vec![
                DomainPattern::Exact(domain.clone()),
                DomainPattern::parse(&format!("*.{}", domain.sld())).expect("valid pattern"),
            ],
            serial,
        );
        self.pending_scans.push((cert, banner, ips.clone()));
        self.hosting
            .insert(domain.clone(), Hosting::Dedicated { operator: operator.to_string() });
        ips
    }

    /// Host `domain` on a tenant-exclusive cloud VM (the paper's
    /// `devA.com → devA-VM.ec2compute…` pattern). Returns the VM's public
    /// IP.
    pub fn host_cloud_vm(&mut self, provider: &str, tenant: &str, domain: &DomainName) -> Ipv4Addr {
        let serial = self.next_serial();
        let cloud = self.clouds.get_mut(provider).expect("cloud not registered");
        let ip = cloud.alloc_block.alloc().expect("cloud block exhausted");
        cloud.vm_count += 1;
        let vm_label = format!(
            "{}-vm{}",
            domain.as_str().replace('.', "-"),
            cloud.vm_count
        );
        let vm_name = cloud.zone_suffix.child(&vm_label).expect("valid vm label");
        self.zones.insert_pool(vm_name.clone(), vec![ip], RotationPolicy::STABLE);
        self.zones.insert_cname(domain.clone(), vm_name);
        let cert = Certificate::new(
            vec![
                DomainPattern::Exact(domain.clone()),
                DomainPattern::parse(&format!("*.{}", domain.sld())).expect("valid pattern"),
            ],
            serial,
        );
        let banner = HttpsBanner::new(format!("{tenant}-cloud"), tenant);
        self.pending_scans.push((cert, banner, vec![ip]));
        self.hosting.insert(
            domain.clone(),
            Hosting::CloudVm { provider: provider.to_string(), tenant: tenant.to_string() },
        );
        ip
    }

    /// Front `domain` through a CDN: `domain` CNAMEs to a dispatch name in
    /// the CDN zone, which resolves to rotating shared edge IPs.
    pub fn host_cdn(&mut self, provider: &str, domain: &DomainName) {
        let cdn = self.cdns.get_mut(provider).expect("cdn not registered");
        let dispatch_label = domain.as_str().replace('.', "-");
        let dispatch = cdn.zone_suffix.child(&dispatch_label).expect("valid dispatch label");
        self.zones.insert_cname(domain.clone(), dispatch.clone());
        self.zones.insert_pool(
            dispatch,
            cdn.edges.clone(),
            RotationPolicy {
                active_count: cdn.active_per_name,
                period_secs: cdn.rotation_period_secs,
            },
        );
        cdn.tenants.push(domain.clone());
        self.hosting.insert(domain.clone(), Hosting::Cdn { provider: provider.to_string() });
    }

    /// Host a generic (non-IoT) service on its own pool in the generic
    /// superblock — `netflix.com`-alikes and public NTP servers. These
    /// are *dedicated* in the DNS sense but classified Generic at the
    /// domain level (§4.1), so they never become rules.
    pub fn host_generic(
        &mut self,
        domain: &DomainName,
        pool_size: u32,
        active: usize,
        rotation_period_secs: u64,
    ) -> Vec<Ipv4Addr> {
        let ips = self.generic_alloc.alloc_n(pool_size).expect("generic space exhausted");
        self.zones.insert_pool(
            domain.clone(),
            ips.clone(),
            RotationPolicy { active_count: active, period_secs: rotation_period_secs },
        );
        let serial = self.next_serial();
        let cert = Certificate::single(
            DomainPattern::parse(&format!("*.{}", domain.sld())).expect("valid pattern"),
            serial,
        );
        let banner = HttpsBanner::new("generic-web", domain.as_str());
        self.pending_scans.push((cert, banner, ips.clone()));
        self.hosting
            .insert(domain.clone(), Hosting::Dedicated { operator: "generic".to_string() });
        ips
    }

    /// Finalize: materialize the scan snapshot and AS registry.
    pub fn build(mut self) -> BackendUniverse {
        let mut scans = ScanDb::new();
        for (cert, banner, ips) in &self.pending_scans {
            for ip in ips {
                scans.insert(*ip, HostScan { cert: cert.clone(), banner: banner.clone(), port: 443 });
            }
        }
        // CDN edges present one multi-tenant SAN certificate per CDN —
        // the shape the §4.2.2 matcher must reject.
        for (name, cdn) in &self.cdns {
            let mut names: Vec<DomainPattern> = cdn
                .tenants
                .iter()
                .map(|t| DomainPattern::Exact(t.clone()))
                .collect();
            names.push(
                DomainPattern::parse(&format!("*.{}", cdn.zone_suffix)).expect("valid pattern"),
            );
            let serial = self.cert_serial + 1_000;
            let cert = Certificate::new(names, serial);
            let banner = HttpsBanner::new(format!("{name}-edge"), name);
            for ip in &cdn.edges {
                scans.insert(*ip, HostScan { cert: cert.clone(), banner: banner.clone(), port: 443 });
            }
        }

        let mut reg = AsRegistry::new();
        for (name, op) in &self.operators {
            let asn = Asn(self.next_asn);
            self.next_asn += 1;
            let prefixes = op
                .ips
                .iter()
                .map(|ip| Prefix4::new(*ip, 32).expect("/32 is valid"))
                .collect();
            reg.register(asn, name.clone(), AsCategory::Enterprise, prefixes);
        }
        for (name, cloud) in &self.clouds {
            let asn = Asn(self.next_asn);
            self.next_asn += 1;
            reg.register(asn, name.clone(), AsCategory::Cloud, vec![cloud.prefix]);
        }
        for (name, cdn) in &self.cdns {
            let asn = Asn(self.next_asn);
            self.next_asn += 1;
            reg.register(asn, name.clone(), AsCategory::Cdn, vec![cdn.prefix]);
        }
        reg.register(
            Asn(self.next_asn),
            "generic-web",
            AsCategory::Enterprise,
            vec![AddressPlan::generic()],
        );
        reg.finalize();

        BackendUniverse {
            zones: self.zones,
            scans,
            as_registry: reg,
            hosting: self.hosting,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haystack_dns::Resolver;
    use haystack_net::{SimTime, StudyWindow};

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn universe() -> BackendUniverse {
        let mut b = UniverseBuilder::new();
        b.add_operator("deva");
        b.add_cloud("cloudnova", "ec2compute.cloudnova.com");
        b.add_cdn("akadns", "akadns.net", 32, 4, 3_600);
        b.host_dedicated("deva", &d("api.deva.com"), 8, 4, 3_600);
        b.host_cloud_vm("cloudnova", "devx", &d("iot.devx.com"));
        b.host_cdn("akadns", &d("devb.com"));
        b.host_cdn("akadns", &d("anothersite.com"));
        b.host_generic(&d("videostream.tv"), 16, 8, 3_600);
        b.build()
    }

    #[test]
    fn dedicated_domain_resolves_within_its_pool() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let res = r.resolve(&d("api.deva.com"), SimTime(0)).unwrap();
        assert_eq!(res.ips.len(), 4);
        assert!(res.chain.is_empty());
        assert!(res.ips.iter().all(|ip| AddressPlan::dedicated().contains(*ip)));
    }

    #[test]
    fn cloud_vm_has_cname_and_exclusive_ip() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let res = r.resolve(&d("iot.devx.com"), SimTime(0)).unwrap();
        assert_eq!(res.chain.len(), 1);
        assert_eq!(res.ips.len(), 1);
        assert!(AddressPlan::cloud().contains(res.ips[0]));
        assert!(res.canonical.is_subdomain_of(&d("ec2compute.cloudnova.com")));
        // The cloud AS is registered with category Cloud.
        let info = u.as_registry.lookup(res.ips[0]).unwrap();
        assert_eq!(info.category, AsCategory::Cloud);
    }

    #[test]
    fn cdn_tenants_share_edges() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let full_b = r.full_pool(&d("devb.com")).unwrap();
        let full_other = r.full_pool(&d("anothersite.com")).unwrap();
        assert_eq!(full_b, full_other, "tenants share the same edge pool");
        assert!(full_b.iter().all(|ip| AddressPlan::cdn().contains(*ip)));
        let info = u.as_registry.lookup(full_b[0]).unwrap();
        assert_eq!(info.category, AsCategory::Cdn);
    }

    #[test]
    fn hosting_oracle() {
        let u = universe();
        assert!(u.is_dedicated(&d("api.deva.com")).unwrap());
        assert!(u.is_dedicated(&d("iot.devx.com")).unwrap());
        assert!(!u.is_dedicated(&d("devb.com")).unwrap());
        assert!(u.hosting_of(&d("nosuch.com")).is_none());
        assert_eq!(u.num_domains(), 5);
    }

    #[test]
    fn dedicated_scan_records_identify_the_domain() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let pool = r.full_pool(&d("api.deva.com")).unwrap();
        for ip in pool {
            assert!(u.scans.cert_at_ip_identifies(ip, &d("api.deva.com")));
        }
    }

    #[test]
    fn cdn_edge_cert_fails_match_criteria() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let edges = r.full_pool(&d("devb.com")).unwrap();
        // The SAN list spans tenants, so the §4.2.2 criteria reject it.
        assert!(!u.scans.cert_at_ip_identifies(edges[0], &d("devb.com")));
    }

    #[test]
    fn censys_expansion_recovers_cloud_pool() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let vm_ip = r.resolve(&d("iot.devx.com"), SimTime(0)).unwrap().ips[0];
        let expanded = u.scans.expand_domain(&d("iot.devx.com"), vm_ip).unwrap();
        assert_eq!(expanded.into_iter().collect::<Vec<_>>(), vec![vm_ip]);
    }

    #[test]
    fn operator_ips_register_as_enterprise() {
        let u = universe();
        let r = Resolver::new(&u.zones);
        let pool = r.full_pool(&d("api.deva.com")).unwrap();
        let info = u.as_registry.lookup(pool[0]).unwrap();
        assert_eq!(info.category, AsCategory::Enterprise);
        assert_eq!(info.name, "deva");
    }

    #[test]
    fn churn_visible_through_study_window() {
        // Over the idle window the rotating dedicated pool exposes more
        // IPs than any single resolution returns.
        let u = universe();
        let r = Resolver::new(&u.zones);
        let mut seen = std::collections::HashSet::new();
        for h in StudyWindow::FULL.hour_bins() {
            for ip in r.resolve(&d("api.deva.com"), h.start()).unwrap().ips {
                seen.insert(ip);
            }
        }
        assert!(seen.len() > 4, "rotation exposes more than one epoch's subset");
        assert!(seen.len() <= 8);
    }
}
