//! The simulation's address plan and block allocator.
//!
//! All synthetic addresses are carved out of disjoint superblocks, one per
//! infrastructure category, so that a glance at an address reveals its
//! role when debugging and — more importantly — so the subscriber space
//! can never collide with server space. The specific ranges are arbitrary
//! (this Internet is synthetic); disjointness is what matters, and a unit
//! test pins it.

use haystack_net::{NetError, Prefix4};
use std::net::Ipv4Addr;

/// The fixed superblocks of the synthetic Internet.
#[derive(Debug, Clone, Copy)]
pub struct AddressPlan;

impl AddressPlan {
    /// Subscriber lines of the studied ISP (≈4.2 M usable addresses; the
    /// population model maps lines to addresses, with churn re-mapping).
    pub fn subscribers() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(100, 64, 0, 0), 10).unwrap()
    }

    /// Subscriber lines of *other* eyeball ASes seen at the IXP.
    pub fn remote_eyeballs() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(27, 0, 0, 0), 8).unwrap()
    }

    /// Dedicated IoT-operator server space.
    pub fn dedicated() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(198, 18, 0, 0), 15).unwrap()
    }

    /// Cloud-provider space (VM public IPs).
    pub fn cloud() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(40, 0, 0, 0), 10).unwrap()
    }

    /// CDN edge space.
    pub fn cdn() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(23, 0, 0, 0), 10).unwrap()
    }

    /// Generic (non-IoT) service space: big web properties, NTP pool, DNS
    /// resolvers.
    pub fn generic() -> Prefix4 {
        Prefix4::new(Ipv4Addr::new(151, 64, 0, 0), 10).unwrap()
    }

    /// All superblocks (for the disjointness test).
    pub fn all() -> Vec<Prefix4> {
        vec![
            Self::subscribers(),
            Self::remote_eyeballs(),
            Self::dedicated(),
            Self::cloud(),
            Self::cdn(),
            Self::generic(),
        ]
    }
}

/// Sequentially carves sub-blocks and single addresses out of one
/// superblock.
#[derive(Debug, Clone)]
pub struct IpAllocator {
    block: Prefix4,
    next: u32,
}

impl IpAllocator {
    /// Allocator over `block`, starting at its first address.
    pub fn new(block: Prefix4) -> Self {
        IpAllocator { block, next: 0 }
    }

    /// Allocate the next single address.
    pub fn alloc(&mut self) -> Result<Ipv4Addr, NetError> {
        if self.next >= self.block.size() {
            return Err(NetError::InvalidPrefixLen(32)); // exhausted
        }
        let ip = self.block.nth(self.next);
        self.next += 1;
        Ok(ip)
    }

    /// Allocate `n` consecutive addresses.
    pub fn alloc_n(&mut self, n: u32) -> Result<Vec<Ipv4Addr>, NetError> {
        (0..n).map(|_| self.alloc()).collect()
    }

    /// Addresses handed out so far.
    pub fn allocated(&self) -> u32 {
        self.next
    }

    /// The superblock this allocator carves from.
    pub fn block(&self) -> Prefix4 {
        self.block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblocks_are_disjoint() {
        let blocks = AddressPlan::all();
        for (i, a) in blocks.iter().enumerate() {
            for b in blocks.iter().skip(i + 1) {
                assert!(!a.covers(b) && !b.covers(a), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn sequential_allocation() {
        let mut a = IpAllocator::new(Prefix4::new(Ipv4Addr::new(198, 18, 0, 0), 30).unwrap());
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 18, 0, 0));
        assert_eq!(a.alloc().unwrap(), Ipv4Addr::new(198, 18, 0, 1));
        assert_eq!(a.alloc_n(2).unwrap().len(), 2);
        assert_eq!(a.allocated(), 4);
        assert!(a.alloc().is_err(), "block of 4 exhausted");
    }
}
