//! Property tests over the backend universe: whatever mix of operators,
//! clouds, CDNs, and hostings a catalog requests, the materialized world
//! must keep its invariants — address-space discipline, resolvability,
//! cert consistency, and the dedicated/shared ground truth.

use haystack_backend::{AddressPlan, BackendUniverse, UniverseBuilder};
use haystack_dns::{DomainName, Resolver};
use haystack_net::SimTime;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum HostSpec {
    Dedicated { pool: u32, active: usize },
    CloudVm,
    Cdn,
}

fn arb_hosting() -> impl Strategy<Value = HostSpec> {
    prop_oneof![
        (1u32..12, 1usize..8).prop_map(|(pool, active)| HostSpec::Dedicated { pool, active }),
        Just(HostSpec::CloudVm),
        Just(HostSpec::Cdn),
    ]
}

fn build(specs: &[HostSpec]) -> (BackendUniverse, Vec<DomainName>) {
    let mut b = UniverseBuilder::new();
    b.add_cloud("cloudnova", "ec2compute.cloudnova.com");
    b.add_cdn("akadns", "akadns.net", 24, 4, 3_600);
    let mut names = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let name = DomainName::parse(&format!("d{i}.vendor{i}.com")).unwrap();
        match spec {
            HostSpec::Dedicated { pool, active } => {
                let op = format!("vendor{i}");
                b.add_operator(&op);
                b.host_dedicated(&op, &name, *pool, *active, 3_600);
            }
            HostSpec::CloudVm => {
                b.host_cloud_vm("cloudnova", &format!("vendor{i}"), &name);
            }
            HostSpec::Cdn => b.host_cdn("akadns", &name),
        }
        names.push(name);
    }
    (b.build(), names)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_hosted_domain_resolves_into_its_superblock(
        specs in prop::collection::vec(arb_hosting(), 1..24),
    ) {
        let (u, names) = build(&specs);
        let r = Resolver::new(&u.zones);
        for (name, spec) in names.iter().zip(&specs) {
            let res = r.resolve(name, SimTime(0)).expect("resolves");
            prop_assert!(!res.ips.is_empty());
            let block = match spec {
                HostSpec::Dedicated { .. } => AddressPlan::dedicated(),
                HostSpec::CloudVm => AddressPlan::cloud(),
                HostSpec::Cdn => AddressPlan::cdn(),
            };
            for ip in &res.ips {
                prop_assert!(block.contains(*ip), "{name} resolved outside its block: {ip}");
            }
        }
    }

    #[test]
    fn dedication_oracle_matches_spec(specs in prop::collection::vec(arb_hosting(), 1..24)) {
        let (u, names) = build(&specs);
        for (name, spec) in names.iter().zip(&specs) {
            let want = !matches!(spec, HostSpec::Cdn);
            prop_assert_eq!(u.is_dedicated(name), Some(want));
        }
    }

    #[test]
    fn dedicated_and_cloud_hosts_present_matching_certs(
        specs in prop::collection::vec(arb_hosting(), 1..16),
    ) {
        let (u, names) = build(&specs);
        let r = Resolver::new(&u.zones);
        for (name, spec) in names.iter().zip(&specs) {
            let ips = r.full_pool(name).expect("pool");
            match spec {
                HostSpec::Cdn => {
                    // Multi-tenant SAN certs must fail the §4.2.2 criteria.
                    for ip in ips {
                        prop_assert!(!u.scans.cert_at_ip_identifies(ip, name));
                    }
                }
                _ => {
                    for ip in ips {
                        prop_assert!(
                            u.scans.cert_at_ip_identifies(ip, name),
                            "{name} host {ip} lacks an identifying cert"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn distinct_non_cdn_domains_never_share_addresses(
        specs in prop::collection::vec(arb_hosting(), 2..20),
    ) {
        let (u, names) = build(&specs);
        let r = Resolver::new(&u.zones);
        let mut seen: std::collections::HashMap<std::net::Ipv4Addr, usize> = Default::default();
        for (i, (name, spec)) in names.iter().zip(&specs).enumerate() {
            if matches!(spec, HostSpec::Cdn) {
                continue;
            }
            for ip in r.full_pool(name).expect("pool") {
                if let Some(prev) = seen.insert(ip, i) {
                    prop_assert_eq!(prev, i, "dedicated IP {} shared across domains", ip);
                }
            }
        }
        let _ = u;
    }
}
